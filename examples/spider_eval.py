"""Cross-domain evaluation on the Spider substitute (paper §6.1).

Trains the three configurations of Table 2 — the baseline model on the
human-annotated training set alone, DBPal (Train), and DBPal (Full) —
and evaluates on held-out schemas with per-difficulty breakdowns.

Run:  python examples/spider_eval.py          (fast, a few minutes)
"""

from repro.bench import spider_schemas, spider_test_workload, spider_train_pairs
from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate, format_table
from repro.neural import CrossDomainModel, SyntaxAwareModel
from repro.nlp.lemmatizer import lemmatize
from repro.sql.difficulty import DIFFICULTY_ORDER


def train_model(pairs, all_schemas, seed=1):
    epochs = max(5, min(30, 25_000 // max(len(pairs), 1)))
    model = CrossDomainModel(
        SyntaxAwareModel(embed_dim=48, hidden_dim=96, epochs=epochs, seed=seed),
        all_schemas,
    )
    model.fit(pairs)
    return model


def main() -> None:
    train_schemas, test_schemas = spider_schemas()
    all_schemas = train_schemas + test_schemas
    schemas_map = {s.name: s for s in all_schemas}

    # The "manually annotated" training set (held-out phrasing style).
    spider = [
        p.with_nl(lemmatize(p.nl), p.augmentation)
        for p in spider_train_pairs(pairs_per_schema=150, seed=100)
    ]
    workload = spider_test_workload(items_per_schema=24, seed=200)
    print(f"training set: {len(spider)} pairs over {[s.name for s in train_schemas]}")
    print(f"test workload: {len(workload)} items over {[s.name for s in test_schemas]}")

    config = GenerationConfig(size_slotfills=6)
    synth_train = TrainingPipeline(train_schemas, config, seed=10).generate()
    synth_full = TrainingPipeline(all_schemas, config, seed=10).generate()

    configurations = {
        "SyntaxSQLNet (baseline)": spider,
        "DBPal (Train)": spider + synth_train.subsample(6000, seed=0).pairs,
        "DBPal (Full)": spider + synth_full.subsample(10000, seed=0).pairs,
    }

    rows = []
    for name, pairs in configurations.items():
        print(f"\ntraining {name} on {len(pairs)} pairs ...")
        model = train_model(pairs, all_schemas)
        result = evaluate(model, workload, metric="exact", schemas=schemas_map)
        by_difficulty = result.by_difficulty()
        rows.append(
            [name]
            + [by_difficulty[d] for d in DIFFICULTY_ORDER]
            + [result.accuracy]
        )
        print(f"  overall accuracy: {result.accuracy:.3f}")

    print()
    print(
        format_table(
            ["Algorithm", "Easy", "Medium", "Hard", "Very Hard", "Overall"],
            rows,
            title="Spider-substitute results (cf. paper Table 2)",
        )
    )


if __name__ == "__main__":
    main()
