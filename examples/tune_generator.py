"""Hyperparameter tuning of the data generator (paper §3.3, Figure 4).

Runs the random-search optimizer over the Table 1 parameter space using
the GeoQuery-substitute workload as the tuning set ``T``, then prints
the accuracy distribution and the winning configuration.

Run:  python examples/tune_generator.py
"""

from repro.bench import geoquery_workload
from repro.core import random_search
from repro.eval import format_histogram
from repro.neural import CrossDomainModel, SyntaxAwareModel
from repro.schema import load_schema


def main() -> None:
    schema = load_schema("geography")
    workload = list(geoquery_workload(size=120))
    print(f"tuning workload: {len(workload)} geography questions")

    def model_factory():
        return CrossDomainModel(
            SyntaxAwareModel(embed_dim=48, hidden_dim=96, epochs=6, seed=7),
            [schema],
            default_schema=schema,
        )

    print("running random search (each trial = generate + train + evaluate) ...")
    result = random_search(
        schema,
        workload,
        model_factory,
        n_trials=6,
        seed=5,
        corpus_cap=3000,
    )

    counts, edges = result.histogram(bins=6)
    print()
    print(
        format_histogram(
            counts, edges, title="Accuracy over sampled configurations (cf. Figure 4)"
        )
    )
    summary = result.summary()
    print("\nsummary:", {k: round(v, 3) for k, v in summary.items()})
    print("\nbest configuration (use as GenerationConfig(**...)):")
    for key, value in result.best.config.to_dict().items():
        print(f"  {key} = {value}")
    print(f"best accuracy: {result.best.accuracy:.3f} "
          f"(corpus size {result.best.corpus_size})")


if __name__ == "__main__":
    main()
