"""Quickstart: bootstrap a natural-language interface from a schema alone.

This is the paper's headline workflow (§1): given nothing but a database
schema, DBPal synthesizes training data, trains a neural translator, and
serves natural-language questions against the database — no manually
annotated NL-SQL pairs anywhere.

Run:  python examples/quickstart.py
"""

from repro import (
    DBPal,
    GenerationConfig,
    Seq2SeqModel,
    load_schema,
    populate,
)


def main() -> None:
    # 1. The only required input: a schema (with optional NL annotations).
    schema = load_schema("patients")
    print(f"schema: {schema.name} with tables {list(schema.table_names)}")

    # 2. A database instance supplies sample data for the value index
    #    (constant anonymization) — in production this is your real data.
    database = populate(schema, rows_per_table=30, seed=7)

    # 3. Train a translator with the DBPal pipeline.  GenerationConfig
    #    holds every Table 1 parameter; the defaults are the paper's.
    nlidb = DBPal(database)
    model = Seq2SeqModel(embed_dim=48, hidden_dim=96, epochs=8, seed=0)
    print("synthesizing training data and training the model ...")
    corpus = nlidb.train(model, config=GenerationConfig(size_slotfills=8), seed=0)
    print(f"trained on {len(corpus)} synthesized pairs "
          f"(families: {corpus.family_counts()})")

    # 4. Ask questions in natural language.
    some_age = database.rows("patients")[0]["age"]
    questions = [
        "how many patients are there",
        "what is the average age of all patients",
        f"show me the names of all patients with age {some_age}",
        "what is the name of the patient with the maximum length of stay",
    ]
    for question in questions:
        print("\nQ:", question)
        result = nlidb.translate(question)
        print("   model input :", result.model_input)
        print("   SQL         :", result.sql)
        if result.ok:
            rows = nlidb.query(question, max_rows=5)
            print("   result      :", rows)


if __name__ == "__main__":
    main()
