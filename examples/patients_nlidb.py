"""Linguistic robustness on the Patients benchmark (paper §6.2).

Trains the SyntaxSQLNet stand-in with DBPal synthesis for the Patients
schema and evaluates it on all seven linguistic-variation categories of
the Patients benchmark (ParaphraseBench stand-in), printing a Table 3
style per-category breakdown plus a few example translations.

Run:  python examples/patients_nlidb.py
"""

from repro.bench import build_patients_benchmark
from repro.core import GenerationConfig, TrainingPipeline
from repro.db import populate
from repro.eval import evaluate, format_table
from repro.neural import CrossDomainModel, SyntaxAwareModel
from repro.schema import patients_schema
from repro.sql import EquivalenceChecker


def main() -> None:
    schema = patients_schema()
    workload = build_patients_benchmark()
    print(f"Patients benchmark: {len(workload)} NL-SQL pairs, "
          f"categories {workload.categories()}")

    # DBPal synthesis for the target schema (the "DBPal (Full)" setting
    # of §6.2.2 with respect to this benchmark).
    pipeline = TrainingPipeline(schema, GenerationConfig(size_slotfills=10), seed=0)
    corpus = pipeline.generate().subsample(5000, seed=0)
    print(f"synthesized corpus: {len(corpus)} pairs "
          f"({corpus.augmentation_counts()})")

    model = CrossDomainModel(
        SyntaxAwareModel(embed_dim=48, hidden_dim=96, epochs=8, seed=1),
        [schema],
        default_schema=schema,
    )
    print("training ...")
    model.fit(corpus.pairs)

    # Semantic-equivalence evaluation, as the benchmark specifies.
    checker = EquivalenceChecker(
        [populate(schema, rows_per_table=25, seed=s) for s in (3, 11)]
    )
    result = evaluate(
        model,
        workload,
        metric="semantic",
        checker=checker,
        schemas={schema.name: schema},
    )

    by_category = result.by_category()
    print()
    print(
        format_table(
            ["Category", "Accuracy"],
            [[c, by_category[c]] for c in workload.categories()]
            + [["overall", result.accuracy]],
            title="Patients benchmark (semantic equivalence)",
        )
    )

    print("\nexample failures:")
    for record in result.failures(limit=5):
        print(f"  [{record.item.category}] {record.item.nl}")
        print(f"    gold: {record.item.sql_text}")
        print(f"    got : {record.prediction}")


if __name__ == "__main__":
    main()
