"""Pluggability: train three different model families with one pipeline.

The paper's headline design property (§2.1, §3.4): "our fully pluggable
training pipeline is agnostic to the actual translation model".  This
example trains a retrieval baseline, a plain attention seq2seq, and the
grammar-constrained syntax-aware model on the *same* synthesized corpus
and compares them on the Patients benchmark's naive and lexical
categories.

Run:  python examples/pluggable_models.py
"""

import time

from repro.bench import build_patients_benchmark
from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate, format_table
from repro.neural import RetrievalModel, Seq2SeqModel, SyntaxAwareModel
from repro.schema import patients_schema


def main() -> None:
    schema = patients_schema()
    pipeline = TrainingPipeline(schema, GenerationConfig(size_slotfills=8), seed=4)
    corpus = pipeline.generate().subsample(4000, seed=0)
    print(f"one synthesized corpus: {len(corpus)} pairs\n")

    models = {
        "retrieval baseline": RetrievalModel(),
        "seq2seq": Seq2SeqModel(embed_dim=48, hidden_dim=96, epochs=8, seed=0),
        "syntax-aware (constrained)": SyntaxAwareModel(
            embed_dim=48, hidden_dim=96, epochs=8, seed=0
        ),
    }

    workload = build_patients_benchmark()
    rows = []
    for name, model in models.items():
        started = time.time()
        model.fit(corpus.pairs)  # the pluggability contract: fit(pairs)
        train_seconds = time.time() - started
        result = evaluate(
            model, workload, metric="exact", schemas={schema.name: schema}
        )
        by_category = result.by_category()
        rows.append(
            [
                name,
                by_category.get("naive", float("nan")),
                by_category.get("lexical", float("nan")),
                result.accuracy,
                f"{train_seconds:.0f}s",
            ]
        )
        print(f"trained and evaluated {name}")

    print()
    print(
        format_table(
            ["Model", "Naive", "Lexical", "Overall", "Train time"],
            rows,
            title="Same pipeline, three plugged-in models (Patients benchmark)",
        )
    )


if __name__ == "__main__":
    main()
