"""Synthesis throughput benchmark — writes ``BENCH_synthesis.json``.

Measures corpus-synthesis throughput (pairs/sec) in three arms under
the same code version:

* ``sequential_uncached`` — the shard loop with every hot-path cache
  disabled (:func:`repro.perf.uncached_hot_paths`): the pre-engine
  baseline cost model;
* ``sequential`` — ``workers=0`` with caches on (isolates the caching
  speedup);
* ``parallel_wN`` — ``workers=N`` process-pool execution.

All arms produce bit-identical corpora (asserted), so the ratios are
pure execution-speed comparisons.  Numbers are hardware-dependent —
``cpu_count`` is recorded with the results; on a single-core host the
parallel arms measure pool overhead, not speedup, and the caching
ratios are the meaningful signal.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--profile full]
        [--workers 2 4] [--output BENCH_synthesis.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core import GenerationConfig, TrainingPipeline
from repro.perf import PerfRecorder, uncached_hot_paths
from repro.schema import load_schema

#: Mirrors benchmarks/_common.py profiles (kept standalone so the perf
#: entry point has no pytest dependencies).
PROFILE_SLOTFILLS = {"fast": 6, "full": 16}
PROFILE_SCHEMAS = {
    "fast": ("patients", "geography"),
    "full": ("patients", "geography", "retail", "flights"),
}

#: Synthesis seed for all arms (identical corpora across arms).
SEED = 42


def _clear_global_caches() -> None:
    """Reset process-wide caches so each arm starts cold."""
    from repro.nlp.lemmatizer import lemmatize_word

    if hasattr(lemmatize_word, "cache_clear"):
        lemmatize_word.cache_clear()


def _run_arm(schemas, config, workers: int | None, uncached: bool = False):
    """One measured synthesis run; returns (corpus, stats dict)."""
    _clear_global_caches()
    pipeline = TrainingPipeline(schemas, config, seed=SEED)
    recorder = PerfRecorder()
    start = time.perf_counter()
    if uncached:
        with uncached_hot_paths():
            corpus = pipeline.generate(workers=0, recorder=recorder)
    else:
        corpus = pipeline.generate(workers=workers or 0, recorder=recorder)
    elapsed = time.perf_counter() - start
    pairs_per_second = len(corpus) / elapsed if elapsed > 0 else 0.0
    return corpus, {
        "seconds": round(elapsed, 3),
        "pairs": len(corpus),
        "pairs_per_second": round(pairs_per_second, 1),
        "stages": recorder.report(),
    }


def run_benchmark(
    profile: str = "fast", workers: tuple[int, ...] = (2, 4)
) -> dict:
    """Run all arms and return the BENCH record (not yet written)."""
    schemas = [load_schema(name) for name in PROFILE_SCHEMAS[profile]]
    config = GenerationConfig(size_slotfills=PROFILE_SLOTFILLS[profile])

    modes: dict[str, dict] = {}
    baseline_corpus, modes["sequential_uncached"] = _run_arm(
        schemas, config, workers=0, uncached=True
    )
    cached_corpus, modes["sequential"] = _run_arm(schemas, config, workers=0)
    corpora = {"sequential": cached_corpus}
    for n in workers:
        corpus, modes[f"parallel_w{n}"] = _run_arm(schemas, config, workers=n)
        corpora[f"parallel_w{n}"] = corpus

    # Throughput ratios only mean anything over identical corpora.
    baseline_keys = [p.key() for p in baseline_corpus.pairs]
    for name, corpus in corpora.items():
        assert [p.key() for p in corpus.pairs] == baseline_keys, (
            f"{name} corpus diverged from baseline"
        )

    baseline_pps = modes["sequential_uncached"]["pairs_per_second"]
    sequential_pps = modes["sequential"]["pairs_per_second"]

    def ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else 0.0

    speedups = {
        # "Caching alone": same shard loop, caches on vs off.
        "caching_alone": ratio(sequential_pps, baseline_pps),
    }
    for n in workers:
        parallel_pps = modes[f"parallel_w{n}"]["pairs_per_second"]
        # Headline number: the engine (caches + sharding) at N workers
        # vs the uncached sequential baseline.
        speedups[f"workers{n}_vs_baseline"] = ratio(parallel_pps, baseline_pps)
        speedups[f"workers{n}_vs_sequential"] = ratio(
            parallel_pps, sequential_pps
        )

    return {
        "benchmark": "corpus_synthesis_throughput",
        "profile": profile,
        "schemas": list(PROFILE_SCHEMAS[profile]),
        "size_slotfills": PROFILE_SLOTFILLS[profile],
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "corpora_identical_across_modes": True,
        "modes": modes,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(PROFILE_SLOTFILLS), default="full")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_synthesis.json"),
    )
    args = parser.parse_args(argv)
    record = run_benchmark(profile=args.profile, workers=tuple(args.workers))
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for mode, stats in record["modes"].items():
        print(
            f"  {mode:<22} {stats['seconds']:>8.3f}s"
            f"  {stats['pairs_per_second']:>9.1f} pairs/s"
        )
    for name, value in record["speedups"].items():
        print(f"  speedup {name:<24} {value:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
