"""Canonicalization benchmark — writes ``BENCH_canonical.json``.

Three numbers, one record:

* **Cache coalescing uplift** on a paraphrase-heavy workload: every
  corpus query is emitted under several equivalence-preserving
  spellings (conjunct reversal, ``BETWEEN``/chain, ``IN``/``OR``-of-=,
  comparison flips — the same rewrite classes the soundness gate
  fuzzes), simulating a model whose surface form wobbles between
  requests.  The exact-text arm only recognizes bit-identical repeats;
  the canonical tier (:class:`repro.serving.cache.TranslationCache`
  with ``canonical_key_fn``) also recognizes re-spellings.  The uplift
  is the recognized-repeat rate delta.
* **Corpus dedupe density**: how much of each seed corpus
  ``dedupe_pairs(semantic=True)`` removes beyond exact-key dedupe.
* **Canonicalization latency**: p50/p95 of ``canonical_key_for_sql``
  over every distinct corpus query (the per-``put`` price the serving
  tier pays for the coalescing).

Usage::

    PYTHONPATH=src python benchmarks/run_canonical.py [--smoke]
        [--slotfills 8] [--repeats 3] [--output BENCH_canonical.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

from repro.core import GenerationConfig, TrainingPipeline, dedupe_pairs
from repro.schema import load_schema
from repro.serving.cache import TranslationCache
from repro.sql.ast import And, Between, Comparison, CompOp, InPredicate, Not, Or
from repro.sql.canonical import canonical_key_for_sql
from repro.sql.printer import to_sql

SEED = 31
CORPUS_SCHEMAS = ("patients", "geography")


# ----------------------------------------------------------------------
# Equivalence-preserving re-spellings (mirrors the soundness gate)
# ----------------------------------------------------------------------


def _respell(pred):
    if isinstance(pred, And):
        return And(tuple(reversed([_respell(p) for p in pred.operands])))
    if isinstance(pred, Or):
        return Or(tuple(reversed([_respell(p) for p in pred.operands])))
    if isinstance(pred, Not):
        return Not(_respell(pred.operand))
    if isinstance(pred, Between):
        return And(
            (
                Comparison(pred.column, CompOp.GE, pred.low),
                Comparison(pred.column, CompOp.LE, pred.high),
            )
        )
    if (
        isinstance(pred, InPredicate)
        and pred.subquery is None
        and not pred.negated
        and len(pred.values) >= 2
    ):
        return Or(
            tuple(
                Comparison(pred.column, CompOp.EQ, value)
                for value in reversed(pred.values)
            )
        )
    if isinstance(pred, Comparison):
        return Comparison(pred.right, pred.op.flipped(), pred.left)
    return pred


def spellings(query) -> list[str]:
    """The original plus distinct re-spelled surface forms."""
    texts = [to_sql(query)]
    if query.where is not None:
        respelled = to_sql(replace(query, where=_respell(query.where)))
        if respelled not in texts:
            texts.append(respelled)
    return texts


# ----------------------------------------------------------------------
# Arms
# ----------------------------------------------------------------------


def paraphrase_workload(corpus) -> list[str]:
    """Model outputs for a paraphrase-heavy request stream."""
    outputs: list[str] = []
    for pair in corpus.pairs:
        outputs.extend(spellings(pair.sql))
    return outputs


def run_cache_arm(schema, outputs: list[str]) -> dict:
    def key_fn(sql):
        return canonical_key_for_sql(sql, schema)

    cache = TranslationCache(
        capacity=max(len(outputs), 1), ttl=0, canonical_key_fn=key_fn
    )
    exact_seen: set[str] = set()
    exact_repeats = 0
    for index, text in enumerate(outputs):
        if text in exact_seen:
            exact_repeats += 1
        exact_seen.add(text)
        cache.put(f"nl-{index}", text)

    probes = cache.canonical_probes
    canonical_repeats = cache.canonical_hits + cache.canonical_variants
    exact_rate = exact_repeats / probes if probes else 0.0
    canonical_rate = canonical_repeats / probes if probes else 0.0
    return {
        "puts": probes,
        "exact_repeats": exact_repeats,
        "canonical_repeats": canonical_repeats,
        "exact_recognized_rate": round(exact_rate, 4),
        "canonical_recognized_rate": round(canonical_rate, 4),
        "hit_rate_uplift": round(canonical_rate - exact_rate, 4),
        "canonical_index_size": cache.stats()["canonical_index_size"],
        "interned_hits": cache.canonical_hits,
        "variants_preserved": cache.canonical_variants,
        "skipped": cache.canonical_skipped,
    }


def run_dedupe_arm(schema, corpus) -> dict:
    """Exact vs semantic dedupe, raw and under paraphrase pressure.

    The raw corpus is already exact-deduplicated by the pipeline, so
    its density isolates canonical collisions between *templates*.
    The augmented arm re-spells every pair's SQL under the same NL —
    the shape a paraphrasing augmenter or a wobbly model produces —
    which only semantic dedupe can collapse.
    """
    def density(pairs):
        exact = dedupe_pairs(list(pairs))
        semantic = dedupe_pairs(
            list(pairs), semantic=True, schemas={schema.name: schema}
        )
        ratio = 1.0 - (len(semantic) / len(exact)) if exact else 0.0
        return len(exact), len(semantic), round(ratio, 4)

    augmented = []
    for pair in corpus.pairs:
        augmented.append(pair)
        if pair.sql.where is not None:
            respelled = replace(pair.sql, where=_respell(pair.sql.where))
            if respelled != pair.sql:
                augmented.append(replace(pair, sql=respelled))

    raw_exact, raw_semantic, raw_density = density(corpus.pairs)
    aug_exact, aug_semantic, aug_density = density(augmented)
    return {
        "pairs": len(corpus.pairs),
        "exact_deduped": raw_exact,
        "semantic_deduped": raw_semantic,
        "dedupe_density": raw_density,
        "augmented_pairs": len(augmented),
        "augmented_exact_deduped": aug_exact,
        "augmented_semantic_deduped": aug_semantic,
        "augmented_dedupe_density": aug_density,
    }


def run_latency_arm(schema, outputs: list[str], repeats: int) -> dict:
    distinct = sorted(set(outputs))
    samples: list[float] = []
    for _ in range(repeats):
        for text in distinct:
            start = time.perf_counter()
            canonical_key_for_sql(text, schema)
            samples.append(time.perf_counter() - start)
    samples.sort()

    def quantile(q: float) -> float:
        return samples[min(int(q * (len(samples) - 1)), len(samples) - 1)]

    return {
        "queries": len(distinct),
        "samples": len(samples),
        "p50_us": round(quantile(0.50) * 1e6, 2),
        "p95_us": round(quantile(0.95) * 1e6, 2),
        "max_us": round(samples[-1] * 1e6, 2),
    }


def run_benchmark(slotfills: int = 8, repeats: int = 3) -> dict:
    per_schema = {}
    config = GenerationConfig(size_slotfills=slotfills)
    for schema_name in CORPUS_SCHEMAS:
        schema = load_schema(schema_name)
        corpus = TrainingPipeline(schema, config, seed=SEED).generate()
        outputs = paraphrase_workload(corpus)
        per_schema[schema_name] = {
            "corpus_pairs": len(corpus.pairs),
            "workload_outputs": len(outputs),
            "cache": run_cache_arm(schema, outputs),
            "dedupe": run_dedupe_arm(schema, corpus),
            "latency": run_latency_arm(schema, outputs, repeats),
        }
    return {
        "benchmark": "canonicalization",
        "schemas": list(CORPUS_SCHEMAS),
        "slotfills": slotfills,
        "repeats": repeats,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "results": per_schema,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slotfills", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run wired into the test suite so this script cannot rot",
    )
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_canonical.json"
        ),
    )
    args = parser.parse_args(argv)
    slotfills = 3 if args.smoke else args.slotfills
    repeats = 1 if args.smoke else args.repeats
    record = run_benchmark(slotfills=slotfills, repeats=repeats)
    Path(args.output).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    for schema_name, result in record["results"].items():
        cache, dedupe, latency = (
            result["cache"],
            result["dedupe"],
            result["latency"],
        )
        print(
            f"{schema_name}: uplift {cache['hit_rate_uplift']:+.1%} "
            f"(exact {cache['exact_recognized_rate']:.1%} -> canonical "
            f"{cache['canonical_recognized_rate']:.1%}), "
            f"dedupe density {dedupe['dedupe_density']:.1%} raw / "
            f"{dedupe['augmented_dedupe_density']:.1%} augmented, "
            f"canonical p95 {latency['p95_us']:.0f}us"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
