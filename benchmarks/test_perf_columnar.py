"""Columnar execution benchmark: vectorized kernels vs the row arm.

Marked ``columnar`` and excluded from tier-1 (``pytest -x -q`` collects
``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_columnar.py -m columnar

The test records the measured scaling ladder to ``BENCH_columnar.json``
at the repository root (the same record ``benchmarks/run_columnar.py``
produces) and asserts the vectorized engine's headline claim (ISSUE 6):
columnar execution is at least 10× faster than the planned row arm on
the large-DB aggregate/join workloads, while returning bit-identical
results — values *and* row order — at every size.

Bit-identity is asserted unconditionally.  The speedup-ratio assertion
is gated on ``_common.speedup_assertable`` so a ladder trimmed to tiny
sizes (where constant factors dominate) degrades to an identity-only
run instead of flaking.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _common import speedup_assertable
from run_columnar import HEADLINE_WORKLOADS, run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

SIZES = [64, 256, 1024, 4096, 16384]


@pytest.mark.columnar
def test_columnar_speedup_recorded():
    record = run_benchmark(sizes=SIZES, repeats=3)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    # Correctness precedes speed: every workload at every size must be
    # bit-identical between the arms.
    assert record["identical"] is True, record

    for name in HEADLINE_WORKLOADS:
        workload = record["workloads"][name]
        # The crossover must be observed somewhere on the ladder — the
        # columnar arm has to actually win before the largest size.
        assert workload["crossover_rows"] is not None, workload
        if not speedup_assertable(SIZES[-1]):
            continue
        # The acceptance bar from ISSUE 6: >= 10x over the planned row
        # arm on large-DB aggregate/join workloads.
        assert workload["largest_speedup"] >= 10.0, (
            name,
            workload["largest_speedup"],
        )
