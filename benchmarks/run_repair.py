"""Execute–verify–repair benchmark — writes ``BENCH_repair.json``.

Measures what the serving-tier repair loop (PR 9) buys and what it
costs.  Gold queries from the Patients and Spider-substitute workloads
stand in for model output; a deterministic AST-level corruptor breaks
half of them the way a seq2seq actually misses (column typos, table
typos, placeholder typos, aggregate predicates landing in WHERE).  Two
arms run over identical inputs:

* ``first_guess`` — the pre-PR path: lint-only (a zero-attempt
  budget), every candidate served as-is.  Accuracy here is the
  first-guess translation accuracy.
* ``repaired``    — the full three-stage loop at the default budget:
  verify (analyzer), targeted AST repair, execution re-rank against a
  sampled database through :class:`~repro.adapters.MemoryAdapter`.

Accuracy is placeholder-restored exact match against gold; the p95
latency delta between the arms is the cost of repair.  The accuracy
uplift is deterministic (fixed seeds, fixed corruption schedule); the
latency ratio is hardware-dependent and only gated when
``speedup_assertable`` says the sample is large enough.

Usage::

    PYTHONPATH=src python benchmarks/run_repair.py [--profile full]
        [--smoke] [--output BENCH_repair.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.adapters import MemoryAdapter
from repro.bench import build_patients_benchmark, spider_test_workload
from repro.db import populate
from repro.db.index import ValueIndex
from repro.runtime.parameter_handler import Binding
from repro.runtime.postprocess import restore_placeholders
from repro.serving import RepairBudget, RepairPipeline
from repro.sql import parse, rename_column, rename_table, to_sql
from repro.sql.ast import Query

try:  # running as `python benchmarks/run_repair.py`
    from _common import schemas_by_name
except ImportError:  # running under pytest (benchmarks is not a package)
    from benchmarks._common import schemas_by_name

PROFILES = {
    "smoke": {"patients_items": 12, "spider_items_per_schema": 2},
    "fast": {"patients_items": 60, "spider_items_per_schema": 8},
    "full": {"patients_items": 0, "spider_items_per_schema": 24},  # 0 = all
}

SEED = 11
ROWS_PER_TABLE = 30
CORRUPT_EVERY = 2  # corrupt every 2nd item (50% broken first guesses)


# ----------------------------------------------------------------------
# Deterministic corruptor: the mistakes a seq2seq actually makes
# ----------------------------------------------------------------------


def _transpose(name: str) -> str:
    """Swap two interior characters: ``name`` -> ``nmae``-style typo."""
    if len(name) < 4:
        return name[::-1]
    i = len(name) // 2 - 1
    return name[:i] + name[i + 1] + name[i] + name[i + 2 :]


def _corrupt_column(query: Query, schema) -> Query | None:
    for ref in query.column_refs():
        if len(ref.column) < 4:
            continue
        typo = _transpose(ref.column)
        if typo == ref.column or any(typo in t for t in schema.tables):
            continue
        return rename_column(query, ref.column, typo)
    return None


def _corrupt_table(query: Query, schema) -> Query | None:
    for table in query.from_tables:
        typo = table[:-1]  # "patients" -> "patient"
        if len(table) < 4 or typo in schema:
            continue
        return rename_table(query, table, typo)
    return None


def _corrupt_placeholder(query: Query, schema) -> Query | None:
    from repro.sql import map_placeholders

    for ph in query.placeholders():
        segment = ph.name.split(".")[-1]
        typo = _transpose(segment.lower())
        if typo == segment.lower():
            continue
        if any(typo in t for t in schema.tables):
            continue
        new_name = ".".join(ph.name.split(".")[:-1] + [typo.upper()])

        def swap(p, old=ph.name, new=new_name):
            return type(p)(new) if p.name == old else p

        return map_placeholders(query, swap)
    return None


def _corrupt_having(query: Query, schema) -> Query | None:
    """Move the HAVING predicate into WHERE (aggregate-in-WHERE error)."""
    from repro.sql.ast import And

    if query.having is None:
        return None
    where = query.having if query.where is None else And(query.where, query.having)
    from dataclasses import replace as dc_replace

    return dc_replace(query, where=where, having=None)


CORRUPTIONS = (
    ("column_typo", _corrupt_column),
    ("table_typo", _corrupt_table),
    ("placeholder_typo", _corrupt_placeholder),
    ("aggregate_in_where", _corrupt_having),
)


def corrupt(query: Query, schema, index: int) -> tuple[Query, str]:
    """Apply the first applicable corruption, cycling the start by index."""
    order = [CORRUPTIONS[(index + k) % len(CORRUPTIONS)] for k in range(len(CORRUPTIONS))]
    for kind, fn in order:
        broken = fn(query, schema)
        if broken is not None and to_sql(broken) != to_sql(query):
            return broken, kind
    return query, ""


# ----------------------------------------------------------------------
# Placeholder bindings: give every item a concrete, executable form
# ----------------------------------------------------------------------


def bindings_for(query: Query, schema, database) -> list[Binding]:
    out: list[Binding] = []
    for ph in query.placeholders():
        segments = ph.name.lower().split(".")
        column = segments[-1]
        value = None
        tables = (
            [segments[0]] if len(segments) > 1 else list(query.from_tables)
        )
        for table_name in tables:
            if table_name not in schema:
                continue
            table = schema.table(table_name)
            if column not in table:
                continue
            for row in database.scan(table_name):
                if row.get(column) is not None:
                    value = row[column]
                    break
            if value is not None:
                break
        if value is None:
            value = 10  # un-typed slot (@NUM and friends)
        out.append(Binding(placeholder=ph.name, value=value))
    return out


# ----------------------------------------------------------------------
# The two arms
# ----------------------------------------------------------------------


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    k = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[k]


def run_arm(pipeline: RepairPipeline, prepared: list[dict]) -> dict:
    hits = 0
    latencies: list[float] = []
    outcomes: dict[str, int] = {}
    verified = 0
    for item in prepared:
        start = time.perf_counter()
        report = pipeline.run(item["candidate"], bindings=item["bindings"])
        latencies.append(time.perf_counter() - start)
        outcomes[report.outcome] = outcomes.get(report.outcome, 0) + 1
        if report.verified:
            verified += 1
        final = to_sql(restore_placeholders(report.query, item["bindings"]))
        if final == item["target"]:
            hits += 1
    total = len(prepared)
    return {
        "items": total,
        "exact_matches": hits,
        "accuracy": round(hits / total, 4) if total else 0.0,
        "verified": verified,
        "outcomes": outcomes,
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "latency_mean_ms": round(sum(latencies) / total * 1e3, 3) if total else 0.0,
    }


def prepare_workload(workload, schemas, databases) -> list[dict]:
    prepared = []
    for index, item in enumerate(workload):
        schema = schemas[item.schema_name]
        database = databases[item.schema_name]
        bindings = bindings_for(item.sql, schema, database)
        candidate, kind = (
            corrupt(item.sql, schema, index)
            if index % CORRUPT_EVERY == 0
            else (item.sql, "")
        )
        prepared.append(
            {
                "candidate": candidate,
                "bindings": bindings,
                "corruption": kind,
                "target": to_sql(restore_placeholders(item.sql, bindings)),
            }
        )
    return prepared


def run_benchmark(profile_name: str) -> dict:
    profile = PROFILES[profile_name]
    schemas = schemas_by_name()
    budget = RepairBudget()

    patients = build_patients_benchmark()
    if profile["patients_items"]:
        patients = patients.subsample(profile["patients_items"], seed=SEED)
    spider = spider_test_workload(
        items_per_schema=profile["spider_items_per_schema"], seed=200
    )

    record_workloads = {}
    for workload in (patients, spider):
        names = {i.schema_name for i in workload}
        databases = {
            name: populate(schemas[name], rows_per_table=ROWS_PER_TABLE, seed=SEED)
            for name in names
        }
        prepared = prepare_workload(workload, schemas, databases)
        corrupted = sum(1 for p in prepared if p["corruption"])

        def pipeline_for(name: str, max_attempts: int) -> RepairPipeline:
            db = databases[name]
            return RepairPipeline(
                db.schema,
                adapter=MemoryAdapter(db),
                budget=RepairBudget(
                    max_attempts=max_attempts,
                    deadline=budget.deadline,
                    execute_timeout=budget.execute_timeout,
                ),
                value_index=ValueIndex(db),
            )

        arms = {}
        for arm_name, attempts in (("first_guess", 0), ("repaired", budget.max_attempts)):
            pipelines = {name: pipeline_for(name, attempts) for name in names}
            merged = {
                "items": 0,
                "exact_matches": 0,
                "verified": 0,
                "outcomes": {},
                "_latencies": [],
            }
            for name in sorted(names):
                subset = [
                    p
                    for p, item in zip(prepared, workload)
                    if item.schema_name == name
                ]
                stats = run_arm(pipelines[name], subset)
                merged["items"] += stats["items"]
                merged["exact_matches"] += stats["exact_matches"]
                merged["verified"] += stats["verified"]
                for outcome, count in stats["outcomes"].items():
                    merged["outcomes"][outcome] = (
                        merged["outcomes"].get(outcome, 0) + count
                    )
                merged["_latencies"].extend(
                    [stats["latency_p50_ms"], stats["latency_p95_ms"]]
                )
                merged.setdefault("per_schema", {})[name] = stats
            per = merged.pop("per_schema", {})
            lat = [s["latency_p95_ms"] for s in per.values()]
            merged.pop("_latencies")
            merged["accuracy"] = (
                round(merged["exact_matches"] / merged["items"], 4)
                if merged["items"]
                else 0.0
            )
            merged["latency_p95_ms"] = round(max(lat), 3) if lat else 0.0
            merged["per_schema"] = per
            arms[arm_name] = merged

        record_workloads[workload.name] = {
            "items": len(prepared),
            "corrupted": corrupted,
            "corruption_kinds": sorted(
                {p["corruption"] for p in prepared if p["corruption"]}
            ),
            "first_guess": arms["first_guess"],
            "repaired": arms["repaired"],
            "accuracy_uplift": round(
                arms["repaired"]["accuracy"] - arms["first_guess"]["accuracy"], 4
            ),
        }

    return {
        "benchmark": "repair",
        "profile": profile_name,
        "seed": SEED,
        "rows_per_table": ROWS_PER_TABLE,
        "corrupt_every": CORRUPT_EVERY,
        "budget": budget.to_dict(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "workloads": record_workloads,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=("fast", "full"), default="full")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload exercising both arms (overrides --profile)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_repair.json"),
    )
    args = parser.parse_args(argv)
    profile = "smoke" if args.smoke else args.profile
    record = run_benchmark(profile)
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for name, stats in record["workloads"].items():
        first = stats["first_guess"]
        fixed = stats["repaired"]
        print(
            f"  {name:<20} {stats['corrupted']}/{stats['items']} corrupted"
            f"  first-guess {first['accuracy']:.3f}"
            f" -> repaired {fixed['accuracy']:.3f}"
            f"  (+{stats['accuracy_uplift']:.3f})"
            f"  p95 {first['latency_p95_ms']:.1f}ms"
            f" -> {fixed['latency_p95_ms']:.1f}ms"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
