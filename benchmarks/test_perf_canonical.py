"""Canonicalization benchmark gate over ``BENCH_canonical.json``.

Marked ``canonical``-and-``perf`` and excluded from tier-1; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_canonical.py -m perf

Re-runs ``benchmarks/run_canonical.py`` and asserts the headline
claims: the canonical cache tier recognizes strictly more repeated
queries than exact-text matching on a paraphrase-heavy workload,
semantic dedupe collapses a substantial share of a paraphrase-
augmented corpus, and per-query canonicalization latency stays in
interactive-serving territory.  The recognition/dedupe ratios are
deterministic (fixed seeds) and asserted unconditionally; wall-clock
bounds are gated behind ``speedup_assertable``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _common import speedup_assertable
from run_canonical import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_canonical.json"

#: Canonicalizing one query must stay far below a single model call;
#: 5ms p95 is an order of magnitude of headroom on any non-starved box.
P95_BUDGET_US = 5000.0


@pytest.mark.perf
@pytest.mark.canonical
def test_canonical_uplift_recorded():
    record = run_benchmark()
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    for name, result in record["results"].items():
        cache, dedupe, latency = (
            result["cache"],
            result["dedupe"],
            result["latency"],
        )

        # -- cache: deterministic ratios, asserted unconditionally ------
        assert cache["puts"] > 1000, name
        assert cache["canonical_repeats"] > cache["exact_repeats"], (name, cache)
        assert cache["hit_rate_uplift"] > 0, (name, cache)
        # Reconciliation: every put is accounted for.
        assert cache["puts"] == (
            cache["interned_hits"]
            + cache["variants_preserved"]
            + cache["canonical_index_size"]
            + cache["skipped"]
        ), (name, cache)

        # -- dedupe density ---------------------------------------------
        # The raw corpus is near-canonical already (templates rarely
        # collide); the paraphrase-augmented arm is where semantic
        # dedupe earns its keep — at least a quarter of the augmented
        # corpus must collapse.
        assert dedupe["augmented_dedupe_density"] >= 0.25, (name, dedupe)
        assert (
            dedupe["augmented_semantic_deduped"]
            < dedupe["augmented_exact_deduped"]
        ), (name, dedupe)
        # Semantic dedupe never drops below... exact on the raw corpus.
        assert dedupe["semantic_deduped"] <= dedupe["exact_deduped"]

        # -- latency: hardware-dependent, gated -------------------------
        if speedup_assertable(rows=latency["samples"], min_rows=100):
            assert latency["p95_us"] <= P95_BUDGET_US, (name, latency)
            assert latency["p50_us"] <= latency["p95_us"] <= latency["max_us"]
