"""Executor planning benchmark — writes ``BENCH_executor.json``.

Measures the planned executor (:mod:`repro.db.planner`: predicate
pushdown + hash joins + session result cache) against the naive
reference executor (:mod:`repro.db.executor`: filtered cross product)
in three arms over identical workloads:

* ``naive``          — :func:`repro.db.executor.execute` per query;
* ``planned``        — :func:`repro.db.planner.execute_planned`, fresh
  planning each call, no session state;
* ``planned_cached`` — one :class:`repro.db.planner.ExecutorSession`
  for the whole workload: lazy per-column equality indexes plus the
  bounded LRU result cache keyed on canonical SQL (the eval-harness
  shape, where every gold query repeats across a report).

Two workloads, each repeated ``repeats`` times:

* ``single_table`` — selective filters, aggregates, ORDER BY over one
  table (pushdown + eq-index probes);
* ``join_heavy``   — 2- and 3-table FK joins whose naive cross product
  sits just under the ``MAX_CROSS_PRODUCT`` guard (hash joins).

Every arm's results are property-checked bit-identical (row values
*and* row order) against the naive arm before timings are reported;
the record carries an ``identical`` flag per workload.  The acceptance
bar (ISSUE 3): planned ≥ 5× naive on the join-heavy workload.

Usage::

    PYTHONPATH=src python benchmarks/run_executor.py [--smoke]
        [--rows-single 400] [--rows-join 100] [--repeats 3]
        [--output BENCH_executor.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.db import Database, ExecutorSession, execute, execute_planned, populate
from repro.schema import load_schema
from repro.sql.parser import parse

SEED = 11

#: Single-table workload (retail): ``{...}`` slots are filled with
#: constants drawn from the populated database so filters actually hit.
SINGLE_TABLE_SQL = (
    "SELECT name FROM customer WHERE city = '{city}'",
    "SELECT name, age FROM customer WHERE age = {age}",
    "SELECT product_name FROM product WHERE category = '{category}' AND price > 10",
    "SELECT COUNT(*) FROM orders WHERE quantity = {quantity}",
    "SELECT category, AVG(price) FROM product GROUP BY category",
    "SELECT DISTINCT city FROM customer ORDER BY city",
    "SELECT name FROM customer WHERE age > 30 ORDER BY age DESC LIMIT 10",
)

#: Join-heavy workload (retail star schema): FK equi-joins the planner
#: turns into hash joins; the naive arm pays the full cross product.
JOIN_HEAVY_SQL = (
    "SELECT customer.name, orders.order_id FROM customer, orders "
    "WHERE orders.customer_id = customer.customer_id",
    "SELECT customer.name, product.product_name "
    "FROM customer, product, orders "
    "WHERE orders.customer_id = customer.customer_id "
    "AND orders.product_id = product.product_id",
    "SELECT customer.city, COUNT(*) FROM customer, product, orders "
    "WHERE orders.customer_id = customer.customer_id "
    "AND orders.product_id = product.product_id "
    "AND product.price > 20 GROUP BY customer.city",
    "SELECT product.category, SUM(orders.quantity) "
    "FROM product, orders "
    "WHERE orders.product_id = product.product_id "
    "GROUP BY product.category ORDER BY product.category",
    "SELECT customer.name, product.product_name "
    "FROM customer, product, orders "
    "WHERE orders.customer_id = customer.customer_id "
    "AND orders.product_id = product.product_id "
    "AND customer.city = '{city}' ORDER BY customer.name LIMIT 25",
)


def _fill(template: str, database: Database) -> str:
    """Substitute ``{slot}`` markers with constants present in the DB."""
    if "{" not in template:
        return template
    cities = sorted(set(database.column_values("customer", "city")))
    ages = sorted(set(database.column_values("customer", "age")))
    categories = sorted(set(database.column_values("product", "category")))
    quantities = sorted(set(database.column_values("orders", "quantity")))
    return template.format(
        city=cities[len(cities) // 2],
        age=ages[len(ages) // 2],
        category=categories[0],
        quantity=quantities[0],
    )


def build_workload(templates, database: Database, repeats: int):
    """(queries, distinct) — the repeated list every arm executes."""
    distinct = [parse(_fill(t, database)) for t in templates]
    return distinct * repeats, distinct


def check_identical(distinct, database: Database) -> bool:
    """Property check: planned ≡ naive row-for-row on every query."""
    session = ExecutorSession(database)
    for query in distinct:
        naive_rows = execute(query, database)
        planned_rows = execute_planned(query, database)
        cached_rows = session.execute(query)
        if planned_rows != naive_rows or cached_rows != naive_rows:
            return False
    return True


def time_arm(run, queries) -> dict:
    rows_seen = 0
    start = time.perf_counter()
    for query in queries:
        rows_seen += len(run(query))
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "queries": len(queries),
        "rows": rows_seen,
        "qps": round(len(queries) / seconds, 1) if seconds > 0 else 0.0,
    }


def run_workload(name, templates, database: Database, repeats: int) -> dict:
    queries, distinct = build_workload(templates, database, repeats)
    identical = check_identical(distinct, database)

    # One untimed pass per arm warms scan views and code paths so a
    # single cold call cannot dominate a sub-millisecond workload.
    for query in distinct:
        execute(query, database)
        execute_planned(query, database)

    naive = time_arm(lambda q: execute(q, database), queries)
    planned = time_arm(lambda q: execute_planned(q, database), queries)
    session = ExecutorSession(database)
    cached = time_arm(lambda q: session.execute(q), queries)
    cached["cache_hits"] = session.cache_hits
    cached["cache_misses"] = session.cache_misses

    def ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else 0.0

    return {
        "workload": name,
        "distinct_queries": len(distinct),
        "repeats": repeats,
        "identical": identical,
        "arms": {"naive": naive, "planned": planned, "planned_cached": cached},
        "speedups": {
            "planned_vs_naive": ratio(naive["seconds"], planned["seconds"]),
            "cached_vs_naive": ratio(naive["seconds"], cached["seconds"]),
        },
        "stages": session.recorder.report(),
    }


def run_benchmark(
    rows_single: int = 400, rows_join: int = 100, repeats: int = 3
) -> dict:
    schema = load_schema("retail")
    single_db = populate(schema, rows_per_table=rows_single, seed=SEED)
    join_db = populate(schema, rows_per_table=rows_join, seed=SEED)

    # Single-table queries finish in microseconds; run many more passes
    # than the (expensive) join workload so the timings are stable.
    single = run_workload(
        "single_table", SINGLE_TABLE_SQL, single_db, repeats * 10
    )
    join = run_workload("join_heavy", JOIN_HEAVY_SQL, join_db, repeats)

    return {
        "benchmark": "executor_planning",
        "schema": schema.name,
        "rows_single": rows_single,
        "rows_join": rows_join,
        "repeats": repeats,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "identical": single["identical"] and join["identical"],
        "workloads": {"single_table": single, "join_heavy": join},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows-single", type=int, default=400)
    parser.add_argument("--rows-join", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run wired into the test suite so this script cannot rot",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_executor.json"),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows_single = min(args.rows_single, 60)
        args.rows_join = min(args.rows_join, 20)
        args.repeats = min(args.repeats, 2)
    record = run_benchmark(
        rows_single=args.rows_single,
        rows_join=args.rows_join,
        repeats=args.repeats,
    )
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for name, workload in record["workloads"].items():
        arms = workload["arms"]
        print(
            f"  {name:<13} naive {arms['naive']['seconds']:>8.3f}s  "
            f"planned {arms['planned']['seconds']:>8.3f}s  "
            f"cached {arms['planned_cached']['seconds']:>8.3f}s  "
            f"identical={workload['identical']}"
        )
        for label, value in workload["speedups"].items():
            print(f"    speedup {label:<18} {value:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
