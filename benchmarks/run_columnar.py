"""Columnar execution benchmark — writes ``BENCH_columnar.json``.

Measures the vectorized columnar arm (:mod:`repro.db.vectorized`)
against the planned row arm (:mod:`repro.db.planner` with
``columnar=False``) over SynQL-style scaled workloads: the same query
shapes run at a ladder of row counts and join fan-outs, so the record
shows not just the headline speedup but *where* vectorization starts
to win — the per-workload ``crossover_rows``.

Workload grid (retail schema, deterministic synthetic data):

* ``scan_topk``        — selective filter + ORDER BY DESC LIMIT over
  the fact table (vectorized mask + top-k sort);
* ``group_aggregate``  — single-table GROUP BY with COUNT/SUM/AVG
  (factorized group codes + segment reductions);
* ``join_aggregate``   — FK hash join into GROUP BY/SUM at join
  fan-outs 4 and 16 (factorized probe + ragged expansion);
* ``join3_topk``       — three-table join with filter, sort, LIMIT.

Fan-out is controlled directly: parent tables get ``rows / fanout``
rows while the ``orders`` fact table gets ``rows``, so each parent key
matches ~``fanout`` fact rows.

Both arms run through the same planner (:func:`execute_planned`); the
only difference is the ``columnar`` flag, so the comparison isolates
the kernels.  Results are property-checked bit-identical (values *and*
row order) between the arms at every size before timings are reported;
the record carries ``identical`` per workload and overall.  One warm-up
pass per arm precedes timing so lazy column-store builds and scan views
are amortized the way a long-lived session amortizes them.

The acceptance bar (ISSUE 6): columnar ≥ 10× the planned row arm on
the large-DB aggregate/join workloads.

Usage::

    PYTHONPATH=src python benchmarks/run_columnar.py [--smoke]
        [--sizes 256,1024,4096,16384] [--repeats 3]
        [--output BENCH_columnar.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.db import Database, execute_planned
from repro.schema import load_schema
from repro.sql.parser import parse

SEED = 23

#: (name, sql, join fan-out).  Queries are slot-free so one parse per
#: workload serves every size.
WORKLOADS = (
    (
        "scan_topk",
        "SELECT order_id, quantity FROM orders WHERE quantity > 2 "
        "ORDER BY quantity DESC LIMIT 100",
        1,
    ),
    (
        "group_aggregate",
        "SELECT quantity, COUNT(*), SUM(order_id) FROM orders "
        "WHERE order_id > 10 GROUP BY quantity ORDER BY quantity",
        1,
    ),
    (
        "join_aggregate_fanout4",
        "SELECT product.category, SUM(orders.quantity), COUNT(*) "
        "FROM product, orders "
        "WHERE orders.product_id = product.product_id "
        "GROUP BY product.category ORDER BY product.category",
        4,
    ),
    (
        "join_aggregate_fanout16",
        "SELECT product.category, SUM(orders.quantity), COUNT(*) "
        "FROM product, orders "
        "WHERE orders.product_id = product.product_id "
        "GROUP BY product.category ORDER BY product.category",
        16,
    ),
    (
        # FROM order matters: orders first so both parents arrive with a
        # join key (parent-first ordering would cross-product the parents).
        "join3_topk",
        "SELECT customer.name, product.product_name, orders.quantity "
        "FROM orders, customer, product "
        "WHERE orders.customer_id = customer.customer_id "
        "AND orders.product_id = product.product_id "
        "AND orders.quantity > 1 "
        "ORDER BY customer.name LIMIT 50",
        4,
    ),
)

#: Workloads the ISSUE 6 ≥10× acceptance bar applies to at the largest
#: size (aggregate/join shapes; the top-k scan is reported but not
#: gated — its row arm already stops at LIMIT).
HEADLINE_WORKLOADS = (
    "group_aggregate",
    "join_aggregate_fanout4",
    "join_aggregate_fanout16",
)


def make_database(rows: int, fanout: int, seed: int = SEED) -> Database:
    """Retail DB with ``rows`` fact rows and ~``fanout`` rows per parent."""
    rng = np.random.default_rng((seed, rows, fanout))
    parents = max(rows // fanout, 4)
    database = Database(load_schema("retail"))
    cities = [f"city_{i:02d}" for i in range(17)]
    categories = [f"cat_{i:02d}" for i in range(11)]
    database.insert_many(
        "customer",
        (
            {
                "customer_id": i,
                "name": f"name_{i:06d}",
                "city": cities[i % len(cities)],
                "age": int(rng.integers(18, 90)),
            }
            for i in range(parents)
        ),
    )
    database.insert_many(
        "product",
        (
            {
                "product_id": i,
                "product_name": f"prod_{i:06d}",
                "category": categories[i % len(categories)],
                "price": round(float(rng.uniform(1.0, 100.0)), 2),
                "stock": int(rng.integers(0, 500)),
            }
            for i in range(parents)
        ),
    )
    customer_ids = rng.integers(0, parents, size=rows)
    product_ids = rng.integers(0, parents, size=rows)
    quantities = rng.integers(1, 9, size=rows)
    database.insert_many(
        "orders",
        (
            {
                "order_id": i,
                "customer_id": int(customer_ids[i]),
                "product_id": int(product_ids[i]),
                "quantity": int(quantities[i]),
                "order_date": f"2024-{1 + i % 12:02d}-{1 + i % 28:02d}",
            }
            for i in range(rows)
        ),
    )
    return database


def time_arm(query, database: Database, columnar: bool, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        execute_planned(query, database, columnar=columnar)
    return time.perf_counter() - start


def run_workload(name: str, sql: str, fanout: int, sizes, repeats: int) -> dict:
    query = parse(sql)
    scaling = []
    identical = True
    crossover = None
    for rows in sizes:
        database = make_database(rows, fanout)
        row_result = execute_planned(query, database, columnar=False)
        col_result = execute_planned(query, database, columnar=True)
        size_identical = col_result == row_result
        identical = identical and size_identical
        # Warm-up above also built the column stores; timed passes now
        # measure steady-state execution.
        row_seconds = time_arm(query, database, columnar=False, repeats=repeats)
        col_seconds = time_arm(query, database, columnar=True, repeats=repeats)
        speedup = round(row_seconds / col_seconds, 2) if col_seconds > 0 else 0.0
        if crossover is None and col_seconds <= row_seconds:
            crossover = rows
        scaling.append(
            {
                "rows": rows,
                "identical": size_identical,
                "row_seconds": round(row_seconds, 5),
                "columnar_seconds": round(col_seconds, 5),
                "speedup": speedup,
            }
        )
    return {
        "workload": name,
        "sql": sql,
        "fanout": fanout,
        "identical": identical,
        "crossover_rows": crossover,
        "peak_speedup": max(s["speedup"] for s in scaling),
        "largest_speedup": scaling[-1]["speedup"],
        "scaling": scaling,
    }


def run_benchmark(sizes=None, repeats: int = 3) -> dict:
    sizes = list(sizes) if sizes else [64, 256, 1024, 4096, 16384]
    workloads = {}
    for name, sql, fanout in WORKLOADS:
        workloads[name] = run_workload(name, sql, fanout, sizes, repeats)
    headline = {
        name: workloads[name]["largest_speedup"] for name in HEADLINE_WORKLOADS
    }
    return {
        "benchmark": "columnar_execution",
        "schema": "retail",
        "sizes": sizes,
        "repeats": repeats,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "identical": all(w["identical"] for w in workloads.values()),
        "headline_speedups": headline,
        "workloads": workloads,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated fact-table row counts (default 64..16384 ladder)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run wired into the test suite so this script cannot rot",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_columnar.json"),
    )
    args = parser.parse_args(argv)
    sizes = (
        [int(s) for s in args.sizes.split(",")] if args.sizes else None
    )
    if args.smoke:
        sizes = [32, 128]
        args.repeats = min(args.repeats, 1)
    record = run_benchmark(sizes=sizes, repeats=args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for name, workload in record["workloads"].items():
        last = workload["scaling"][-1]
        crossover = workload["crossover_rows"]
        print(
            f"  {name:<24} rows {last['rows']:>6}  "
            f"row {last['row_seconds']:>8.3f}s  "
            f"columnar {last['columnar_seconds']:>8.3f}s  "
            f"speedup {last['speedup']:>6.2f}x  "
            f"crossover={crossover}  identical={workload['identical']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
