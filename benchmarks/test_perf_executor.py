"""Executor benchmark: hash-join planning vs the naive cross product.

Marked ``executor`` and excluded from tier-1 (``pytest -x -q`` collects
``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_executor.py -m executor

The test records the measured trajectory to ``BENCH_executor.json`` at
the repository root (the same record ``benchmarks/run_executor.py``
produces) and asserts the planner's headline claim (ISSUE 3): planned
execution — predicate pushdown + hash joins — is at least 5× faster
than the naive filtered cross product on the join-heavy workload,
while returning bit-identical results.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from run_executor import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_executor.json"

ROWS_JOIN = 100


@pytest.mark.executor
def test_executor_planning_speedup_recorded():
    if ROWS_JOIN**3 < 100_000:
        pytest.skip(
            "join tables too small for a meaningful cross-product baseline"
        )
    record = run_benchmark(rows_single=400, rows_join=ROWS_JOIN, repeats=3)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    # Correctness precedes speed: all arms bit-identical to naive.
    assert record["identical"] is True, record

    join = record["workloads"]["join_heavy"]
    # The acceptance bar from ISSUE 3: hash joins must beat the naive
    # cross product by at least 5x on the join-heavy workload.
    assert join["speedups"]["planned_vs_naive"] >= 5.0, join["speedups"]
    # The session cache can only help further on a repeated workload.
    assert join["speedups"]["cached_vs_naive"] >= 5.0, join["speedups"]
