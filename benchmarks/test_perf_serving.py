"""Serving benchmark: cached/batched service vs the naive translate loop.

Marked ``serving`` and excluded from tier-1 (``pytest -x -q`` collects
``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serving.py -m serving

The test records the measured load-test trajectory to
``BENCH_serving.json`` at the repository root (the same record
``benchmarks/run_serving.py`` produces) and asserts the serving layer's
headline claim: the closed-loop service — translation cache, request
coalescing, micro-batching — sustains at least twice the throughput of
the PR-1 one-at-a-time ``DBPal.translate`` loop on the same repeated-
question workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _common import speedup_assertable
from run_serving import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.mark.serving
@pytest.mark.sharded
def test_serving_throughput_recorded():
    record = run_benchmark(requests=600, clients=8, size_slotfills=6)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    speedups = record["speedups"]
    # The acceptance bar from ISSUE 2: cached/batched serving must at
    # least double the naive loop.  The cache does most of the lifting
    # (the workload repeats question *shapes*), so this holds even on
    # single-core hosts where threading buys nothing.
    assert speedups["serving_closed_vs_naive"] >= 2.0, speedups
    # The open-loop arm is offered 2x the naive rate; achieving it means
    # the service absorbed that load without queue collapse.
    closed = record["modes"]["serving_closed"]
    assert closed["ok"] == closed["requests"], closed

    # --- scale-out ladder (ISSUE 8) ---------------------------------
    arms = record["modes"]["sharded_open"]["arms"]
    for arm in arms.values():
        # Correctness is unconditional at every scale: bit-identical
        # payloads vs the sequential single-process reference, zero
        # duplicate cache keys across shards, every request answered.
        assert arm["identical"] is True, arm
        assert arm["duplicate_cache_keys"] == 0, arm
        assert arm["ok"] == arm["requests"], arm
    # Sustained-rate scaling needs real cores under the shards; a
    # 1-core host time-slices them and measures scheduling overhead.
    if speedup_assertable(cores=2):
        assert speedups["sharded_2_vs_1"] >= 1.6, speedups
