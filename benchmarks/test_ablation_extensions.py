"""Ablation — the §3.2.3 future-work extensions.

Two optional pipeline features beyond the paper's evaluated system:

* **POS-aware dropout** — word removal restricted to droppable word
  classes (never bare nouns);
* **extra paraphrase source** — a second colloquial paraphrase table
  merged into the PPDB.

Both are compared against the baseline pipeline on the Patients
benchmark.  These are exploratory features: the assertion only requires
them not to catastrophically regress (>= 80% of baseline accuracy);
the printed table records the actual effect.
"""

from __future__ import annotations

from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate, format_table
from repro.nlp import combined_paraphrase_database
from repro.schema import patients_schema

from _common import CURRENT, manual_spider_pairs, new_model

VARIANTS = {
    "baseline pipeline": {},
    "pos-aware dropout": {"pos_aware_dropout": True},
    "extra paraphrase source": {"ppdb": "combined"},
}


def _run(workload, schemas_map):
    spider = list(manual_spider_pairs())
    results = {}
    for name, options in VARIANTS.items():
        kwargs = dict(options)
        if kwargs.get("ppdb") == "combined":
            kwargs["ppdb"] = combined_paraphrase_database()
        pipeline = TrainingPipeline(
            patients_schema(),
            GenerationConfig(size_slotfills=CURRENT.synth_size_slotfills),
            seed=21,
            **kwargs,
        )
        corpus = pipeline.generate().subsample(CURRENT.patients_corpus_cap, seed=1)
        pairs = spider + corpus.pairs
        model = new_model(len(pairs))
        model.fit(pairs)
        results[name] = evaluate(
            model, workload, metric="exact", schemas=schemas_map
        )
    return results


def test_ablation_extensions(benchmark, patients_workload, schemas_map):
    results = benchmark.pedantic(
        _run, args=(patients_workload, schemas_map), rounds=1, iterations=1
    )
    categories = patients_workload.categories()
    rows = [
        [name]
        + [result.by_category().get(c, float("nan")) for c in categories]
        + [result.accuracy]
        for name, result in results.items()
    ]
    print()
    print(
        format_table(
            ["Variant", *categories, "Overall"],
            rows,
            title="Ablation: §3.2.3 extensions on the Patients benchmark",
        )
    )

    base = results["baseline pipeline"]
    pos = results["pos-aware dropout"]
    extra = results["extra paraphrase source"]
    # POS-aware dropout: targets the missing-information category
    # (never deleting nouns leaves more informative ellipses) without
    # losing overall accuracy.
    assert pos.accuracy >= 0.85 * base.accuracy
    assert pos.by_category().get("missing", 0.0) >= base.by_category().get(
        "missing", 0.0
    )
    # The extra colloquial source widens coverage but adds register
    # noise; it must still train a usable model (the printed table
    # records the measured trade-off).
    assert extra.accuracy >= 0.5 * base.accuracy
