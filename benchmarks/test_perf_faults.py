"""Fault-tolerance benchmark: checkpointing cost and recovery claims.

Marked ``faults`` and excluded from tier-1 (``pytest -x -q`` collects
``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_faults.py -m faults

The test records the measured arms to ``BENCH_faults.json`` at the
repository root (the same record ``benchmarks/run_faults.py`` produces)
and asserts the crash-safety layer's headline claims from ISSUE 4: the
per-shard commit protocol costs at most 5% throughput versus the PR-1
plain streaming write, an interrupted run resumes bit-identically, and
a poisoned shard is quarantined instead of aborting the run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from run_faults import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


@pytest.mark.faults
def test_fault_tolerance_recorded():
    record = run_benchmark("fast", workers=0)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    # The acceptance bar from ISSUE 4: checkpointing overhead <= 5%.
    assert record["overhead_within_target"], record["checkpoint_overhead_pct"]
    # Recovery resumed past the interrupt and reproduced the exact bytes
    # (byte identity is asserted inside run_benchmark; re-check the flag).
    recovery = record["modes"]["recovery"]
    assert recovery["byte_identical"] is True
    assert recovery["resumed_shards_skipped"] > 0
    # The poisoned shard was quarantined, not fatal.
    quarantine = record["modes"]["quarantine"]
    assert quarantine["run_survived"] is True
    assert quarantine["quarantined"][0]["code"] == "E_SHARD_CRASH"
