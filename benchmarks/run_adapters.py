"""Backend adapter benchmark — writes ``BENCH_adapters.json``.

Two questions, one record:

* **Execution latency** — how the sqlite adapter's compiled-SQL path
  (:mod:`repro.adapters.sqlite3_adapter`) compares to the in-memory
  reference engine behind the same :class:`~repro.adapters.BackendAdapter`
  protocol, over representative query shapes (scan+top-k, single-table
  GROUP BY, FK join aggregate, DISTINCT projection) at a ladder of
  database sizes.  Both arms run uncached and their normalized results
  are property-checked ``==`` at every size before timings are
  reported (the cross-backend contract), recorded per point as
  ``identical``.
* **Introspection throughput** — the pluggability story end to end:
  starting from a populated sqlite *file*, how long ``introspect()``
  takes to rebuild a :class:`~repro.schema.Schema` and how long the
  training pipeline takes to synthesize a corpus from that schema
  (pairs/sec), per built-in schema.

There is no speedup acceptance bar: the sqlite arm pays per-query SQL
compilation and engine round-trips by design.  The record documents
the cost of plugging in a real engine; the hard gate (bit-identical
results) is asserted here and in ``tests/test_adapters_differential.py``.

Usage::

    PYTHONPATH=src python benchmarks/run_adapters.py [--smoke]
        [--sizes 25,100,400] [--repeats 3]
        [--output BENCH_adapters.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.adapters import MemoryAdapter, SqliteAdapter
from repro.core import GenerationConfig, TrainingPipeline
from repro.db import populate
from repro.db.planner import ExecutorSession
from repro.schema import load_schema
from repro.sql.parser import parse

SEED = 29

#: (name, sql) over the retail schema's datagen population.
WORKLOADS = (
    (
        "scan_topk",
        "SELECT product_name, price FROM product WHERE price > 10 "
        "ORDER BY price DESC LIMIT 25",
    ),
    (
        "group_aggregate",
        "SELECT category, COUNT(*), AVG(price) FROM product "
        "GROUP BY category ORDER BY category",
    ),
    (
        "join_aggregate",
        "SELECT product.category, SUM(orders.quantity) "
        "FROM orders, product "
        "WHERE orders.product_id = product.product_id "
        "GROUP BY product.category ORDER BY product.category",
    ),
    (
        "distinct_projection",
        "SELECT DISTINCT city FROM customer ORDER BY city",
    ),
)

#: Schemas for the introspection→corpus end-to-end measurement.
INTROSPECTION_SCHEMAS = ("patients", "geography", "retail")


def time_arm(adapter, query, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        adapter.execute(query)
    return time.perf_counter() - start


def run_execution(sizes, repeats: int) -> dict:
    workloads = {}
    for name, sql in WORKLOADS:
        query = parse(sql)
        scaling = []
        identical = True
        for rows in sizes:
            database = populate(load_schema("retail"), rows_per_table=rows, seed=SEED)
            # Uncached session: repeats measure execution, not lookups.
            memory = MemoryAdapter(ExecutorSession(database, cache_size=0))
            with SqliteAdapter.from_database(database) as sqlite_arm:
                point_identical = memory.execute(query) == sqlite_arm.execute(query)
                identical = identical and point_identical
                memory_seconds = time_arm(memory, query, repeats)
                sqlite_seconds = time_arm(sqlite_arm, query, repeats)
            scaling.append(
                {
                    "rows_per_table": rows,
                    "identical": point_identical,
                    "memory_seconds": round(memory_seconds, 5),
                    "sqlite_seconds": round(sqlite_seconds, 5),
                    "sqlite_vs_memory": round(
                        sqlite_seconds / memory_seconds, 2
                    )
                    if memory_seconds > 0
                    else 0.0,
                }
            )
        workloads[name] = {
            "workload": name,
            "sql": sql,
            "identical": identical,
            "scaling": scaling,
        }
    return workloads


def run_introspection(rows_per_table: int, slotfills: int, tmp_dir: Path) -> dict:
    results = {}
    config = GenerationConfig(size_slotfills=slotfills)
    for schema_name in INTROSPECTION_SCHEMAS:
        database = populate(
            load_schema(schema_name), rows_per_table=rows_per_table, seed=SEED
        )
        path = tmp_dir / f"{schema_name}.db"
        load_start = time.perf_counter()
        SqliteAdapter.from_database(database, path=path).close()
        load_seconds = time.perf_counter() - load_start

        with SqliteAdapter(str(path)) as adapter:
            introspect_start = time.perf_counter()
            schema = adapter.introspect()
            introspect_seconds = time.perf_counter() - introspect_start
            warnings = len(adapter.last_introspection.warnings)

        generate_start = time.perf_counter()
        corpus = TrainingPipeline(schema, config, seed=1).generate()
        generate_seconds = time.perf_counter() - generate_start
        results[schema_name] = {
            "rows_per_table": rows_per_table,
            "tables": len(schema.table_names),
            "foreign_keys": len(schema.foreign_keys),
            "introspection_warnings": warnings,
            "pairs": len(corpus),
            "load_seconds": round(load_seconds, 5),
            "introspect_seconds": round(introspect_seconds, 5),
            "generate_seconds": round(generate_seconds, 5),
            "pairs_per_second": round(len(corpus) / generate_seconds, 1)
            if generate_seconds > 0
            else 0.0,
        }
    return results


def run_benchmark(sizes=None, repeats: int = 3, slotfills: int = 4, tmp_dir=None) -> dict:
    import tempfile

    sizes = list(sizes) if sizes else [25, 100, 400]
    with tempfile.TemporaryDirectory() as fallback:
        workloads = run_execution(sizes, repeats)
        introspection = run_introspection(
            rows_per_table=sizes[0],
            slotfills=slotfills,
            tmp_dir=Path(tmp_dir) if tmp_dir else Path(fallback),
        )
    return {
        "benchmark": "backend_adapters",
        "schema": "retail",
        "sizes": sizes,
        "repeats": repeats,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "identical": all(w["identical"] for w in workloads.values()),
        "workloads": workloads,
        "introspection": introspection,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated rows-per-table ladder (default 25,100,400)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run wired into the test suite so this script cannot rot",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_adapters.json"),
    )
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",")] if args.sizes else None
    slotfills = 4
    if args.smoke:
        sizes = [10, 25]
        args.repeats = min(args.repeats, 1)
        slotfills = 1
    record = run_benchmark(sizes=sizes, repeats=args.repeats, slotfills=slotfills)
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
