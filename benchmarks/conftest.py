"""Pytest fixtures shared by all paper-reproduction benchmarks."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _common import (  # noqa: E402
    CURRENT,
    schemas_by_name,
    trained_model,
)


@pytest.fixture(scope="session")
def schemas_map():
    return schemas_by_name()


@pytest.fixture(scope="session")
def spider_workload():
    from repro.bench import spider_test_workload

    return spider_test_workload(
        items_per_schema=CURRENT.test_items_per_schema, seed=200
    )


@pytest.fixture(scope="session")
def patients_workload():
    from repro.bench import build_patients_benchmark

    return build_patients_benchmark()


@pytest.fixture(scope="session")
def baseline_model():
    return trained_model("baseline")


@pytest.fixture(scope="session")
def dbpal_train_model():
    return trained_model("dbpal_train")


@pytest.fixture(scope="session")
def dbpal_full_model():
    return trained_model("dbpal_full")


@pytest.fixture(scope="session")
def dbpal_full_patients_model():
    return trained_model("dbpal_full", include_patients=True)
