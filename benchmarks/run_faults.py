"""Fault-tolerance benchmark — writes ``BENCH_faults.json``.

Measures what the crash-safety layer costs and what it buys, in four
arms over identical synthesis work (same seed → same corpus bytes):

* ``plain``        — the PR 1 streaming path: ``generate_stream`` into
  an atomic ``save_jsonl`` (no manifest, no supervisor).  The baseline
  the ≤5% checkpointing-overhead target is judged against (the same
  arm ``BENCH_synthesis.json`` measures as ``sequential``/``parallel``).
* ``checkpointed`` — :func:`generate_checkpointed`: per-shard commit
  protocol (flush + fsync + atomic manifest rename) and the resilient
  executor, no faults injected.
* ``recovery``     — a run interrupted at a shard boundary (injected
  :data:`~repro.core.faults.INTERRUPT` fault) and then resumed;
  measures recovery latency (wall-clock of the resumed leg) and
  asserts the spliced file is byte-identical to ``checkpointed``.
* ``quarantine``   — one poisoned template (persistent injected crash):
  the run must complete anyway, with the failure named in the report.

Usage::

    PYTHONPATH=src python benchmarks/run_faults.py [--profile full]
        [--workers 0] [--smoke] [--output BENCH_faults.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.core import (
    FaultPlan,
    FaultSpec,
    GenerationConfig,
    ResilienceConfig,
    TrainingPipeline,
)
from repro.core import faults as fault_kinds
from repro.core.checkpoint import STATUS_QUARANTINE
from repro.core.corpus_io import save_jsonl
from repro.core.seed_templates import SEED_TEMPLATES
from repro.errors import GracefulExit
from repro.perf import PerfRecorder
from repro.schema import load_schema

#: Arm parameters per profile (smoke = tiny but exercises every arm).
PROFILES = {
    "smoke": {"size_slotfills": 2, "schemas": ("patients",), "templates": 8},
    "fast": {"size_slotfills": 6, "schemas": ("patients", "geography"), "templates": None},
    "full": {
        "size_slotfills": 16,
        "schemas": ("patients", "geography", "retail", "flights"),
        "templates": None,
    },
}

SEED = 42


def _clear_global_caches() -> None:
    """Reset process-wide caches so each timed arm starts cold."""
    from repro.nlp.lemmatizer import lemmatize_word

    if hasattr(lemmatize_word, "cache_clear"):
        lemmatize_word.cache_clear()


def _pipeline(profile: dict) -> TrainingPipeline:
    schemas = [load_schema(name) for name in profile["schemas"]]
    templates = SEED_TEMPLATES
    if profile["templates"] is not None:
        templates = SEED_TEMPLATES[: profile["templates"]]
    config = GenerationConfig(size_slotfills=profile["size_slotfills"])
    return TrainingPipeline(schemas, config, templates=templates, seed=SEED)


def _arm_stats(seconds: float, pairs: int) -> dict:
    return {
        "seconds": round(seconds, 3),
        "pairs": pairs,
        "pairs_per_second": round(pairs / seconds, 1) if seconds > 0 else 0.0,
    }


def run_benchmark(profile_name: str, workers: int) -> dict:
    profile = PROFILES[profile_name]
    pipeline = _pipeline(profile)
    shard_count = pipeline._engine().shard_count
    resilience = ResilienceConfig(shard_timeout=120.0, backoff_base=0.01)
    modes: dict[str, dict] = {}

    with TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # -- plain (PR 1 streaming write, no checkpointing) -------------
        plain_out = tmp_path / "plain.jsonl"
        _clear_global_caches()
        start = time.perf_counter()
        written = save_jsonl(
            (
                pair
                for batch in pipeline.generate_stream(workers=workers)
                for pair in batch
            ),
            plain_out,
        )
        modes["plain"] = _arm_stats(time.perf_counter() - start, written)

        # -- checkpointed (no faults) -----------------------------------
        ckpt_out = tmp_path / "checkpointed.jsonl"
        recorder = PerfRecorder()
        _clear_global_caches()
        start = time.perf_counter()
        report = pipeline.generate_checkpointed(
            ckpt_out,
            workers=workers,
            resilience=resilience,
            recorder=recorder,
        )
        modes["checkpointed"] = _arm_stats(
            time.perf_counter() - start, report.new_pairs
        )
        modes["checkpointed"]["status"] = report.status
        modes["checkpointed"]["stages"] = recorder.report()
        assert plain_out.read_bytes() == ckpt_out.read_bytes(), (
            "checkpointed corpus diverged from the plain streaming write"
        )

        # -- recovery: interrupt at a shard boundary, then resume -------
        rec_out = tmp_path / "recovery.jsonl"
        interrupt_at = shard_count // 2
        plan = FaultPlan(
            (FaultSpec(fault_kinds.INTERRUPT, shard_index=interrupt_at),)
        )
        first_leg = PerfRecorder()
        start = time.perf_counter()
        try:
            pipeline.generate_checkpointed(
                rec_out,
                workers=workers,
                resilience=resilience,
                faults=plan,
                recorder=first_leg,
            )
            raise AssertionError("injected interrupt did not fire")
        except GracefulExit:
            pass
        interrupted_seconds = time.perf_counter() - start
        resumed_leg = PerfRecorder()
        start = time.perf_counter()
        resumed = pipeline.generate_checkpointed(
            rec_out,
            workers=workers,
            resume=True,
            resilience=resilience,
            recorder=resumed_leg,
        )
        recovery_seconds = time.perf_counter() - start
        first_leg.merge(resumed_leg)  # one logical run across both legs
        assert rec_out.read_bytes() == ckpt_out.read_bytes(), (
            "resumed corpus is not byte-identical to the uninterrupted run"
        )
        modes["recovery"] = {
            "interrupted_after_shards": interrupt_at + 1,
            "interrupted_seconds": round(interrupted_seconds, 3),
            "recovery_seconds": round(recovery_seconds, 3),
            "resumed_shards_skipped": resumed.resumed_shards,
            "pairs_total": resumed.pairs_written,
            "byte_identical": True,
            "stages": first_leg.report(),
        }

        # -- quarantine: one poisoned template never aborts the run -----
        poison_out = tmp_path / "quarantine.jsonl"
        poison_shard = min(3, shard_count - 1)
        plan = FaultPlan(
            (FaultSpec(fault_kinds.CRASH, shard_index=poison_shard, attempts=99),)
        )
        start = time.perf_counter()
        qreport = pipeline.generate_checkpointed(
            poison_out,
            workers=workers,
            resilience=ResilienceConfig(max_attempts=2, backoff_base=0.01),
            faults=plan,
        )
        assert qreport.status == STATUS_QUARANTINE, qreport.status
        assert len(qreport.quarantined) == 1
        failure = qreport.quarantined[0]
        modes["quarantine"] = {
            "seconds": round(time.perf_counter() - start, 3),
            "status": qreport.status,
            "completed_shards": qreport.completed_shards,
            "quarantined": [f.to_dict() for f in qreport.quarantined],
            "run_survived": True,
        }
        assert failure.schema_name and failure.template_id

    plain_pps = modes["plain"]["pairs_per_second"]
    ckpt_pps = modes["checkpointed"]["pairs_per_second"]
    overhead_pct = (
        round((plain_pps / ckpt_pps - 1.0) * 100.0, 2) if ckpt_pps > 0 else 0.0
    )
    return {
        "benchmark": "fault_tolerance",
        "profile": profile_name,
        "seed": SEED,
        "workers": workers,
        "shard_count": shard_count,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "modes": modes,
        "checkpoint_overhead_pct": overhead_pct,
        "overhead_target_pct": 5.0,
        "overhead_within_target": overhead_pct <= 5.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=("fast", "full"), default="full"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload exercising every arm (overrides --profile)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="synthesis workers per arm (0 = inline; identical output)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_faults.json"),
    )
    args = parser.parse_args(argv)
    profile = "smoke" if args.smoke else args.profile
    record = run_benchmark(profile, workers=args.workers)
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for mode in ("plain", "checkpointed"):
        stats = record["modes"][mode]
        print(
            f"  {mode:<14} {stats['seconds']:>8.3f}s"
            f"  {stats['pairs_per_second']:>9.1f} pairs/s"
        )
    recovery = record["modes"]["recovery"]
    print(
        f"  recovery       interrupted after {recovery['interrupted_after_shards']}"
        f" shards, resumed in {recovery['recovery_seconds']:.3f}s"
        f" (skipped {recovery['resumed_shards_skipped']})"
    )
    quarantine = record["modes"]["quarantine"]
    failure = quarantine["quarantined"][0]
    print(
        f"  quarantine     run survived; [{failure['code']}] "
        f"schema={failure['schema']} template={failure['template_id']}"
    )
    print(
        f"  checkpoint overhead {record['checkpoint_overhead_pct']:+.2f}% "
        f"(target <= {record['overhead_target_pct']:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
