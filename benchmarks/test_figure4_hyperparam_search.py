"""Figure 4 — histogram of accuracy under random hyperparameter search
(paper §6.3.3).

The data-generation procedure ``Generate(D, T, phi)`` is evaluated for
N randomly sampled parameter sets ``phi``; the paper reports the
distribution over 59 converged trials (min 0.375, max 0.555, mean
0.484, std 0.035) on the GeoQuery tuning workload.

Expected shape: a unimodal spread with a meaningful min-max gap —
tuning the generator matters — and the best configuration beating the
mean.
"""

from __future__ import annotations

from repro.bench import geoquery_workload
from repro.core import random_search
from repro.eval import format_histogram
from repro.schema import load_schema

from _common import CURRENT, new_model


def _search():
    schema = load_schema("geography")
    workload = geoquery_workload(size=120 if CURRENT.search_trials <= 10 else 280)

    def model_factory():
        return new_model(corpus_size=4000, seed=7, default_schema=schema)

    return random_search(
        schema,
        list(workload),
        model_factory,
        n_trials=CURRENT.search_trials,
        seed=5,
        corpus_cap=3500,
    )


def test_figure4_hyperparam_search(benchmark):
    result = benchmark.pedantic(_search, rounds=1, iterations=1)
    counts, edges = result.histogram(bins=8)
    summary = result.summary()
    print()
    print(
        format_histogram(
            counts,
            edges,
            title="Figure 4: accuracy histogram over random generator configurations",
        )
    )
    print("summary:", {k: round(v, 3) for k, v in summary.items()})
    print("best config:", result.best.config.to_dict())

    assert summary["trials"] == CURRENT.search_trials
    # Tuning must matter: a visible min-max spread, best > mean.
    assert summary["max"] > summary["mean"] >= summary["min"]
    assert summary["max"] - summary["min"] > 0.01
