"""Figure 3 — normalized accuracy vs fraction of seed templates (§6.3.2).

The same model is trained with DBPal synthesis for the Patients schema
restricted to a random subset of the seed templates (subset chosen
*before* instantiation, so whole patterns are excluded).  The paper
reports normalized accuracy (relative to using all templates) at 0%,
10%, 50% and 100%:

* 0%  -> the Spider-trained baseline only (low);
* 10% -> already >4x better than 0%;
* 50% -> ~15% below 100%;
* 100% -> 1.0 by definition.

Expected shape: a steep jump from 0% to 10%, then diminishing returns.
"""

from __future__ import annotations

import numpy as np

from repro.core import GenerationConfig, TrainingPipeline
from repro.core.seed_templates import SEED_TEMPLATES
from repro.eval import evaluate, format_series
from repro.schema import patients_schema

from _common import CURRENT, manual_spider_pairs, new_model

FRACTIONS = (0.0, 0.1, 0.5, 1.0)


def _accuracy_for_fraction(fraction, workload, schemas_map, rng):
    spider = list(manual_spider_pairs())
    pairs = spider
    if fraction > 0.0:
        count = max(1, int(round(len(SEED_TEMPLATES) * fraction)))
        chosen = rng.permutation(len(SEED_TEMPLATES))[:count]
        templates = [SEED_TEMPLATES[i] for i in sorted(chosen)]
        pipeline = TrainingPipeline(
            patients_schema(),
            GenerationConfig(size_slotfills=CURRENT.synth_size_slotfills),
            templates=templates,
            seed=33,
        )
        corpus = pipeline.generate().subsample(CURRENT.patients_corpus_cap, seed=0)
        pairs = spider + corpus.pairs
    model = new_model(len(pairs))
    model.fit(pairs)
    return evaluate(model, workload, metric="exact", schemas=schemas_map).accuracy


def _sweep(workload, schemas_map):
    """Accuracy per fraction; intermediate fractions average two random
    template subsets (the paper's random subset selection has high
    variance at 10% of ~90 templates)."""
    rng = np.random.default_rng(42)
    accuracies = {}
    for fraction in FRACTIONS:
        draws = 2 if 0.0 < fraction < 1.0 else 1
        values = [
            _accuracy_for_fraction(fraction, workload, schemas_map, rng)
            for _ in range(draws)
        ]
        accuracies[fraction] = sum(values) / len(values)
    return accuracies


def test_figure3_seed_templates(benchmark, patients_workload, schemas_map):
    accuracies = benchmark.pedantic(
        _sweep, args=(patients_workload, schemas_map), rounds=1, iterations=1
    )
    reference = accuracies[1.0] or 1e-9
    normalized = {
        f"{int(f * 100)}%": accuracies[f] / reference for f in FRACTIONS
    }
    print()
    print(
        format_series(
            normalized,
            title="Figure 3: normalized accuracy vs fraction of seed templates",
        )
    )
    print("raw accuracies:", {k: round(v, 3) for k, v in zip(normalized, accuracies.values())})

    # Shape: template coverage pays off; the full library is near-best.
    # (The paper's >4x jump from 0% to 10% presumes a baseline without
    # cross-schema transfer; our baseline transfers via schema slots, so
    # the 10% point is noisier — see EXPERIMENTS.md.)
    assert accuracies[1.0] > accuracies[0.0]
    assert accuracies[0.5] > accuracies[0.0]
    assert accuracies[1.0] >= accuracies[0.5] * 0.8  # 100% near-best
    assert accuracies[0.5] >= accuracies[0.1]
