"""Serving throughput benchmark — writes ``BENCH_serving.json``.

Measures the online query path under a realistic repeated-question
workload (distinct constants, shared anonymized shapes) in three arms
over the *same* fitted model and database:

* ``naive``          — the PR-1 runtime: a sequential
  ``DBPal.translate`` loop, one model call per question;
* ``serving_closed`` — closed-loop load through
  :class:`repro.serving.TranslationService`: C client threads, each
  issuing its next question as soon as the previous answers (measures
  sustainable throughput with caching + micro-batching + coalescing);
* ``serving_open``   — open-loop load: requests dispatched on a fixed
  arrival schedule regardless of completions (measures latency under a
  target offered rate, the millions-of-users shape);
* ``sharded_open``   — the same open-loop workload against
  :class:`repro.serving.ShardedService` at 1, 2, and 4 replicas (the
  scale-out ladder): sustained rate and p99 per replica count, plus a
  bit-identity check of every response payload against a sequential
  single-process reference and a zero-duplicate audit of the shard
  caches.  Scaling ratios only mean anything with as many cores as
  replicas (see ``_common.speedup_assertable``); the identity and
  exclusivity properties are asserted at any scale.

The serving arms share one anonymization-keyed translation cache, so
their steady-state cost per question is preprocess + cache hit +
postprocess — the model is consulted once per distinct question
*shape*.  The acceptance bar (ISSUE 2): cached/batched serving ≥ 2×
the naive loop on the same workload.

Usage::

    PYTHONPATH=src python benchmarks/run_serving.py [--smoke]
        [--requests 600] [--clients 8] [--output BENCH_serving.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import threading
import time
from pathlib import Path

from dataclasses import replace

from repro.core import GenerationConfig
from repro.db import populate
from repro.neural import RetrievalModel
from repro.runtime import DBPal
from repro.schema import load_schema
from repro.serving import (
    ServingConfig,
    ShardSpec,
    ShardedConfig,
    ShardedService,
    TranslationService,
)

#: Question shapes; ``{}`` slots are filled with constants drawn from
#: the populated database, so anonymization maps them onto shared keys.
TEMPLATES = (
    "show me the names of all patients with age {age}",
    "how many patients have age {age}",
    "show me all patients with length of stay {los}",
    "what is the average age of all patients",
    "how many patients are there",
    "what is the maximum length of stay of all patients",
)

SEED = 42


def build_workload(database, requests: int) -> list[str]:
    """Deterministic question list cycling templates × DB constants."""
    import numpy as np

    ages = sorted(set(database.column_values("patients", "age")))
    stays = sorted(set(database.column_values("patients", "length_of_stay")))
    rng = np.random.default_rng(SEED)
    questions = []
    for index in range(requests):
        template = TEMPLATES[index % len(TEMPLATES)]
        questions.append(
            template.format(
                age=ages[int(rng.integers(len(ages)))],
                los=stays[int(rng.integers(len(stays)))],
            )
        )
    return questions


def build_nlidb(size_slotfills: int) -> DBPal:
    """Patients DB + retrieval translator (deterministic, instant fit)."""
    schema = load_schema("patients")
    database = populate(schema, rows_per_table=40, seed=3)
    nlidb = DBPal(database)
    nlidb.train(
        RetrievalModel(),
        config=GenerationConfig(size_slotfills=size_slotfills),
        seed=SEED,
    )
    return nlidb


def run_naive(nlidb: DBPal, questions: list[str]) -> dict:
    """Sequential one-at-a-time DBPal.translate loop (the baseline)."""
    ok = 0
    start = time.perf_counter()
    for question in questions:
        if nlidb.translate(question).ok:
            ok += 1
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 3),
        "requests": len(questions),
        "ok": ok,
        "qps": round(len(questions) / seconds, 1) if seconds > 0 else 0.0,
    }


def _drain(service: TranslationService, questions: list[str], clients: int) -> int:
    """Closed-loop: ``clients`` threads pull questions off one iterator."""
    iterator = iter(questions)
    lock = threading.Lock()
    ok = [0]

    def client() -> None:
        while True:
            with lock:
                question = next(iterator, None)
            if question is None:
                return
            if service.translate(question).ok:
                with lock:
                    ok[0] += 1

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return ok[0]


def run_serving_closed(
    nlidb: DBPal, questions: list[str], clients: int, config: ServingConfig
) -> dict:
    with TranslationService(nlidb, config) as service:
        start = time.perf_counter()
        ok = _drain(service, questions, clients)
        seconds = time.perf_counter() - start
        stats = service.stats()
    return {
        "seconds": round(seconds, 3),
        "requests": len(questions),
        "ok": ok,
        "clients": clients,
        "qps": round(len(questions) / seconds, 1) if seconds > 0 else 0.0,
        "stats": stats,
    }


def run_serving_open(
    nlidb: DBPal, questions: list[str], rate: float, config: ServingConfig
) -> dict:
    """Open-loop: dispatch on a fixed schedule, gather all completions."""
    with TranslationService(nlidb, config) as service:
        interval = 1.0 / rate if rate > 0 else 0.0
        futures = []
        start = time.perf_counter()
        for index, question in enumerate(questions):
            target = start + index * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(service.submit(question))
        responses = [future.result() for future in futures]
        seconds = time.perf_counter() - start
        stats = service.stats()
    return {
        "seconds": round(seconds, 3),
        "requests": len(questions),
        "ok": sum(1 for r in responses if r.ok),
        "offered_qps": round(rate, 1),
        "achieved_qps": round(len(questions) / seconds, 1) if seconds > 0 else 0.0,
        "stats": stats,
    }


def _prebuilt(nlidb: DBPal) -> DBPal:
    """Module-level shard factory: hand back an already-built replica.

    Shards inherit ``nlidb`` through ``fork`` (copy-on-write), so each
    gets its own private copy post-fork without re-running populate +
    fit in every process; the front door's own ``spec.build()`` returns
    the parent's instance.
    """
    return nlidb


def reference_payloads(nlidb: DBPal, questions: list[str]) -> list[dict]:
    """Sequential single-process pass: the bit-identity ground truth."""
    config = ServingConfig(workers=1, request_timeout=60.0)
    with TranslationService(nlidb, config) as service:
        return [service.translate(q).payload() for q in questions]


def run_sharded_open(
    nlidb: DBPal,
    questions: list[str],
    rate: float,
    config: ServingConfig,
    replicas: int,
    reference: list[dict],
) -> dict:
    """One ladder arm: open-loop workload against ``replicas`` shards."""
    # The arm must complete every accepted request for the identity
    # check to be meaningful, so shedding is configured away: unbounded
    # admission queues and a generous in-flight cap.  Capacity then
    # shows up where it should — in achieved qps and p99.
    shard_config = replace(config, queue_capacity=0, request_timeout=60.0)
    spec = ShardSpec(_prebuilt, (nlidb,), config=shard_config)
    sharded = ShardedConfig(replicas=replicas, max_inflight_per_shard=4096)
    with ShardedService(spec, sharded) as service:
        interval = 1.0 / rate if rate > 0 else 0.0
        futures = []
        start = time.perf_counter()
        for index, question in enumerate(questions):
            target = start + index * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(service.submit(question))
        responses = [future.result() for future in futures]
        seconds = time.perf_counter() - start
        stats = service.stats()
        keys_by_shard = service.cache_keys()
    payloads = [response.payload() for response in responses]
    all_keys = [key for keys in keys_by_shard.values() for key in keys]
    latencies = sorted(response.latency for response in responses)
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "replicas": replicas,
        "seconds": round(seconds, 3),
        "requests": len(questions),
        "ok": sum(1 for r in responses if r.ok),
        "offered_qps": round(rate, 1),
        "achieved_qps": round(len(questions) / seconds, 1) if seconds > 0 else 0.0,
        "p99_seconds": round(p99, 6) if latencies else 0.0,
        "identical": payloads == reference,
        "duplicate_cache_keys": len(all_keys) - len(set(all_keys)),
        "cache_keys_per_shard": {
            name: len(keys) for name, keys in sorted(keys_by_shard.items())
        },
        "aggregate_hit_rate": stats["cluster"]["cache_hit_rate"],
        "respawns": stats["supervisor"]["respawns"],
        "quarantined": stats["supervisor"]["quarantined"],
    }


def run_benchmark(
    requests: int = 600,
    clients: int = 8,
    size_slotfills: int = 6,
    max_replicas: int = 4,
) -> dict:
    try:
        from _common import speedup_assertable
    except ModuleNotFoundError:  # imported from outside benchmarks/
        import sys

        sys.path.insert(0, str(Path(__file__).resolve().parent))
        try:
            from _common import speedup_assertable
        finally:
            sys.path.remove(str(Path(__file__).resolve().parent))

    nlidb = build_nlidb(size_slotfills)
    questions = build_workload(nlidb.database, requests)
    config = ServingConfig(workers=2, batch_window=0.002, request_timeout=30.0)

    naive = run_naive(nlidb, questions)
    closed = run_serving_closed(nlidb, questions, clients, config)
    # Offer the open-loop arm twice the naive throughput: sustainable
    # only because of the cache, which is exactly the claim under test.
    open_rate = max(20.0, naive["qps"] * 2.0)
    open_loop = run_serving_open(nlidb, questions, open_rate, config)

    # --- scale-out ladder -------------------------------------------
    # One sequential single-process pass is the payload ground truth
    # every arm must reproduce bit-identically; the offered rate is
    # deliberately past single-replica capacity so the ladder measures
    # *sustained* rate (completion throughput), not arrival rate.
    reference = reference_payloads(nlidb, questions)
    ladder = [r for r in (1, 2, 4) if r <= max_replicas]
    sharded_rate = max(40.0, naive["qps"] * 4.0)
    arms = {
        str(replicas): run_sharded_open(
            nlidb, questions, sharded_rate, config, replicas, reference
        )
        for replicas in ladder
    }

    def ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else 0.0

    def arm_ratio(high: str, low: str) -> float:
        if high not in arms or low not in arms:
            return 0.0
        return ratio(arms[high]["achieved_qps"], arms[low]["achieved_qps"])

    return {
        "benchmark": "serving_throughput",
        "requests": requests,
        "distinct_questions": len(set(questions)),
        "clients": clients,
        "size_slotfills": size_slotfills,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "serving_config": config.to_dict(),
        "modes": {
            "naive": naive,
            "serving_closed": closed,
            "serving_open": open_loop,
            "sharded_open": {
                "offered_qps": round(sharded_rate, 1),
                "arms": arms,
            },
        },
        "speedups": {
            "serving_closed_vs_naive": ratio(closed["qps"], naive["qps"]),
            "serving_open_vs_naive": ratio(open_loop["achieved_qps"], naive["qps"]),
            "sharded_2_vs_1": arm_ratio("2", "1"),
            "sharded_4_vs_1": arm_ratio("4", "1"),
        },
        "scaling_assertable": {
            "2_vs_1": speedup_assertable(cores=2),
            "4_vs_1": speedup_assertable(cores=4),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--size-slotfills", type=int, default=6)
    parser.add_argument(
        "--replicas",
        type=int,
        default=4,
        help="cap on the scale-out ladder (arms run at 1, 2, 4 up to this)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run wired into the test suite so this script cannot rot",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 60)
        args.clients = min(args.clients, 4)
        args.size_slotfills = min(args.size_slotfills, 2)
        args.replicas = min(args.replicas, 2)
    record = run_benchmark(
        requests=args.requests,
        clients=args.clients,
        size_slotfills=args.size_slotfills,
        max_replicas=args.replicas,
    )
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    modes = record["modes"]
    print(f"  naive           {modes['naive']['qps']:>8.1f} qps")
    print(f"  serving_closed  {modes['serving_closed']['qps']:>8.1f} qps")
    print(f"  serving_open    {modes['serving_open']['achieved_qps']:>8.1f} qps")
    for replicas, arm in modes["sharded_open"]["arms"].items():
        print(
            f"  sharded x{replicas}      {arm['achieved_qps']:>8.1f} qps"
            f"  p99 {arm['p99_seconds'] * 1000:>7.1f} ms"
            f"  identical={arm['identical']}"
            f"  dup_keys={arm['duplicate_cache_keys']}"
        )
    for name, value in record["speedups"].items():
        print(f"  speedup {name:<26} {value:.2f}x")
    hit_rate = modes["serving_closed"]["stats"]["cache_hit_rate"]
    print(f"  closed-loop cache hit rate {hit_rate:.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
