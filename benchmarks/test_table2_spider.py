"""Table 2 — Spider benchmark results (paper §6.1.2).

Reproduces the paper's comparison of the baseline model against the
two DBPal configurations on the Spider substitute, broken down by
difficulty.  Paper numbers (exact-match accuracy):

    Algorithm      Easy   Medium  Hard   Very Hard  Overall
    SyntaxSQLNet   0.445  0.227   0.231  0.051      0.248
    DBPal (Train)  0.472  0.300   0.252  0.107      0.299
    DBPal (Full)   0.480  0.323   0.279  0.122      0.317

The expected *shape* on the substitute: baseline < DBPal (Train) <
DBPal (Full) overall, with DBPal's largest relative gains on the harder
buckets.  Absolute values differ (our substrate is synthetic; see
DESIGN.md substitution #3).
"""

from __future__ import annotations

import math

from repro.eval import evaluate, format_table
from repro.sql.difficulty import DIFFICULTY_ORDER

from _common import CONFIGURATION_LABELS


def _evaluate_all(models, workload, schemas_map):
    results = {}
    for name, model in models.items():
        results[name] = evaluate(model, workload, metric="exact", schemas=schemas_map)
    return results


def test_table2_spider(
    benchmark,
    baseline_model,
    dbpal_train_model,
    dbpal_full_model,
    spider_workload,
    schemas_map,
):
    models = {
        "baseline": baseline_model,
        "dbpal_train": dbpal_train_model,
        "dbpal_full": dbpal_full_model,
    }
    results = benchmark.pedantic(
        _evaluate_all,
        args=(models, spider_workload, schemas_map),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, result in results.items():
        by_difficulty = result.by_difficulty()
        rows.append(
            [CONFIGURATION_LABELS[name]]
            + [by_difficulty[d] for d in DIFFICULTY_ORDER]
            + [result.accuracy]
        )
    print()
    print(
        format_table(
            ["Algorithm", "Easy", "Medium", "Hard", "Very Hard", "Overall"],
            rows,
            title="Table 2: Spider(-substitute) benchmark results",
        )
    )

    base = results["baseline"].accuracy
    train = results["dbpal_train"].accuracy
    full = results["dbpal_full"].accuracy
    # Paper shape: both DBPal configurations beat the baseline, and the
    # target-schema configuration beats schema-free synthesis.
    assert train > base, f"DBPal (Train) {train:.3f} should beat baseline {base:.3f}"
    assert full > train, f"DBPal (Full) {full:.3f} should beat DBPal (Train) {train:.3f}"
    assert not math.isnan(full)
