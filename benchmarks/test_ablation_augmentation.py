"""Ablation — contribution of each augmentation step (Table 1 / §3.2).

Not a paper table, but the design-choice ablation DESIGN.md calls out:
train on Patients-schema synthesis with (a) the full augmentation
pipeline, (b) paraphrasing disabled, (c) word dropout disabled, and
(d) no augmentation at all, then evaluate on the Patients benchmark.

Expected shape: full augmentation is the best overall; disabling
paraphrasing hurts the lexical/semantic categories most; disabling
dropout hurts the missing-information category most; no augmentation
is clearly worst among DBPal variants.
"""

from __future__ import annotations

from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate, format_table
from repro.schema import patients_schema

from _common import CURRENT, manual_spider_pairs, new_model

VARIANTS = {
    "full": {},
    "no-paraphrase": {"size_para": 0, "num_para": 0},
    "no-dropout": {"num_missing": 0, "rand_drop_p": 0.0},
    "no-augmentation": {
        "size_para": 0,
        "num_para": 0,
        "num_missing": 0,
        "rand_drop_p": 0.0,
    },
}


def _run_variants(workload, schemas_map):
    spider = list(manual_spider_pairs())
    results = {}
    for name, overrides in VARIANTS.items():
        config = GenerationConfig(
            size_slotfills=CURRENT.synth_size_slotfills
        ).with_overrides(**overrides)
        pipeline = TrainingPipeline(patients_schema(), config, seed=21)
        corpus = pipeline.generate().subsample(CURRENT.patients_corpus_cap, seed=1)
        pairs = spider + corpus.pairs
        model = new_model(len(pairs))
        model.fit(pairs)
        results[name] = evaluate(model, workload, metric="exact", schemas=schemas_map)
    return results


def test_ablation_augmentation(benchmark, patients_workload, schemas_map):
    results = benchmark.pedantic(
        _run_variants, args=(patients_workload, schemas_map), rounds=1, iterations=1
    )
    categories = patients_workload.categories()
    rows = []
    for name, result in results.items():
        by_category = result.by_category()
        rows.append(
            [name]
            + [by_category.get(c, float("nan")) for c in categories]
            + [result.accuracy]
        )
    print()
    print(
        format_table(
            ["Variant", *categories, "Overall"],
            rows,
            title="Ablation: augmentation steps on the Patients benchmark",
        )
    )

    # The full pipeline must beat the unaugmented variant overall.
    assert results["full"].accuracy > results["no-augmentation"].accuracy
