"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench trains the same class of model — a cross-domain,
grammar-constrained seq2seq (the SyntaxSQLNet stand-in) — under one of
the paper's three training configurations (§6.1.2):

* ``baseline``     — the human-annotated (Spider-substitute) training
  set only;
* ``dbpal_train``  — baseline + DBPal synthesis over the *training*
  schemas;
* ``dbpal_full``   — baseline + DBPal synthesis over training *and*
  test schemas (schemas only — never test NL-SQL pairs).

Scale profile: ``REPRO_PROFILE=fast`` (default) keeps corpora and
epochs small enough for a laptop run of the full suite;
``REPRO_PROFILE=full`` scales everything up for tighter numbers.
Models are trained once per configuration and cached for the whole
pytest session.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.bench import spider_schemas, spider_train_pairs
from repro.core import GenerationConfig, TrainingPipeline
from repro.neural import CrossDomainModel, SyntaxAwareModel
from repro.nlp.lemmatizer import lemmatize
from repro.schema import patients_schema

PROFILE = os.environ.get("REPRO_PROFILE", "fast")

#: Below this many rows, columnar-vs-row speedup ratios measure
#: per-query constant factors (numpy setup, plan dispatch), not the
#: kernels — the same reason PR 1 gated parallel-synthesis speedup
#: assertions on ``cpu_count``.  Benchmarks at smaller scales assert
#: only the ``identical`` property.
SPEEDUP_MIN_ROWS = 2000


def speedup_assertable(
    rows: int | None = None,
    min_rows: int = SPEEDUP_MIN_ROWS,
    cores: int | None = None,
) -> bool:
    """Whether a speedup-ratio assertion is meaningful on this run.

    Guard benchmark assertions with this instead of hard-failing runs
    where the ratio cannot physically materialize; the bit-identity
    property is asserted unconditionally either way.  Two independent
    gates, both optional:

    * ``rows`` — below ``min_rows`` the ratio measures per-query
      constant factors (numpy setup, plan dispatch), not the kernels;
    * ``cores`` — process-level scale-out (parallel synthesis, the
      sharded serving tier) needs at least this many cores before a
      >1x sustained-rate ratio is expected; a 1-core CI runner time-
      slices the shards and measures scheduling overhead instead.
    """
    if rows is not None and rows < min_rows:
        return False
    if cores is not None and (os.cpu_count() or 1) < cores:
        return False
    return True


@dataclass(frozen=True)
class Profile:
    spider_pairs_per_schema: int
    synth_size_slotfills: int
    corpus_cap: int
    patients_corpus_cap: int
    embed_dim: int
    hidden_dim: int
    step_budget: int  # epochs are chosen so steps ~ step_budget
    search_trials: int  # Figure 4 random-search trials
    test_items_per_schema: int


PROFILES = {
    "fast": Profile(
        spider_pairs_per_schema=150,
        synth_size_slotfills=6,
        corpus_cap=6000,
        patients_corpus_cap=4000,
        embed_dim=48,
        hidden_dim=96,
        step_budget=25_000,
        search_trials=8,
        test_items_per_schema=24,
    ),
    "full": Profile(
        spider_pairs_per_schema=400,
        synth_size_slotfills=16,
        corpus_cap=20_000,
        patients_corpus_cap=12_000,
        embed_dim=64,
        hidden_dim=128,
        step_budget=80_000,
        search_trials=20,
        test_items_per_schema=40,
    ),
}

CURRENT = PROFILES.get(PROFILE, PROFILES["fast"])

CONFIGURATIONS = ("baseline", "dbpal_train", "dbpal_full")

#: Display names matching the paper's tables.
CONFIGURATION_LABELS = {
    "baseline": "SyntaxSQLNet",
    "dbpal_train": "DBPal (Train)",
    "dbpal_full": "DBPal (Full)",
}

_CACHE: dict[str, object] = {}


def epochs_for(corpus_size: int) -> int:
    """Scale epochs so every configuration trains to rough convergence."""
    if corpus_size <= 0:
        return 1
    return max(5, min(40, CURRENT.step_budget // corpus_size))


def new_model(corpus_size: int, seed: int = 1, default_schema=None):
    """A fresh SyntaxSQLNet stand-in sized for ``corpus_size``."""
    train, test = spider_schemas()
    return CrossDomainModel(
        SyntaxAwareModel(
            embed_dim=CURRENT.embed_dim,
            hidden_dim=CURRENT.hidden_dim,
            epochs=epochs_for(corpus_size),
            batch_size=64,
            seed=seed,
        ),
        train + test + [patients_schema()],
        default_schema=default_schema,
    )


def manual_spider_pairs():
    """The human-annotated training set (lemmatized once, cached)."""
    if "spider" not in _CACHE:
        raw = spider_train_pairs(
            pairs_per_schema=CURRENT.spider_pairs_per_schema, seed=100
        )
        _CACHE["spider"] = [
            p.with_nl(lemmatize(p.nl), p.augmentation) for p in raw
        ]
    return _CACHE["spider"]


def synth_corpus(schemas, cap: int, seed: int = 10, config: GenerationConfig | None = None):
    """DBPal synthesis over ``schemas`` (cached by schema-name key)."""
    key = ("synth", tuple(s.name for s in schemas), cap, seed, config)
    if key not in _CACHE:
        pipeline = TrainingPipeline(
            schemas,
            config or GenerationConfig(size_slotfills=CURRENT.synth_size_slotfills),
            seed=seed,
        )
        _CACHE[key] = pipeline.generate().subsample(cap, seed=seed)
    return _CACHE[key]


def training_pairs_for(configuration: str, include_patients: bool = False):
    """Assemble the training pairs of one paper configuration.

    ``include_patients`` adds the Patients schema to the "test schema"
    pool, which is what DBPal (Full) means for the Table 3 evaluation.
    """
    spider = list(manual_spider_pairs())
    train_schemas, test_schemas = spider_schemas()
    if configuration == "baseline":
        return spider
    if configuration == "dbpal_train":
        corpus = synth_corpus(train_schemas, CURRENT.corpus_cap)
        return spider + corpus.pairs
    if configuration == "dbpal_full":
        # "Full" adds the *target* (test) schemas: the Spider test
        # schemas for the Spider evaluation, the Patients schema for
        # the Patients evaluation (§6.1.2, §6.2.2).
        if include_patients:
            pool = train_schemas + [patients_schema()]
        else:
            pool = train_schemas + test_schemas
        # Scale the cap with the schema pool so per-schema coverage
        # matches the dbpal_train configuration.
        cap = int(CURRENT.corpus_cap * len(pool) / len(train_schemas))
        corpus = synth_corpus(pool, cap)
        return spider + corpus.pairs
    raise ValueError(f"unknown configuration {configuration!r}")


def trained_model(configuration: str, include_patients: bool = False):
    """Train (or fetch from cache) the model of one configuration."""
    key = ("model", configuration, include_patients)
    if key not in _CACHE:
        pairs = training_pairs_for(configuration, include_patients)
        model = new_model(len(pairs))
        model.fit(pairs)
        _CACHE[key] = model
    return _CACHE[key]


def schemas_by_name():
    train_schemas, test_schemas = spider_schemas()
    mapping = {s.name: s for s in train_schemas + test_schemas}
    patients = patients_schema()
    mapping[patients.name] = patients
    return mapping
