"""Repair-loop benchmark: accuracy uplift and bounded latency cost.

Marked ``repair``-on-``perf`` and excluded from tier-1 (``pytest -x -q``
collects ``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_repair.py -m perf

The test records the measured arms to ``BENCH_repair.json`` at the
repository root (the same record ``benchmarks/run_repair.py`` produces)
and asserts the headline claims from ISSUE 9: at the default budget the
repair loop lifts translation accuracy on both the Patients and the
Spider-substitute workloads over the first-guess baseline, and its p95
latency stays within the configured deadline.  The accuracy uplift is
deterministic (fixed seeds, fixed corruption schedule) and asserted
unconditionally; wall-clock ratios are asserted only when
``speedup_assertable`` says the sample is large enough to mean
anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _common import speedup_assertable
from run_repair import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"

#: Seconds → milliseconds headroom over the budget deadline: one repair
#: run may overshoot the deadline by at most one lint + one execution,
#: both themselves deadline-charged, so 2x is a true upper bound.
DEADLINE_HEADROOM = 2.0


@pytest.mark.perf
def test_repair_uplift_recorded():
    record = run_benchmark("fast")
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    deadline_ms = record["budget"]["deadline"] * 1e3
    for name, stats in record["workloads"].items():
        first, fixed = stats["first_guess"], stats["repaired"]

        # -- accuracy: deterministic, asserted unconditionally ----------
        assert stats["corrupted"] > 0, name
        assert first["accuracy"] < 1.0, (name, first)
        assert fixed["accuracy"] > first["accuracy"], (name, stats)
        assert stats["accuracy_uplift"] > 0

        # The repaired arm must verify (execute) a majority of its wins,
        # not just lint them clean.
        assert fixed["verified"] >= fixed["outcomes"].get("repaired", 0) / 2

        # -- latency: hardware-dependent, gated ------------------------
        if speedup_assertable(rows=stats["items"], min_rows=40):
            assert fixed["latency_p95_ms"] <= deadline_ms * DEADLINE_HEADROOM, (
                name,
                fixed["latency_p95_ms"],
                deadline_ms,
            )
            # Repair costs something — but not orders of magnitude: the
            # p95 of the repaired arm stays within 250x of lint-only
            # (lint is microseconds; one bounded execution dominates).
            floor = max(first["latency_p95_ms"], 0.01)
            assert fixed["latency_p95_ms"] / floor < 250.0, (name, stats)
