"""Table 4 — pattern coverage breakdown for Spider (paper §6.3.1).

Splits every Spider(-substitute) test query by whether its SQL pattern
occurs in (a) both training sources, (b) only DBPal's synthesized data,
(c) only the Spider training set, (d) neither.  Paper numbers:

    Algorithm      Both   DBPal  Spider Unseen
    SyntaxSQLNet   0.375  0.000  0.244  0.013
    DBPal (Train)  0.458  0.000  0.287  0.026
    DBPal (Full)   0.462  0.250  0.317  0.040

Expected shape: the baseline scores 0 on the DBPal-only bucket (those
patterns never appear in its training data), DBPal configurations
recover them, and accuracy improves across every bucket.
"""

from __future__ import annotations

from repro.eval import BUCKETS, coverage_breakdown, evaluate, format_table

from _common import CONFIGURATION_LABELS, manual_spider_pairs, training_pairs_for


def _breakdowns(models, workload, schemas_map):
    # The paper's buckets are fixed: pattern presence in the Spider
    # training set vs. in DBPal's (Full) augmented data.  Accuracy per
    # bucket is then reported for each model.
    spider_sql = [p.sql for p in manual_spider_pairs()]
    dbpal_sql = [
        p.sql for p in training_pairs_for("dbpal_full") if p.augmentation != "manual"
    ]
    breakdowns = {}
    for name, model in models.items():
        result = evaluate(model, workload, metric="exact", schemas=schemas_map)
        breakdowns[name] = coverage_breakdown(result, spider_sql, dbpal_sql)
    return breakdowns


def test_table4_pattern_coverage(
    benchmark,
    baseline_model,
    dbpal_train_model,
    dbpal_full_model,
    spider_workload,
    schemas_map,
):
    models = {
        "baseline": baseline_model,
        "dbpal_train": dbpal_train_model,
        "dbpal_full": dbpal_full_model,
    }
    breakdowns = benchmark.pedantic(
        _breakdowns,
        args=(models, spider_workload, schemas_map),
        rounds=1,
        iterations=1,
    )

    rows = [
        [CONFIGURATION_LABELS[name]] + [b.accuracy[bucket] for bucket in BUCKETS]
        for name, b in breakdowns.items()
    ]
    print()
    print(
        format_table(
            ["Algorithm", "Both", "DBPal", "Spider", "Unseen"],
            rows,
            title="Table 4: pattern coverage breakdown",
        )
    )
    counts = next(iter(breakdowns.values())).counts
    print("bucket sizes:", counts)

    # Every bucket must be populated for the analysis to be meaningful.
    assert all(counts[b] > 0 for b in BUCKETS), counts
    # The baseline has never seen DBPal-only patterns -> 0 accuracy there.
    assert breakdowns["baseline"].accuracy["dbpal"] == 0.0
    # DBPal (Full) recovers at least part of its own pattern bucket.
    assert breakdowns["dbpal_full"].accuracy["dbpal"] > 0.0
