"""Ablation — post-processing repair and grammar-constrained decoding.

Two system design choices beyond the paper's tables:

* §4.2/§5.1 post-processing (FROM repair + @JOIN expansion): evaluate
  the same trained model with and without the repair pass;
* the grammar-constrained decoder of the SyntaxSQLNet stand-in:
  compare constrained vs unconstrained decoding of the same
  architecture on parse rate and accuracy.

Expected shapes: repair never hurts and helps on join-heavy items;
constrained decoding achieves a (weakly) higher parse rate.
"""

from __future__ import annotations

from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate, format_table, parse_rate
from repro.neural import CrossDomainModel, SyntaxAwareModel
from repro.schema import patients_schema

from _common import CURRENT, epochs_for


def test_ablation_postprocessing_repair(
    benchmark, dbpal_full_model, spider_workload, schemas_map
):
    def run():
        with_repair = evaluate(
            dbpal_full_model, spider_workload, metric="exact", schemas=schemas_map
        )
        without_repair = evaluate(
            dbpal_full_model,
            spider_workload,
            metric="exact",
            schemas=schemas_map,
            postprocess=False,
        )
        return with_repair, without_repair

    with_repair, without_repair = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Post-processing", "Overall accuracy"],
            [
                ["with repair", with_repair.accuracy],
                ["without repair", without_repair.accuracy],
            ],
            title="Ablation: post-processing repair (@JOIN expansion + FROM repair)",
        )
    )
    assert with_repair.accuracy >= without_repair.accuracy


def test_ablation_grammar_constrained_decoding(benchmark, patients_workload, schemas_map):
    schema = patients_schema()
    pipeline = TrainingPipeline(
        schema, GenerationConfig(size_slotfills=CURRENT.synth_size_slotfills), seed=8
    )
    corpus = pipeline.generate().subsample(CURRENT.patients_corpus_cap, seed=2)

    def run():
        rows = {}
        for constrained in (True, False):
            inner = SyntaxAwareModel(
                embed_dim=CURRENT.embed_dim,
                hidden_dim=CURRENT.hidden_dim,
                epochs=epochs_for(len(corpus)),
                seed=3,
                constrained=constrained,
            )
            model = CrossDomainModel(inner, [schema], default_schema=schema)
            model.fit(corpus.pairs)
            result = evaluate(
                model, patients_workload, metric="exact", schemas=schemas_map
            )
            predictions = [r.prediction for r in result.records]
            rows[constrained] = (result.accuracy, parse_rate(predictions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Decoding", "Accuracy", "Parse rate"],
            [
                ["grammar-constrained", rows[True][0], rows[True][1]],
                ["unconstrained", rows[False][0], rows[False][1]],
            ],
            title="Ablation: grammar-constrained vs unconstrained decoding",
        )
    )
    # Constrained decoding can never produce a lower parse rate.
    assert rows[True][1] >= rows[False][1]
