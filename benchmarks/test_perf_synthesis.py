"""Perf benchmark: sequential vs parallel synthesis throughput.

Marked ``perf`` and excluded from tier-1 (``pytest -x -q`` collects
``tests/`` only); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_synthesis.py -m perf

The test records the measured throughput trajectory to
``BENCH_synthesis.json`` at the repository root (the same record
``benchmarks/run_perf.py`` produces) and asserts the engine's two
speedup claims on multi-core hosts; on single-core hosts the parallel
arms only measure pool overhead, so just the caching claim is held.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from run_perf import run_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_synthesis.json"


@pytest.mark.perf
def test_synthesis_throughput_recorded():
    # Default to the full profile: the recorded trajectory should track
    # the corpus scale the paper's tables are built from.
    profile = os.environ.get("REPRO_PROFILE", "full")
    if profile not in ("fast", "full"):
        profile = "full"
    record = run_benchmark(profile=profile, workers=(2, 4))
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    speedups = record["speedups"]
    cores = record["cpu_count"] or 1
    # Caching alone must pay for itself sequentially — this holds on
    # any hardware because both arms run the same inline shard loop.
    assert speedups["caching_alone"] >= 1.3, speedups
    if cores >= 2:
        # The full engine at 4 workers vs the uncached baseline.  On a
        # single-core host the parallel arm measures process-pool
        # overhead under time-slicing, not speedup, so the parallel
        # claims are only enforced where parallelism exists.
        assert speedups["workers4_vs_baseline"] >= 1.5, speedups
    if cores >= 4:
        # Genuine scaling past the caching win needs >= 4 real cores.
        assert speedups["workers4_vs_sequential"] >= 1.5, speedups
