"""Table 3 — Patients benchmark results (paper §6.2.2).

Semantic-equivalence accuracy per linguistic-variation category.
Paper numbers:

    Algorithm      Naive  Syntactic  Lexical  Morph.  Semantic  Missing  Mixed  Overall
    SyntaxSQLNet   0.281  0.228      0.070    0.175   0.175     0.088    0.140  0.165
    DBPal (Train)  0.930  0.333      0.404    0.667   0.228     0.088    0.193  0.409
    DBPal (Full)   0.947  0.632      0.544    0.667   0.491     0.158    0.298  0.531

Expected shape on the substitute: large gains from DBPal overall, the
naive category nearly solved by DBPal, and target-schema synthesis
(Full) pulling far ahead on the semantically hard categories; the
missing/mixed categories stay the hardest.
"""

from __future__ import annotations

from repro.bench.patients import CATEGORIES
from repro.db import populate
from repro.eval import evaluate, format_table
from repro.schema import patients_schema
from repro.sql import EquivalenceChecker


def _checker():
    databases = [
        populate(patients_schema(), rows_per_table=25, seed=seed)
        for seed in (3, 11)
    ]
    return EquivalenceChecker(databases)


def _evaluate_all(models, workload, schemas_map, checker):
    return {
        name: evaluate(
            model, workload, metric="semantic", checker=checker, schemas=schemas_map
        )
        for name, model in models.items()
    }


def test_table3_patients(
    benchmark,
    baseline_model,
    dbpal_train_model,
    dbpal_full_patients_model,
    patients_workload,
    schemas_map,
):
    models = {
        "SyntaxSQLNet": baseline_model,
        "DBPal (Train)": dbpal_train_model,
        "DBPal (Full)": dbpal_full_patients_model,
    }
    checker = _checker()
    results = benchmark.pedantic(
        _evaluate_all,
        args=(models, patients_workload, schemas_map, checker),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, result in results.items():
        by_category = result.by_category()
        rows.append(
            [name]
            + [by_category.get(c, float("nan")) for c in CATEGORIES]
            + [result.accuracy]
        )
    print()
    print(
        format_table(
            ["Algorithm", *[c.capitalize() for c in CATEGORIES], "Overall"],
            rows,
            title="Table 3: Patients benchmark results (semantic equivalence)",
        )
    )

    base = results["SyntaxSQLNet"].accuracy
    train = results["DBPal (Train)"].accuracy
    full = results["DBPal (Full)"].accuracy
    assert train > base, f"DBPal (Train) {train:.3f} should beat baseline {base:.3f}"
    assert full > train, f"DBPal (Full) {full:.3f} should beat DBPal (Train) {train:.3f}"
    # DBPal (Full) should nearly solve the naive category (paper: 0.947).
    naive_full = results["DBPal (Full)"].by_category().get("naive", 0.0)
    assert naive_full >= 0.5, f"naive category too low: {naive_full:.3f}"
