"""Per-stage wall-clock timers and throughput counters.

Synthesis performance work needs numbers before it needs opinions, so
the pipeline (and anything else with stages) can carry a
:class:`PerfRecorder`: a tiny accumulator of per-stage wall-clock time,
item counts, and derived items/sec rates.  Recording is cheap enough to
leave on in production paths — a recorder is only consulted when the
caller passes one.

Parallel synthesis workers time their own stages and return plain
``{stage: seconds}`` dicts; the parent merges them with
:meth:`PerfRecorder.add`, so a report over a multi-process run shows
aggregate CPU seconds per stage next to the observed wall-clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class StageTimer:
    """Context manager measuring one wall-clock span.

    >>> with StageTimer() as timer:
    ...     work()
    >>> timer.seconds
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class StageStats:
    """Accumulated numbers for one named stage.

    ``seconds`` is **cumulative busy time**: spans are summed across
    every thread that reports into the stage, so under concurrency it
    can exceed wall-clock (8 worker threads preprocessing for 1s each
    inside a 1s window report 8s).  ``first_start``/``last_end``
    bracket the stage's activity on this process's ``perf_counter``
    timeline; their difference (:attr:`wall_seconds`) is the wall-clock
    span — the two are reported side by side so a >100% "utilization"
    reads as concurrency, not as a broken timer.
    """

    seconds: float = 0.0
    calls: int = 0
    items: int = 0
    first_start: float | None = None
    last_end: float | None = None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock span from first entry to last exit (0.0 if idle)."""
        if self.first_start is None or self.last_end is None:
            return 0.0
        return max(0.0, self.last_end - self.first_start)

    def observe_span(self, start: float, end: float) -> None:
        """Widen the wall-clock bracket to include [start, end]."""
        self.first_start = (
            start if self.first_start is None else min(self.first_start, start)
        )
        self.last_end = end if self.last_end is None else max(self.last_end, end)

    @property
    def items_per_second(self) -> float:
        """Throughput; 0.0 for idle stages (zero items *or* zero time).

        Serving snapshots consult this on live, possibly-empty stages
        (an idle service has recorded no items and no seconds), so both
        degenerate cases must yield a clean 0.0 rather than divide.
        """
        if self.items <= 0 or self.seconds <= 0:
            return 0.0
        return self.items / self.seconds

    @property
    def seconds_per_call(self) -> float:
        """Mean wall-clock per recorded call; 0.0 before any call."""
        if self.calls <= 0:
            return 0.0
        return self.seconds / self.calls


@dataclass
class PerfRecorder:
    """Accumulates per-stage wall-clock time and throughput counters."""

    stages: dict[str, StageStats] = field(default_factory=dict)

    def add(self, stage: str, seconds: float, items: int = 0) -> None:
        """Fold one measurement into ``stage``'s running totals.

        The span is approximated as ending now (callers report a
        duration immediately after measuring it), which is accurate
        enough for the wall-clock bracket; use :meth:`stage` when the
        exact span matters.
        """
        stats = self.stages.setdefault(stage, StageStats())
        stats.seconds += seconds
        stats.calls += 1
        stats.items += items
        end = time.perf_counter()
        stats.observe_span(end - max(0.0, seconds), end)

    def count(self, stage: str, items: int) -> None:
        """Add items to a stage without adding time (e.g. merged pairs)."""
        stats = self.stages.setdefault(stage, StageStats())
        stats.items += items

    @contextmanager
    def stage(self, name: str):
        """Time a ``with`` block as one call of stage ``name``.

        Yields the :class:`StageStats` so the block can attach an item
        count: ``with recorder.stage("merge") as s: ...; s.items += n``.
        """
        stats = self.stages.setdefault(name, StageStats())
        start = time.perf_counter()
        try:
            yield stats
        finally:
            end = time.perf_counter()
            stats.seconds += end - start
            stats.calls += 1
            stats.observe_span(start, end)

    def merge(self, other: "PerfRecorder") -> None:
        """Fold another recorder's totals into this one.

        Used to aggregate stage timings across process lifetimes — e.g.
        an interrupted synthesis run plus its ``--resume`` continuation
        report as one logical run.
        """
        for name, stats in other.stages.items():
            mine = self.stages.setdefault(name, StageStats())
            mine.seconds += stats.seconds
            mine.calls += stats.calls
            mine.items += stats.items
            if stats.first_start is not None and stats.last_end is not None:
                mine.observe_span(stats.first_start, stats.last_end)

    def seconds(self, stage: str) -> float:
        return self.stages[stage].seconds if stage in self.stages else 0.0

    def throughput(self, stage: str) -> float:
        """Items/sec for one stage (0.0 if unmeasured, idle, or timeless)."""
        return self.stages[stage].items_per_second if stage in self.stages else 0.0

    def report(self) -> dict[str, dict[str, float]]:
        """Plain-dict snapshot (JSON-ready, for BENCH files and logs)."""
        return {
            name: {
                # "seconds" predates the busy/wall split and is kept as
                # an alias of busy_seconds for existing consumers.
                "seconds": round(stats.seconds, 6),
                "busy_seconds": round(stats.seconds, 6),
                "wall_seconds": round(stats.wall_seconds, 6),
                "calls": stats.calls,
                "items": stats.items,
                "items_per_second": round(stats.items_per_second, 3),
            }
            for name, stats in self.stages.items()
        }

    def format_table(self, title: str = "perf") -> str:
        """A small fixed-width table for terminal output."""
        lines = [f"{title}:"]
        width = max((len(n) for n in self.stages), default=5)
        for name, stats in self.stages.items():
            rate = (
                f"  {stats.items_per_second:>10.1f} items/s" if stats.items else ""
            )
            lines.append(
                f"  {name:<{width}}  {stats.seconds:>8.3f}s"
                f"  x{stats.calls:<5d}{rate}"
            )
        return "\n".join(lines)
