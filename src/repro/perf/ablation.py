"""Cache ablation: run synthesis with the hot-path caches disabled.

The caching work (memoized :class:`TrainingPair` keys, the lemmatizer
word cache, the PPDB lookup cache) claims a sequential speedup; a claim
like that needs an A/B under the *same* code version.
:func:`uncached_hot_paths` temporarily restores the uncached behaviour
of every memoized hot path so benchmarks can measure "caching alone"
honestly — the surrounding engine (sharding, fast-fail) stays active in
both arms.
"""

from __future__ import annotations

from contextlib import contextmanager


@contextmanager
def uncached_hot_paths():
    """Disable all synthesis hot-path caches inside the ``with`` block.

    Patches are class/module level, so pairs created before the block
    keep working (``property`` is a data descriptor and shadows any
    previously cached ``__dict__`` entry).  Not thread-safe — intended
    for benchmark processes only.
    """
    # Imported here, not at module level: repro.core.parallel imports
    # repro.perf.instrumentation, so importing repro.core at import time
    # of this package would create a cycle.
    from repro.core import templates as _templates
    from repro.nlp import lemmatizer as _lemmatizer
    from repro.nlp import ppdb as _ppdb
    from repro.sql.printer import to_sql

    def uncached_sql_text(pair) -> str:
        return to_sql(pair.sql)

    def uncached_key(pair) -> tuple[str, str]:
        return (pair.nl, to_sql(pair.sql))

    def uncached_lookup(self, phrase, max_candidates=None):
        phrase = phrase.lower().strip()
        entries = self._resolve(phrase)
        if max_candidates is not None:
            entries = entries[:max_candidates]
        return entries

    cached_sql_text = _templates.TrainingPair.__dict__["sql_text"]
    cached_key = _templates.TrainingPair.key
    cached_word = _lemmatizer.lemmatize_word
    cached_lookup = _ppdb.ParaphraseDatabase.lookup
    try:
        _templates.TrainingPair.sql_text = property(uncached_sql_text)
        _templates.TrainingPair.key = uncached_key
        _lemmatizer.lemmatize_word = _lemmatizer.lemmatize_word_uncached
        _ppdb.ParaphraseDatabase.lookup = uncached_lookup
        yield
    finally:
        _templates.TrainingPair.sql_text = cached_sql_text
        _templates.TrainingPair.key = cached_key
        _lemmatizer.lemmatize_word = cached_word
        _ppdb.ParaphraseDatabase.lookup = cached_lookup
