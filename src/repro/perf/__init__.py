"""Performance instrumentation and ablation tools for the pipeline."""

from repro.perf.ablation import uncached_hot_paths
from repro.perf.instrumentation import PerfRecorder, StageStats, StageTimer

__all__ = [
    "PerfRecorder",
    "StageStats",
    "StageTimer",
    "uncached_hot_paths",
]
