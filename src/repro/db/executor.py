"""Query executor over the in-memory database.

Implements the classic pipeline FROM → WHERE → GROUP BY → HAVING →
SELECT → DISTINCT → ORDER BY → LIMIT for the SQL subset.  Multi-table
FROM clauses are evaluated as a cross product filtered by the WHERE
predicate — the shape the post-processor emits after expanding the
``@JOIN`` placeholder into explicit tables plus join conditions.

Results are lists of dicts keyed by output-column labels, in output
order.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import ExecutionError
from repro.db.expressions import JoinedRow, evaluate_predicate, resolve_column
from repro.db.functions import evaluate_aggregate
from repro.db.storage import Database, Row
from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    Aggregate,
    ColumnRef,
    Comparison,
    Query,
    Star,
    Subquery,
)

#: Guard against accidentally exploding cross products in tests.
MAX_CROSS_PRODUCT = 2_000_000


def execute(query: Query, database: Database, max_rows: int | None = None) -> list[Row]:
    """Execute ``query`` against ``database``.

    Raises :class:`~repro.errors.ExecutionError` for queries outside
    the executable subset (unresolved placeholders, unknown tables or
    columns, correlated subqueries).
    """
    if query.uses_join_placeholder:
        raise ExecutionError(
            f"cannot execute query with unresolved {JOIN_PLACEHOLDER} placeholder; "
            "run the post-processor first"
        )
    for table in query.from_tables:
        if table not in database.schema:
            raise ExecutionError(
                f"unknown table {table!r} in schema {database.schema.name!r}"
            )

    subquery_cache: dict[int, Any] = {}

    def subquery_values(sub: Subquery) -> Any:
        key = id(sub)
        if key not in subquery_cache:
            subquery_cache[key] = _execute_subquery(sub.query, database)
        return subquery_cache[key]

    # FROM: cross product of the referenced tables.
    per_table_rows = [database.rows(t) for t in query.from_tables]
    size = 1
    for rows in per_table_rows:
        size *= max(len(rows), 1)
    if size > MAX_CROSS_PRODUCT:
        raise ExecutionError(
            f"cross product of {query.from_tables} has {size} rows; refusing"
        )
    joined: list[JoinedRow] = [
        dict(zip(query.from_tables, combo))
        for combo in itertools.product(*per_table_rows)
    ]

    # WHERE.
    if query.where is not None:
        joined = [
            row
            for row in joined
            if evaluate_predicate(query.where, row, subquery_values)
        ]

    has_aggregates = bool(query.aggregates()) or any(
        isinstance(i, Aggregate) for i in query.select
    )

    if query.group_by or has_aggregates:
        output = _execute_grouped(query, joined, subquery_values)
    else:
        output = _execute_plain(query, joined, subquery_values)

    if query.distinct:
        seen: set[tuple] = set()
        unique = []
        for row in output:
            key = tuple(row.values())
            if key not in seen:
                seen.add(key)
                unique.append(row)
        output = unique

    if query.order_by:
        output = _order_rows(output, query)

    if query.limit is not None:
        output = output[: query.limit]
    if max_rows is not None:
        output = output[:max_rows]
    return output


# ----------------------------------------------------------------------
# Non-grouped execution
# ----------------------------------------------------------------------


def _execute_plain(query: Query, joined: list[JoinedRow], subquery_values) -> list[Row]:
    output: list[Row] = []
    for row in joined:
        record: Row = {}
        for item in query.select:
            if isinstance(item, Star):
                for table in query.from_tables:
                    for column, value in row[table].items():
                        record[_star_label(query, table, column)] = value
            elif isinstance(item, ColumnRef):
                record[str(item)] = resolve_column(item, row)
            else:
                raise ExecutionError(
                    f"aggregate {item} outside grouped execution"
                )
        # Keep sort keys accessible for ORDER BY on non-selected columns.
        for order in query.order_by:
            if isinstance(order.expr, ColumnRef) and str(order.expr) not in record:
                record["__order__" + str(order.expr)] = resolve_column(order.expr, row)
        output.append(record)
    return output


def _star_label(query: Query, table: str, column: str) -> str:
    return f"{table}.{column}" if len(query.from_tables) > 1 else column


# ----------------------------------------------------------------------
# Grouped execution
# ----------------------------------------------------------------------


def _execute_grouped(query: Query, joined: list[JoinedRow], subquery_values) -> list[Row]:
    groups: dict[tuple, list[JoinedRow]] = {}
    if query.group_by:
        for row in joined:
            key = tuple(resolve_column(c, row) for c in query.group_by)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = joined

    output: list[Row] = []
    for key, rows in groups.items():
        if query.having is not None:
            if not _evaluate_group_predicate(query.having, rows, key, query, subquery_values):
                continue
        record: Row = {}
        for item in query.select:
            if isinstance(item, Aggregate):
                record[str(item)] = _aggregate_over(item, rows)
            elif isinstance(item, ColumnRef):
                record[str(item)] = _group_key_value(item, key, query, rows)
            elif isinstance(item, Star):
                raise ExecutionError("SELECT * cannot be combined with GROUP BY")
        for order in query.order_by:
            label = str(order.expr)
            if label in record:
                continue
            if isinstance(order.expr, Aggregate):
                record["__order__" + label] = _aggregate_over(order.expr, rows)
            else:
                record["__order__" + label] = _group_key_value(
                    order.expr, key, query, rows
                )
        output.append(record)
    return output


def _aggregate_over(agg: Aggregate, rows: list[JoinedRow]) -> Any:
    if isinstance(agg.arg, Star):
        return evaluate_aggregate(agg.func, [1] * len(rows), agg.distinct)
    values = [resolve_column(agg.arg, row) for row in rows]
    values = [v for v in values if v is not None]
    return evaluate_aggregate(agg.func, values, agg.distinct)


def _group_key_value(ref: ColumnRef, key: tuple, query: Query, rows: list[JoinedRow]) -> Any:
    for position, group_col in enumerate(query.group_by):
        if group_col == ref or (group_col.column == ref.column and ref.table is None):
            return key[position]
    if not query.group_by and rows:
        # Implicit single group: a bare column is only well-defined if
        # constant; we take the first row's value (SQLite-style leniency).
        return resolve_column(ref, rows[0])
    if not rows:
        return None
    raise ExecutionError(f"column {ref} is neither grouped nor aggregated")


def _evaluate_group_predicate(pred, rows, key, query, subquery_values) -> bool:
    """Evaluate a HAVING predicate for one group."""
    from repro.db.expressions import compare, evaluate_operand
    from repro.sql.ast import And, CompOp, Or

    if isinstance(pred, And):
        return all(
            _evaluate_group_predicate(p, rows, key, query, subquery_values)
            for p in pred.operands
        )
    if isinstance(pred, Or):
        return any(
            _evaluate_group_predicate(p, rows, key, query, subquery_values)
            for p in pred.operands
        )
    if isinstance(pred, Comparison):
        def side(operand):
            if isinstance(operand, Aggregate):
                return _aggregate_over(operand, rows)
            if isinstance(operand, ColumnRef):
                return _group_key_value(operand, key, query, rows)
            return evaluate_operand(operand, rows[0] if rows else {}, subquery_values)

        return compare(pred.op, side(pred.left), side(pred.right))
    raise ExecutionError(f"unsupported HAVING predicate {pred!r}")


# ----------------------------------------------------------------------
# Ordering and subqueries
# ----------------------------------------------------------------------


def _order_rows(output: list[Row], query: Query) -> list[Row]:
    def sort_key(row: Row):
        keys = []
        for order in query.order_by:
            label = str(order.expr)
            value = row.get(label, row.get("__order__" + label))
            # None sorts first ascending, last descending.
            keys.append((value is None, value))
        return tuple(keys)

    # Sort once per ORDER BY item, last key first, honouring per-key
    # direction (Python's sort is stable).
    result = list(output)
    for position in range(len(query.order_by) - 1, -1, -1):
        order = query.order_by[position]
        label = str(order.expr)

        def key_for(row: Row, label=label, desc=order.desc):
            value = row.get(label, row.get("__order__" + label))
            missing = value is None
            if desc:
                return (missing, _Reversed(value))
            return (missing, _Comparable(value))

        result.sort(key=key_for)
    # Strip helper sort columns.
    return [
        {k: v for k, v in row.items() if not k.startswith("__order__")}
        for row in result
    ]


class _Comparable:
    """Total-order wrapper tolerating mixed types (None handled upstream)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Comparable") -> bool:
        left, right = self.value, other.value
        if isinstance(left, str) != isinstance(right, str):
            return str(left) < str(right)
        if left is None:
            return False
        return left < right

    def __eq__(self, other) -> bool:
        return isinstance(other, _Comparable) and self.value == other.value


class _Reversed(_Comparable):
    def __lt__(self, other: "_Comparable") -> bool:  # type: ignore[override]
        return _Comparable(other.value) < _Comparable(self.value)


def _execute_subquery(query: Query, database: Database) -> Any:
    """Execute an uncorrelated subquery.

    * scalar subqueries (single aggregate select) return the scalar;
    * one-column subqueries return the list of values (for IN);
    * EXISTS subqueries return the raw row list.
    """
    rows = execute(query, database)
    if len(query.select) == 1 and isinstance(query.select[0], Aggregate):
        if not rows:
            return None
        return next(iter(rows[0].values()))
    if len(query.select) == 1 and not isinstance(query.select[0], Star):
        return [next(iter(row.values())) for row in rows]
    return rows
