"""Reference query executor over the in-memory database.

Implements the classic pipeline FROM → WHERE → GROUP BY → HAVING →
SELECT → DISTINCT → ORDER BY → LIMIT for the SQL subset.  Multi-table
FROM clauses are evaluated as a cross product filtered by the WHERE
predicate — the shape the post-processor emits after expanding the
``@JOIN`` placeholder into explicit tables plus join conditions.

This module is the *naive* reference arm: simple, obviously correct,
and quadratic-or-worse on joins.  The optimized path lives in
:mod:`repro.db.planner` (predicate pushdown + hash joins) and is
property-checked to return bit-identical results; both paths share the
post-join pipeline (:func:`finish_rows`) so grouping, ordering and
projection can never diverge.

Results are lists of dicts keyed by output-column labels, in output
order.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError, SchemaError
from repro.db.expressions import JoinedRow, evaluate_predicate, resolve_column
from repro.db.functions import evaluate_aggregate
from repro.db.storage import Database, Row
from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    Aggregate,
    ColumnRef,
    Comparison,
    Query,
    Star,
    Subquery,
)

#: Guard against accidentally exploding cross products in tests.
MAX_CROSS_PRODUCT = 2_000_000


def validate_query(query: Query, database: Database) -> None:
    """Reject queries outside the executable subset before touching rows."""
    if query.uses_join_placeholder:
        raise ExecutionError(
            f"cannot execute query with unresolved {JOIN_PLACEHOLDER} placeholder; "
            "run the post-processor first"
        )
    for table in query.from_tables:
        if table not in database.schema:
            raise ExecutionError(
                f"unknown table {table!r} in schema {database.schema.name!r}"
            )


def cross_product_error(
    tables: Sequence[str], estimated_rows: int, schema=None
) -> ExecutionError:
    """The guard error: names the estimated size and the missing join.

    When a ``schema`` is given, its join graph is consulted to propose
    the FK equality predicate(s) that would have turned the cross
    product into a hash join.
    """
    message = (
        f"cross product of {list(tables)} has an estimated "
        f"{estimated_rows:,} rows (limit {MAX_CROSS_PRODUCT:,}); refusing"
    )
    if schema is not None:
        try:
            fks = schema.join_path(list(tables))
        except SchemaError:
            fks = []
        if fks:
            conditions = " AND ".join(
                f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
                for fk in fks
            )
            message += f"; add a join predicate, e.g. WHERE {conditions}"
    return ExecutionError(message)


def execute(query: Query, database: Database, max_rows: int | None = None) -> list[Row]:
    """Execute ``query`` against ``database`` (naive reference path).

    Raises :class:`~repro.errors.ExecutionError` for queries outside
    the executable subset (unresolved placeholders, unknown tables or
    columns, correlated subqueries).
    """
    validate_query(query, database)
    subquery_values = make_subquery_resolver(database, execute)

    # FROM: cross product of the referenced tables.
    per_table_rows = [database.scan(t) for t in query.from_tables]
    size = 1
    for rows in per_table_rows:
        size *= max(len(rows), 1)
    if size > MAX_CROSS_PRODUCT:
        raise cross_product_error(query.from_tables, size, database.schema)
    joined: list[JoinedRow] = [
        dict(zip(query.from_tables, combo))
        for combo in itertools.product(*per_table_rows)
    ]

    # WHERE.
    if query.where is not None:
        joined = [
            row
            for row in joined
            if evaluate_predicate(query.where, row, subquery_values)
        ]

    return finish_rows(query, joined, subquery_values, max_rows=max_rows)


def make_subquery_resolver(
    database: Database, exec_fn: Callable[[Query, Database], list[Row]]
) -> Callable[[Subquery], Any]:
    """A memoizing resolver for uncorrelated subqueries.

    ``exec_fn`` is the executor to run subqueries with — the naive
    :func:`execute` here, the planned path in :mod:`repro.db.planner`
    (where a session additionally caches across top-level queries).
    """
    cache: dict[int, Any] = {}

    def subquery_values(sub: Subquery) -> Any:
        key = id(sub)
        if key not in cache:
            cache[key] = _subquery_result(sub.query, database, exec_fn)
        return cache[key]

    return subquery_values


def finish_rows(
    query: Query,
    joined: list[JoinedRow],
    subquery_values,
    max_rows: int | None = None,
    recorder=None,
) -> list[Row]:
    """The shared post-join pipeline: group → project → distinct →
    order → limit.  Both executor arms funnel through this, so planned
    and naive execution agree bit-for-bit past the join.

    ``recorder`` (a :class:`~repro.perf.PerfRecorder`) gets ``group``
    and ``sort`` stage timings when provided.
    """

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    has_aggregates = bool(query.aggregates()) or any(
        isinstance(i, Aggregate) for i in query.select
    )

    with stage("group"):
        if query.group_by or has_aggregates:
            output = _execute_grouped(query, joined, subquery_values)
        else:
            output = _execute_plain(query, joined, subquery_values)

    return apply_distinct_order_limit(
        query, output, max_rows=max_rows, recorder=recorder
    )


def apply_distinct_order_limit(
    query: Query,
    output: list[Row],
    max_rows: int | None = None,
    recorder=None,
) -> list[Row]:
    """The tail of the pipeline: DISTINCT → ORDER BY → LIMIT.

    Shared between :func:`finish_rows` and the columnar executor's
    grouped finish (:mod:`repro.db.vectorized`), so deduplication and
    ordering cannot diverge between arms.  DISTINCT keys on
    ``tuple(row.values())`` *including* any ``__order__`` helper
    columns, exactly as the row pipeline always has.
    """

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    if query.distinct:
        with stage("group"):
            seen: set[tuple] = set()
            unique = []
            for row in output:
                key = tuple(row.values())
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            output = unique

    if query.order_by:
        with stage("sort"):
            output = _order_rows(output, query)

    if query.limit is not None:
        output = output[: query.limit]
    if max_rows is not None:
        output = output[:max_rows]
    return output


# ----------------------------------------------------------------------
# Non-grouped execution
# ----------------------------------------------------------------------


def _execute_plain(query: Query, joined: list[JoinedRow], subquery_values) -> list[Row]:
    output: list[Row] = []
    for row in joined:
        record: Row = {}
        for item in query.select:
            if isinstance(item, Star):
                for table in query.from_tables:
                    for column, value in row[table].items():
                        record[_star_label(query, table, column)] = value
            elif isinstance(item, ColumnRef):
                record[str(item)] = resolve_column(item, row)
            else:
                raise ExecutionError(
                    f"aggregate {item} outside grouped execution"
                )
        # Keep sort keys accessible for ORDER BY on non-selected columns.
        for order in query.order_by:
            if isinstance(order.expr, ColumnRef) and str(order.expr) not in record:
                record["__order__" + str(order.expr)] = resolve_column(order.expr, row)
        output.append(record)
    return output


def _star_label(query: Query, table: str, column: str) -> str:
    return f"{table}.{column}" if len(query.from_tables) > 1 else column


# ----------------------------------------------------------------------
# Grouped execution
# ----------------------------------------------------------------------


def _execute_grouped(query: Query, joined: list[JoinedRow], subquery_values) -> list[Row]:
    groups: dict[tuple, list[JoinedRow]] = {}
    if query.group_by:
        for row in joined:
            key = tuple(resolve_column(c, row) for c in query.group_by)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = joined

    output: list[Row] = []
    for key, rows in groups.items():
        if query.having is not None:
            if not _evaluate_group_predicate(query.having, rows, key, query, subquery_values):
                continue
        record: Row = {}
        for item in query.select:
            if isinstance(item, Aggregate):
                record[str(item)] = _aggregate_over(item, rows)
            elif isinstance(item, ColumnRef):
                record[str(item)] = _group_key_value(item, key, query, rows)
            elif isinstance(item, Star):
                raise ExecutionError("SELECT * cannot be combined with GROUP BY")
        for order in query.order_by:
            label = str(order.expr)
            if label in record:
                continue
            if isinstance(order.expr, Aggregate):
                record["__order__" + label] = _aggregate_over(order.expr, rows)
            else:
                record["__order__" + label] = _group_key_value(
                    order.expr, key, query, rows
                )
        output.append(record)
    return output


def _aggregate_over(agg: Aggregate, rows: list[JoinedRow]) -> Any:
    if isinstance(agg.arg, Star):
        return evaluate_aggregate(agg.func, [1] * len(rows), agg.distinct)
    values = [resolve_column(agg.arg, row) for row in rows]
    values = [v for v in values if v is not None]
    return evaluate_aggregate(agg.func, values, agg.distinct)


def _group_key_value(ref: ColumnRef, key: tuple, query: Query, rows: list[JoinedRow]) -> Any:
    for position, group_col in enumerate(query.group_by):
        if group_col == ref or (group_col.column == ref.column and ref.table is None):
            return key[position]
    if not query.group_by and rows:
        # Implicit single group: a bare column is only well-defined if
        # constant; we take the first row's value (SQLite-style leniency).
        return resolve_column(ref, rows[0])
    if not rows:
        return None
    raise ExecutionError(f"column {ref} is neither grouped nor aggregated")


def _evaluate_group_predicate(pred, rows, key, query, subquery_values) -> bool:
    """Evaluate a HAVING predicate for one group."""
    from repro.db.expressions import compare, evaluate_operand
    from repro.sql.ast import And, CompOp, Or

    if isinstance(pred, And):
        return all(
            _evaluate_group_predicate(p, rows, key, query, subquery_values)
            for p in pred.operands
        )
    if isinstance(pred, Or):
        return any(
            _evaluate_group_predicate(p, rows, key, query, subquery_values)
            for p in pred.operands
        )
    if isinstance(pred, Comparison):
        def side(operand):
            if isinstance(operand, Aggregate):
                return _aggregate_over(operand, rows)
            if isinstance(operand, ColumnRef):
                return _group_key_value(operand, key, query, rows)
            return evaluate_operand(operand, rows[0] if rows else {}, subquery_values)

        return compare(pred.op, side(pred.left), side(pred.right))
    raise ExecutionError(f"unsupported HAVING predicate {pred!r}")


# ----------------------------------------------------------------------
# Ordering and subqueries
# ----------------------------------------------------------------------


def _order_rows(output: list[Row], query: Query) -> list[Row]:
    # Sort once per ORDER BY item, last key first, honouring per-key
    # direction (Python's sort is stable, so earlier keys win ties and
    # input order survives as the final tiebreak).
    result = list(output)
    for position in range(len(query.order_by) - 1, -1, -1):
        order = query.order_by[position]
        label = str(order.expr)

        def key_for(row: Row, label=label, desc=order.desc):
            value = row.get(label, row.get("__order__" + label))
            missing = value is None
            if desc:
                return (missing, _Reversed(value, label))
            return (missing, _Comparable(value, label))

        result.sort(key=key_for)
    # Strip helper sort columns.
    return [
        {k: v for k, v in row.items() if not k.startswith("__order__")}
        for row in result
    ]


class _Comparable:
    """Total-order wrapper for sort keys (None handled upstream).

    A sort key column holding values of incomparable types (e.g. model
    output that mixes strings into a numeric column) raises
    :class:`~repro.errors.ExecutionError` naming the offending ORDER BY
    key, instead of leaking a bare ``TypeError`` out of ``list.sort``.
    """

    __slots__ = ("value", "label")

    def __init__(self, value, label: str = "") -> None:
        self.value = value
        self.label = label

    def __lt__(self, other: "_Comparable") -> bool:
        left, right = self.value, other.value
        if left is None or right is None:
            return False
        try:
            return left < right
        except TypeError:
            raise ExecutionError(
                f"ORDER BY key {self.label!r} mixes incomparable types "
                f"({type(left).__name__} vs {type(right).__name__})"
            ) from None

    def __eq__(self, other) -> bool:
        return isinstance(other, _Comparable) and self.value == other.value


class _Reversed(_Comparable):
    def __lt__(self, other: "_Comparable") -> bool:  # type: ignore[override]
        return _Comparable(other.value, self.label) < _Comparable(self.value, self.label)


def _subquery_result(
    query: Query, database: Database, exec_fn: Callable[[Query, Database], list[Row]]
) -> Any:
    """Execute an uncorrelated subquery.

    * scalar subqueries (single aggregate select) return the scalar;
    * one-column subqueries return the list of values (for IN);
    * EXISTS subqueries return the raw row list.
    """
    rows = exec_fn(query, database)
    if len(query.select) == 1 and isinstance(query.select[0], Aggregate):
        if not rows:
            return None
        return next(iter(rows[0].values()))
    if len(query.select) == 1 and not isinstance(query.select[0], Star):
        return [next(iter(row.values())) for row in rows]
    return rows
