"""Scalar and predicate evaluation for the executor.

A *joined row* is a mapping ``table name -> row dict``.  Column
references resolve against it: qualified refs index directly, while
unqualified refs must be unambiguous across the FROM tables (mirroring
SQL name resolution).  Subqueries are uncorrelated in the supported
subset, so their results are computed once by the executor and passed
in via ``subquery_values``.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable, Mapping

from repro.errors import ExecutionError
from repro.sql.ast import (
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    Placeholder,
    Predicate,
    Subquery,
)

JoinedRow = Mapping[str, Mapping[str, Any]]

#: Resolver type: maps an already-executed subquery to its value(s).
SubqueryValues = Callable[[Subquery], Any]


def resolve_column(ref: ColumnRef, row: JoinedRow) -> Any:
    """Resolve a column reference against a joined row."""
    if ref.table is not None:
        try:
            return row[ref.table][ref.column]
        except KeyError:
            raise ExecutionError(f"unknown column reference {ref}") from None
    candidates = [t for t, r in row.items() if ref.column in r]
    if not candidates:
        raise ExecutionError(f"unknown column {ref.column!r}")
    if len(candidates) > 1:
        raise ExecutionError(
            f"ambiguous column {ref.column!r}; present in {sorted(candidates)}"
        )
    return row[candidates[0]][ref.column]


def evaluate_operand(operand, row: JoinedRow, subquery_values: SubqueryValues) -> Any:
    """Evaluate a scalar operand in the context of ``row``."""
    if isinstance(operand, ColumnRef):
        return resolve_column(operand, row)
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, Placeholder):
        raise ExecutionError(
            f"cannot execute query containing unresolved placeholder @{operand.name}; "
            "run the post-processor first"
        )
    if isinstance(operand, Subquery):
        return subquery_values(operand)
    raise ExecutionError(f"unsupported operand {operand!r}")


def compare(op: CompOp, left: Any, right: Any) -> bool:
    """Three-valued-logic comparison collapsed to bool (NULL -> False)."""
    if left is None or right is None:
        return False
    if isinstance(left, str) != isinstance(right, str):
        # SQL would error on type mismatch; for robustness against noisy
        # model output we treat cross-type comparisons as not matching.
        return False
    if not isinstance(left, (int, float, str)) or not isinstance(right, (int, float, str)):
        return False
    if op is CompOp.EQ:
        return left == right
    if op is CompOp.NE:
        return left != right
    if op is CompOp.LT:
        return left < right
    if op is CompOp.LE:
        return left <= right
    if op is CompOp.GT:
        return left > right
    if op is CompOp.GE:
        return left >= right
    raise ExecutionError(f"unsupported operator {op}")


def evaluate_predicate(
    pred: Predicate, row: JoinedRow, subquery_values: SubqueryValues
) -> bool:
    """Evaluate a predicate against one joined row."""
    if isinstance(pred, Comparison):
        left = evaluate_operand(pred.left, row, subquery_values)
        right = evaluate_operand(pred.right, row, subquery_values)
        return compare(pred.op, left, right)
    if isinstance(pred, Between):
        value = resolve_column(pred.column, row)
        low = evaluate_operand(pred.low, row, subquery_values)
        high = evaluate_operand(pred.high, row, subquery_values)
        return compare(CompOp.GE, value, low) and compare(CompOp.LE, value, high)
    if isinstance(pred, InPredicate):
        value = resolve_column(pred.column, row)
        if value is None:
            # NULL IN (...) and NULL NOT IN (...) are both NULL -> False.
            return False
        if pred.subquery is not None:
            members = subquery_values(pred.subquery)
        else:
            members = [
                evaluate_operand(v, row, subquery_values) for v in pred.values
            ]
        result = value in members
        return not result if pred.negated else result
    if isinstance(pred, Like):
        value = resolve_column(pred.column, row)
        pattern = evaluate_operand(pred.pattern, row, subquery_values)
        if value is None or pattern is None:
            return False
        matched = _like_match(str(value), str(pattern))
        return not matched if pred.negated else matched
    if isinstance(pred, Exists):
        rows = subquery_values(pred.subquery)
        result = bool(rows)
        return not result if pred.negated else result
    if isinstance(pred, Not):
        return not evaluate_predicate(pred.operand, row, subquery_values)
    if isinstance(pred, And):
        return all(
            evaluate_predicate(p, row, subquery_values) for p in pred.operands
        )
    if isinstance(pred, Or):
        return any(
            evaluate_predicate(p, row, subquery_values) for p in pred.operands
        )
    raise ExecutionError(f"unsupported predicate {pred!r}")


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: % matches any run, _ matches one character."""
    translated = (
        pattern.replace("\\", "\\\\")
        .replace("[", "[[]")
        .replace("*", "[*]")
        .replace("?", "[?]")
        .replace("%", "*")
        .replace("_", "?")
    )
    return fnmatch.fnmatchcase(value.lower(), translated.lower())
