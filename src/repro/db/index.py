"""Value index: constant -> candidate (table, column) attributions.

"As a temporary solution in the basic version of DBPal, we build an
index on each attribute of the schema that maps constants to possible
attribute names" (paper §4.1).  The runtime parameter handler uses this
index to anonymize constants in the user's NL query, with a similarity
fallback for string constants that only approximately match database
values (e.g. "New York City" vs "NYC").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.similarity import SimilarityFn, best_match, jaccard_trigram
from repro.db.storage import Database


@dataclass(frozen=True)
class ValueHit:
    """One attribution of a constant to a schema column."""

    table: str
    column: str
    value: int | float | str
    score: float  # 1.0 for exact hits, the similarity score otherwise


class ValueIndex:
    """Inverted index over every attribute of the database."""

    def __init__(
        self,
        database: Database,
        similarity: SimilarityFn = jaccard_trigram,
        similarity_threshold: float = 0.4,
    ) -> None:
        self._similarity = similarity
        self._threshold = similarity_threshold
        self._exact: dict[str, list[tuple[str, str, object]]] = {}
        self._text_values: dict[tuple[str, str], list[str]] = {}
        for table in database.schema.tables:
            for column in table.columns:
                values = database.column_values(table.name, column.name)
                unique = list(dict.fromkeys(values))
                if not column.is_numeric:
                    self._text_values[(table.name, column.name)] = [
                        str(v) for v in unique
                    ]
                for value in unique:
                    key = self._normalize(value)
                    self._exact.setdefault(key, []).append(
                        (table.name, column.name, value)
                    )

    @staticmethod
    def _normalize(value) -> str:
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return str(value).strip().lower()

    def lookup(self, constant: str) -> list[ValueHit]:
        """Exact (normalized) lookup of a constant."""
        hits = self._exact.get(self._normalize(constant), [])
        return [ValueHit(t, c, v, 1.0) for t, c, v in hits]

    def fuzzy_lookup(self, constant: str) -> list[ValueHit]:
        """Exact lookup with a similarity fallback for strings (§4.1).

        When the similarity of all values is below the threshold —
        "which could mean that the value does not exist in the
        database" — an empty list is returned and the caller keeps the
        constant as given by the user.
        """
        exact = self.lookup(constant)
        if exact:
            return exact
        hits: list[ValueHit] = []
        for (table, column), values in self._text_values.items():
            match, score = best_match(
                constant, values, self._similarity, self._threshold
            )
            if match is not None:
                hits.append(ValueHit(table, column, match, score))
        hits.sort(key=lambda h: (-h.score, h.table, h.column))
        return hits

    def columns_for(self, constant: str) -> list[tuple[str, str]]:
        """Candidate (table, column) pairs for a constant, best first."""
        return [(h.table, h.column) for h in self.fuzzy_lookup(constant)]
