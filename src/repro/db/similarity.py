"""String similarity metrics for fuzzy constant matching.

The runtime pre-processor matches user-provided string constants
against database values "using a string similarity metric.  In our
prototype, we currently use the Jaccard index, but the function can be
replaced with any other similarity metric" (paper §4.1).  We implement
Jaccard over character trigrams (the common realization for short
strings) plus a token-set variant, behind a pluggable callable type.
"""

from __future__ import annotations

from typing import Callable

#: A similarity function maps two strings to a score in [0, 1].
SimilarityFn = Callable[[str, str], float]


def _char_ngrams(text: str, n: int = 3) -> set[str]:
    padded = f"  {text.lower()} "
    if len(padded) < n:
        return {padded}
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def jaccard_trigram(left: str, right: str) -> float:
    """Jaccard index over padded character trigrams."""
    left_set = _char_ngrams(left)
    right_set = _char_ngrams(right)
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def jaccard_tokens(left: str, right: str) -> float:
    """Jaccard index over whitespace tokens."""
    left_set = set(left.lower().split())
    right_set = set(right.lower().split())
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def best_match(
    needle: str,
    candidates,
    similarity: SimilarityFn = jaccard_trigram,
    threshold: float = 0.0,
) -> tuple[str | None, float]:
    """The candidate most similar to ``needle`` (ties broken by order).

    Returns ``(None, 0.0)`` when no candidate reaches ``threshold``.
    """
    best_candidate: str | None = None
    best_score = 0.0
    for candidate in candidates:
        score = similarity(needle, candidate)
        if score > best_score:
            best_candidate = candidate
            best_score = score
    if best_candidate is None or best_score < threshold:
        return None, 0.0
    return best_candidate, best_score
