"""Query planning and the optimized executor.

The naive executor (:mod:`repro.db.executor`) materializes the full
cross product of the FROM tables and filters it with WHERE — fine for
one table, quadratic-or-worse for the join-shaped queries the
post-processor's ``@JOIN`` expansion makes common.  This module plans
before it executes:

* **conjunct split** — the WHERE clause is flattened into its top-level
  AND conjuncts;
* **predicate pushdown** — conjuncts touching exactly one table are
  evaluated inside that table's scan, before any join; equality
  conjuncts against constants probe a per-column hash index (built
  lazily by the :class:`ExecutorSession`) and are pre-screened against
  a :class:`~repro.db.index.ValueIndex` when one is available;
* **hash joins** — ``a.x = b.y`` conjuncts across tables become hash
  joins, executed in FROM order (build on the incoming table, probe
  with the rows joined so far), so the surviving combinations are
  enumerated in exactly the order the naive cross product would have
  produced them;
* **guarded fallback** — tables with no join conjunct to the rows
  bound so far extend via a cross product, guarded by
  ``MAX_CROSS_PRODUCT`` with an error that names the estimated row
  count and proposes the missing FK join predicate.

Everything after the join funnels through the executor's
:func:`~repro.db.executor.finish_rows`, so grouping / DISTINCT /
ordering / LIMIT cannot diverge between the two arms; the differential
suite (``tests/test_db_executor_diff.py``) property-checks row-for-row
identity over the seed corpus and randomized databases.

:class:`ExecutorSession` adds the serving-scale conveniences on top:
lazily built per-column equality indexes, a bounded LRU result cache
keyed on canonical SQL (the eval harness executes each distinct gold
query once per report), and :class:`~repro.perf.PerfRecorder` stage
timings for scan / join / filter / group / sort.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Sequence

from repro.db.executor import (
    MAX_CROSS_PRODUCT,
    cross_product_error,
    execute,
    finish_rows,
    make_subquery_resolver,
    validate_query,
)
from repro.db.expressions import JoinedRow, evaluate_predicate
from repro.db.index import ValueIndex
from repro.db.storage import Database, Row
from repro.db.vectorized import (
    COLUMNAR_MIN_ROWS,
    ColumnarTrace,
    NotVectorizable,
    execute_columnar,
    probe_finish,
    probe_join,
    probe_scan,
    should_use_columnar,
)
from repro.db.vectorized import available as columnar_available
from repro.perf.instrumentation import PerfRecorder
from repro.sql.ast import (
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    Query,
    conjuncts,
)
from repro.sql.normalize import canonical_sql
from repro.sql.printer import predicate_to_sql


# ----------------------------------------------------------------------
# Plan shapes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScanStep:
    """One table scan with its pushed-down predicates.

    ``eq_lookups`` are ``column = constant`` conjuncts usable as hash
    probes; ``filters`` are the remaining single-table conjuncts,
    evaluated per row during the scan.
    """

    table: str
    eq_lookups: tuple[tuple[str, Any], ...] = ()
    filters: tuple[Predicate, ...] = ()


@dataclass(frozen=True)
class JoinStep:
    """Bind one more table to the rows joined so far.

    ``keys`` pairs (bound-side ref, new-side ref) for each equi-join
    conjunct consumed by this step; an empty ``keys`` means there is no
    join predicate and the step degrades to a guarded cross product.
    """

    scan: ScanStep
    keys: tuple[tuple[ColumnRef, ColumnRef], ...] = ()

    @property
    def is_hash_join(self) -> bool:
        return bool(self.keys)


@dataclass(frozen=True)
class QueryPlan:
    """The full plan: base scan, join steps, leftover predicates."""

    query: Query
    base: ScanStep | None  # None => execute naively (see fallback_reason)
    joins: tuple[JoinStep, ...] = ()
    residual: tuple[Predicate, ...] = ()  # multi-table / subquery conjuncts
    constants: tuple[Predicate, ...] = ()  # row-independent conjuncts
    fallback_reason: str = ""

    @property
    def uses_naive_fallback(self) -> bool:
        return self.base is None


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------


def build_plan(query: Query, database: Database) -> QueryPlan:
    """Plan ``query`` against ``database``'s schema (no rows touched)."""
    validate_query(query, database)
    from_tables = query.from_tables
    if len(set(from_tables)) != len(from_tables):
        # The naive path collapses duplicate FROM entries through its
        # dict(zip(...)); planning that faithfully is not worth it.
        return QueryPlan(
            query=query, base=None, fallback_reason="duplicate table in FROM"
        )

    columns_by_table = {
        t: set(database.schema.table(t).column_names) for t in from_tables
    }

    pushed: dict[str, list[Predicate]] = {t: [] for t in from_tables}
    eq_lookups: dict[str, list[tuple[str, Any]]] = {t: [] for t in from_tables}
    join_conjuncts: list[tuple[ColumnRef, ColumnRef]] = []  # qualified refs
    residual: list[Predicate] = []
    constants: list[Predicate] = []

    for pred in conjuncts(query.where):
        join_pair = _as_equi_join(pred, from_tables, columns_by_table)
        if join_pair is not None:
            join_conjuncts.append(join_pair)
            continue
        tables = _predicate_tables(pred, from_tables, columns_by_table)
        if tables is None:
            residual.append(pred)
        elif len(tables) == 1:
            table = next(iter(tables))
            lookup = _as_eq_lookup(pred, table, from_tables, columns_by_table)
            if lookup is not None:
                eq_lookups[table].append(lookup)
            else:
                pushed[table].append(pred)
        elif not tables:
            constants.append(pred)
        else:
            residual.append(pred)

    def scan_for(table: str) -> ScanStep:
        return ScanStep(
            table=table,
            eq_lookups=tuple(eq_lookups[table]),
            filters=tuple(pushed[table]),
        )

    base = scan_for(from_tables[0])
    joins: list[JoinStep] = []
    bound = {from_tables[0]}
    for table in from_tables[1:]:
        keys: list[tuple[ColumnRef, ColumnRef]] = []
        for left, right in join_conjuncts:
            if left.table == table and right.table in bound:
                keys.append((right, left))
            elif right.table == table and left.table in bound:
                keys.append((left, right))
        joins.append(JoinStep(scan=scan_for(table), keys=tuple(keys)))
        bound.add(table)

    return QueryPlan(
        query=query,
        base=base,
        joins=tuple(joins),
        residual=tuple(residual),
        constants=tuple(constants),
    )


def _resolve_table(
    ref: ColumnRef,
    from_tables: Sequence[str],
    columns_by_table: dict[str, set[str]],
) -> str | None:
    """The single FROM table ``ref`` resolves to, or None if it cannot
    be resolved statically (unknown / ambiguous — left to the runtime
    evaluator, which raises the same errors the naive path would)."""
    if ref.table is not None:
        columns = columns_by_table.get(ref.table)
        if columns is None or ref.column not in columns:
            return None  # unknown table/column: runtime raises, as naive does
        return ref.table
    candidates = [t for t in from_tables if ref.column in columns_by_table[t]]
    return candidates[0] if len(candidates) == 1 else None


def _operand_tables(
    operand,
    from_tables: Sequence[str],
    columns_by_table: dict[str, set[str]],
) -> set[str] | None:
    """Tables an operand touches; None marks it unpushable (subqueries,
    placeholders, unresolvable refs, aggregates in WHERE)."""
    if isinstance(operand, Literal):
        return set()
    if isinstance(operand, ColumnRef):
        table = _resolve_table(operand, from_tables, columns_by_table)
        return None if table is None else {table}
    # Subquery / Placeholder / Aggregate: never pushed down.
    return None


def _predicate_tables(
    pred: Predicate,
    from_tables: Sequence[str],
    columns_by_table: dict[str, set[str]],
) -> set[str] | None:
    """Union of tables a predicate touches, or None if unpushable."""

    def merge(parts) -> set[str] | None:
        union: set[str] = set()
        for part in parts:
            if part is None:
                return None
            union |= part
        return union

    def operand(op):
        return _operand_tables(op, from_tables, columns_by_table)

    if isinstance(pred, Comparison):
        return merge([operand(pred.left), operand(pred.right)])
    if isinstance(pred, Between):
        return merge([operand(pred.column), operand(pred.low), operand(pred.high)])
    if isinstance(pred, InPredicate):
        if pred.subquery is not None:
            return None
        return merge([operand(pred.column)] + [operand(v) for v in pred.values])
    if isinstance(pred, Like):
        return merge([operand(pred.column), operand(pred.pattern)])
    if isinstance(pred, Exists):
        return None
    if isinstance(pred, Not):
        return _predicate_tables(pred.operand, from_tables, columns_by_table)
    if isinstance(pred, (And, Or)):
        return merge(
            _predicate_tables(p, from_tables, columns_by_table)
            for p in pred.operands
        )
    return None


def _as_equi_join(
    pred: Predicate,
    from_tables: Sequence[str],
    columns_by_table: dict[str, set[str]],
) -> tuple[ColumnRef, ColumnRef] | None:
    """``a.x = b.y`` across two distinct FROM tables, refs qualified."""
    if not (
        isinstance(pred, Comparison)
        and pred.op is CompOp.EQ
        and isinstance(pred.left, ColumnRef)
        and isinstance(pred.right, ColumnRef)
    ):
        return None
    left_table = _resolve_table(pred.left, from_tables, columns_by_table)
    right_table = _resolve_table(pred.right, from_tables, columns_by_table)
    if left_table is None or right_table is None or left_table == right_table:
        return None
    return (
        ColumnRef(pred.left.column, left_table),
        ColumnRef(pred.right.column, right_table),
    )


def _as_eq_lookup(
    pred: Predicate,
    table: str,
    from_tables: Sequence[str],
    columns_by_table: dict[str, set[str]],
) -> tuple[str, Any] | None:
    """``col = literal`` on one table → (column, constant) hash probe."""
    if not (isinstance(pred, Comparison) and pred.op is CompOp.EQ):
        return None
    for ref_side, const_side in ((pred.left, pred.right), (pred.right, pred.left)):
        if isinstance(ref_side, ColumnRef) and isinstance(const_side, Literal):
            resolved = _resolve_table(ref_side, from_tables, columns_by_table)
            if resolved == table:
                return (ref_side.column, const_side.value)
    return None


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_planned(
    query: Query,
    database: Database,
    max_rows: int | None = None,
    session: "ExecutorSession | None" = None,
    recorder: PerfRecorder | None = None,
    columnar: bool | None = None,
) -> list[Row]:
    """Execute ``query`` through the planner.

    Bit-identical to :func:`repro.db.executor.execute` (row values *and*
    row order) on every query both can run; additionally runs queries
    whose filtered/joined intermediate fits even when the raw cross
    product would trip the naive guard.

    ``columnar`` selects the execution arm per query: ``None`` (auto)
    engages the vectorized columnar kernels when the largest planned
    table reaches :data:`~repro.db.vectorized.COLUMNAR_MIN_ROWS`,
    ``True`` forces them, ``False`` disables them.  The columnar arm is
    bit-identical by construction — any step it cannot vectorize falls
    back to the row code over the same intermediate — so the choice is
    purely a performance knob.  Unset, it inherits the session's
    ``columnar`` setting when a session is given.
    """
    if recorder is None and session is not None:
        recorder = session.recorder
    if columnar is None and session is not None:
        columnar = session.columnar
    plan = build_plan(query, database)
    if plan.uses_naive_fallback:
        return execute(query, database, max_rows=max_rows)

    if session is not None:
        exec_fn = lambda q, _db: session.execute(q)  # noqa: E731 - cached
    else:
        exec_fn = lambda q, db: execute_planned(q, db, recorder=recorder)  # noqa: E731
    subquery_values = make_subquery_resolver(database, exec_fn)

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    # Row-independent conjuncts: one evaluation decides everything.
    if any(
        not evaluate_predicate(pred, {}, subquery_values)
        for pred in plan.constants
    ):
        return finish_rows(query, [], subquery_values, max_rows=max_rows,
                           recorder=recorder)

    if should_use_columnar(plan, database, columnar):
        trace = ColumnarTrace()
        try:
            result = execute_columnar(
                plan, database, session, subquery_values, recorder,
                max_rows, trace,
            )
        except NotVectorizable as exc:
            # Defensive: the columnar arm falls back per step, so this
            # should not escape — but if it does, run the row arm.
            trace.record("plan", "row", exc.reason)
            if session is not None:
                session.note_columnar(trace)
        else:
            if session is not None:
                session.note_columnar(trace)
            return result

    with stage("scan") as scan_stats:
        base_rows = _run_scan(plan.base, database, session, subquery_values)
        if scan_stats is not None:
            scan_stats.items += len(base_rows)
    joined: list[JoinedRow] = [{plan.base.table: row} for row in base_rows]

    for step in plan.joins:
        with stage("scan") as scan_stats:
            rows = _run_scan(step.scan, database, session, subquery_values)
            if scan_stats is not None:
                scan_stats.items += len(rows)
        with stage("join") as join_stats:
            if step.is_hash_join:
                joined = _hash_join(joined, rows, step)
            else:
                estimated = len(joined) * len(rows)
                if estimated > MAX_CROSS_PRODUCT:
                    bound_tables = [t for jr in joined[:1] for t in jr]
                    raise cross_product_error(
                        bound_tables + [step.scan.table],
                        estimated,
                        database.schema,
                    )
                table = step.scan.table
                joined = [
                    {**jr, table: row} for jr in joined for row in rows
                ]
            if join_stats is not None:
                join_stats.items += len(joined)

    if plan.residual:
        with stage("filter"):
            joined = [
                jr
                for jr in joined
                if all(
                    evaluate_predicate(pred, jr, subquery_values)
                    for pred in plan.residual
                )
            ]

    return finish_rows(
        query, joined, subquery_values, max_rows=max_rows, recorder=recorder
    )


def _run_scan(
    scan: ScanStep,
    database: Database,
    session: "ExecutorSession | None",
    subquery_values,
) -> list[Row]:
    """Rows of one table with pushed-down predicates applied, in
    storage order (order preservation keeps the two arms identical)."""
    rows: Sequence[Row]
    if scan.eq_lookups:
        column, constant = scan.eq_lookups[0]
        if session is not None:
            if not session.value_index_admits(scan.table, column, constant):
                return []
            rows = session.probe(scan.table, column, constant)
        else:
            rows = [
                row
                for row in database.scan(scan.table)
                if _eq_matches(row[column], constant)
            ]
        for column, constant in scan.eq_lookups[1:]:
            rows = [row for row in rows if _eq_matches(row[column], constant)]
    else:
        rows = database.scan(scan.table)

    if scan.filters:
        table = scan.table
        rows = [
            row
            for row in rows
            if all(
                evaluate_predicate(pred, {table: row}, subquery_values)
                for pred in scan.filters
            )
        ]
    return list(rows)


def _eq_matches(value: Any, constant: Any) -> bool:
    """SQL equality against a non-null constant (NULL never matches).

    Python ``==`` agrees with the executor's ``compare`` here: literal
    constants are always int/float/str, cross-kind (str vs numeric)
    comparisons are False both ways, and bools cannot be stored.
    """
    return value is not None and value == constant


def _hash_join(
    joined: list[JoinedRow], rows: Sequence[Row], step: JoinStep
) -> list[JoinedRow]:
    """Build a hash table on the incoming table, probe with ``joined``.

    Buckets keep storage order and the probe loop keeps ``joined``
    order, so the output enumerates surviving combinations exactly as
    the filtered cross product would.
    """
    table = step.scan.table
    new_cols = tuple(new_ref.column for _bound, new_ref in step.keys)
    bound_refs = tuple(bound for bound, _new in step.keys)

    buckets: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row[c] for c in new_cols)
        if any(v is None for v in key):
            continue  # NULL join keys never match
        buckets.setdefault(key, []).append(row)

    output: list[JoinedRow] = []
    for jr in joined:
        probe = tuple(jr[ref.table][ref.column] for ref in bound_refs)
        if any(v is None for v in probe):
            continue
        bucket = buckets.get(probe)
        if bucket:
            output.extend({**jr, table: row} for row in bucket)
    return output


# ----------------------------------------------------------------------
# Sessions: indexes, result cache, stage timings
# ----------------------------------------------------------------------


class ExecutorSession:
    """A reusable execution context over one database.

    Holds lazily built per-column equality hash indexes, an optional
    :class:`~repro.db.index.ValueIndex` used to prune equality scans
    whose constant cannot appear in the column, a bounded LRU result
    cache keyed on canonical SQL, and a :class:`PerfRecorder` with
    scan/join/filter/group/sort stage timings.  All caches observe
    :attr:`Database.version` and reset when rows are inserted.
    """

    def __init__(
        self,
        database: Database,
        value_index: ValueIndex | None = None,
        cache_size: int = 256,
        recorder: PerfRecorder | None = None,
        columnar: bool | None = None,
    ) -> None:
        self.database = database
        self.value_index = value_index
        self.recorder = recorder if recorder is not None else PerfRecorder()
        self._cache_size = cache_size
        self._cache: OrderedDict[str, list[Row]] = OrderedDict()
        self._eq_indexes: dict[tuple[str, str], dict[Any, list[Row]]] = {}
        self._db_version = database.version
        self.cache_hits = 0
        self.cache_misses = 0
        #: Columnar arm policy for every query run through this session:
        #: None = auto (row-count threshold), True = force, False = off.
        self.columnar = columnar
        self.columnar_vectorized_steps = 0
        self.columnar_row_steps = 0
        self._columnar_fallbacks: dict[str, int] = {}
        self.last_columnar_trace: ColumnarTrace | None = None

    # -- caching -------------------------------------------------------

    def _check_version(self) -> None:
        if self.database.version != self._db_version:
            self._cache.clear()
            self._eq_indexes.clear()
            self._db_version = self.database.version

    def execute(
        self, query: Query, max_rows: int | None = None, use_cache: bool = True
    ) -> list[Row]:
        """Planned execution with result caching.

        Cache entries key on :func:`canonical_sql`, so cosmetically
        different but canonically identical queries (the repeated gold
        queries of an eval report) share one execution.  Returned rows
        are fresh dict copies — callers may mutate them freely.
        """
        self._check_version()
        key = canonical_sql(query) if use_cache and self._cache_size > 0 else None
        if key is not None and key in self._cache:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            rows = self._cache[key]
        else:
            if key is not None:
                self.cache_misses += 1
            rows = execute_planned(query, self.database, session=self)
            if key is not None:
                self._cache[key] = rows
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        copied = [dict(row) for row in rows]
        return copied[:max_rows] if max_rows is not None else copied

    def note_columnar(self, trace: ColumnarTrace) -> None:
        """Fold one columnar execution's arm decisions into the session."""
        self.last_columnar_trace = trace
        self.columnar_vectorized_steps += trace.vectorized_steps
        self.columnar_row_steps += trace.row_steps
        for reason, count in trace.fallback_reasons().items():
            self._columnar_fallbacks[reason] = (
                self._columnar_fallbacks.get(reason, 0) + count
            )

    def stats(self) -> dict:
        """JSON-ready snapshot: cache counters + per-stage timings."""
        total = self.cache_hits + self.cache_misses
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / total) if total else 0.0,
            "cache_size": len(self._cache),
            "cache_capacity": self._cache_size,
            "stages": self.recorder.report(),
            "columnar": {
                "mode": {None: "auto", True: "on", False: "off"}[self.columnar],
                "vectorized_steps": self.columnar_vectorized_steps,
                "row_steps": self.columnar_row_steps,
                "fallback_reasons": dict(self._columnar_fallbacks),
            },
        }

    # -- scans ---------------------------------------------------------

    def probe(self, table: str, column: str, constant: Any) -> list[Row]:
        """Equality probe through the lazily built per-column index."""
        self._check_version()
        index = self._eq_indexes.get((table, column))
        if index is None:
            index = {}
            for row in self.database.scan(table):
                value = row[column]
                if value is not None:
                    index.setdefault(value, []).append(row)
            self._eq_indexes[(table, column)] = index
        if constant is None:
            return []
        return index.get(constant, [])

    def value_index_admits(self, table: str, column: str, constant: Any) -> bool:
        """ValueIndex pre-screen: False only when the constant provably
        never appears in ``table.column`` (normalized lookup misses are
        conservative — a hit still goes through the real probe)."""
        if self.value_index is None:
            return True
        # Pass the raw constant: ValueIndex normalization turns 5.0 and
        # 5 into the same key, but str(5.0) would not.
        hits = self.value_index.lookup(constant)
        if not hits:
            return False
        return any(h.table == table and h.column == column for h in hits)


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------


def explain(query: Query, database: Database) -> str:
    """Human-readable plan rendering (the ``repro db explain`` output)."""
    plan = build_plan(query, database)
    lines = [f"plan for: {canonical_sql(query)}"]
    if plan.uses_naive_fallback:
        lines.append(
            f"  naive cross-product execution ({plan.fallback_reason})"
        )
        return "\n".join(lines)

    annotate = columnar_available()

    def arm_note(reason: str) -> str:
        if not annotate:
            return ""
        return " [vectorized]" if not reason else f" [row: {reason}]"

    def scan_line(scan: ScanStep) -> str:
        parts = [
            f"scan {scan.table} "
            f"[{database.row_count(scan.table)} rows]"
        ]
        for column, constant in scan.eq_lookups:
            parts.append(f"index eq {scan.table}.{column} = {constant!r}")
        if scan.filters:
            rendered = " AND ".join(predicate_to_sql(p) for p in scan.filters)
            parts.append(f"filter {rendered}")
        return " ".join(parts)

    lines.append(f"  {scan_line(plan.base)}{arm_note(probe_scan(plan.base, database))}")
    for step in plan.joins:
        if step.is_hash_join:
            conditions = " AND ".join(
                f"{bound} = {new}" for bound, new in step.keys
            )
            reason = probe_scan(step.scan, database) or probe_join(step, database)
            lines.append(
                f"  hash join: {scan_line(step.scan)} ON {conditions}"
                f"{arm_note(reason)}"
            )
        else:
            lines.append(
                f"  cross product: {scan_line(step.scan)} "
                f"(no join predicate; guarded at {MAX_CROSS_PRODUCT:,} rows)"
                f"{arm_note(probe_scan(step.scan, database))}"
            )
    if plan.constants:
        rendered = " AND ".join(predicate_to_sql(p) for p in plan.constants)
        lines.append(f"  constant filter: {rendered}")
    if plan.residual:
        rendered = " AND ".join(predicate_to_sql(p) for p in plan.residual)
        lines.append(f"  residual filter: {rendered}")
    if plan.query.group_by or plan.query.aggregates():
        if plan.query.group_by:
            keys = ", ".join(str(c) for c in plan.query.group_by)
            lines.append(f"  hash group by {keys}")
        else:
            lines.append("  aggregate (single group)")
    if plan.query.having is not None:
        lines.append(f"  having {predicate_to_sql(plan.query.having)}")
    if plan.query.distinct:
        lines.append("  hash distinct")
    if plan.query.order_by:
        keys = ", ".join(
            f"{o.expr}{' DESC' if o.desc else ''}" for o in plan.query.order_by
        )
        lines.append(f"  sort by {keys}")
    if plan.query.limit is not None:
        lines.append(f"  limit {plan.query.limit}")
    if annotate:
        engaged = should_use_columnar(plan, database, None)
        finish_reason = probe_finish(plan.query, database)
        finish = "vectorized" if not finish_reason else f"row ({finish_reason})"
        status = (
            "auto: engaged"
            if engaged
            else f"auto: below threshold ({COLUMNAR_MIN_ROWS} rows)"
        )
        lines.append(f"  columnar {status}; finish {finish}")
    return "\n".join(lines)
