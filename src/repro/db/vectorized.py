"""Vectorized columnar execution kernels behind the query planner.

The planner (:mod:`repro.db.planner`) fixed the *algorithmic* cost of
execution — hash joins, predicate pushdown — but every surviving row
still flowed through Python-level loops: a dict lookup and a predicate
walk per row, a tuple hash per join probe, a dict append per group.
This module replaces those loops with numpy kernels over the
:class:`~repro.db.storage.ColumnStore` arrays while keeping the output
**bit-identical** (row values *and* row order) to the row arm:

* **index-vector intermediates** — a join intermediate is represented
  as parallel ``table -> int64 index`` arrays (one entry per surviving
  combination) instead of a list of joined-row dicts.  Output values
  are materialized from the same row dicts the row arm reads, so value
  identity is structural, not re-derived.
* **predicate masks** — WHERE conjuncts become boolean masks via numpy
  comparisons, with NULL masks reproducing SQL three-valued logic
  collapsed to ``False`` exactly as :func:`repro.db.expressions.compare`
  does (cross-kind comparisons are statically ``False``; ``NOT`` is
  plain mask negation, matching the row arm's NULL-in / NULL-out).
* **hash-join probes** — build and probe keys are factorized into one
  shared code space (``np.unique`` over the concatenated key columns),
  buckets become sorted segments, and the probe expands to index pairs
  with the classic repeat/cumsum ragged-expansion trick.  Probe order
  and in-bucket storage order are preserved, so the output enumerates
  combinations exactly as the row arm's dict-bucket join does.
* **aggregation** — group codes via ``np.unique`` + stable argsort into
  contiguous segments; integer sums via ``np.add.reduceat`` (exact, with
  an overflow bound check); float sums via per-segment ``np.cumsum``
  (sequential, hence rounding-identical to Python's left-to-right
  ``sum``; ``np.add.reduceat`` pairwise-sums floats and is *not* used
  for them); MIN/MAX via a ``np.lexsort`` segment sweep that works for
  strings too.
* **sort** — stable ``np.argsort`` composition mirroring
  ``_order_rows``: last key first, a value pass then a NULLs-last pass,
  descending via the reverse/stable/reverse trick.

Every step degrades independently: a column that did not vectorize
(mixed types, NaN, huge ints, NUL-embedded strings — see
:func:`repro.db.storage._build_column`), an unsupported expression, or
an exactness guard trips a per-step fallback to the row-at-a-time code
over the *same index representation*, and the final projection can fall
back to the shared :func:`~repro.db.executor.finish_rows`.  Fallback
decisions are recorded on a :class:`ColumnarTrace` surfaced through
``repro db explain`` and :meth:`ExecutorSession.stats`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

try:  # pragma: no cover - numpy is baked into the image
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.db.executor import (
    MAX_CROSS_PRODUCT,
    _star_label,
    apply_distinct_order_limit,
    cross_product_error,
    finish_rows,
)
from repro.db.expressions import (
    _like_match,
    compare,
    evaluate_operand,
    evaluate_predicate,
)
from repro.db.functions import evaluate_aggregate
from repro.db.storage import FLOAT_EXACT_INT, ColumnData, Database, Row
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    Query,
    Star,
    Subquery,
    conjuncts,
)

#: Auto mode: the columnar arm engages when the largest table in the
#: plan has at least this many rows.  Below it, per-query numpy setup
#: costs dominate and the row path wins (see BENCH_columnar.json for
#: the measured crossover per workload).
COLUMNAR_MIN_ROWS = 256

#: int64 group sums are refused when ``max|v| * count`` could overflow.
_SUM_OVERFLOW_BOUND = 2**62

#: Float-sum segments shorter than this are summed with Python's
#: ``sum`` directly; longer ones use sequential ``np.cumsum`` (both are
#: left-to-right and therefore rounding-identical).
_CUMSUM_MIN = 64


def available() -> bool:
    """Whether the columnar arm can run at all (numpy importable)."""
    return np is not None


class NotVectorizable(Exception):
    """Internal control flow: this step must use the row path."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


@dataclass
class ColumnarTrace:
    """Per-step arm decisions for one columnar execution."""

    steps: list[tuple[str, str, str]] = field(default_factory=list)

    def record(self, stage: str, arm: str, reason: str = "") -> None:
        self.steps.append((stage, arm, reason))

    @property
    def vectorized_steps(self) -> int:
        return sum(1 for _, arm, _ in self.steps if arm == "vectorized")

    @property
    def row_steps(self) -> int:
        return sum(1 for _, arm, _ in self.steps if arm == "row")

    def fallback_reasons(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for _, arm, reason in self.steps:
            if arm == "row":
                key = reason or "unspecified"
                out[key] = out.get(key, 0) + 1
        return out


def should_use_columnar(
    plan, database: Database, setting: bool | None
) -> bool:
    """The cost gate: forced on/off, or auto by largest-table size."""
    if np is None or plan.base is None:
        return False
    if setting is not None:
        return bool(setting)
    tables = [plan.base.table] + [s.scan.table for s in plan.joins]
    return max(database.row_count(t) for t in tables) >= COLUMNAR_MIN_ROWS


# ----------------------------------------------------------------------
# Column access contexts
# ----------------------------------------------------------------------


def _resolve_ref(
    ref: ColumnRef, tables: Sequence[str], columns_by_table: dict[str, Any]
) -> tuple[str, str]:
    """Mirror :func:`resolve_column` name resolution statically.

    Raises :class:`NotVectorizable` for unknown/ambiguous references —
    the row fallback then raises the *real* ``ExecutionError`` with the
    same message the row arm would produce.
    """
    if ref.table is not None:
        if ref.table not in tables or ref.column not in columns_by_table[ref.table]:
            raise NotVectorizable(f"unresolvable column {ref}")
        return ref.table, ref.column
    candidates = [t for t in tables if ref.column in columns_by_table[t]]
    if len(candidates) != 1:
        raise NotVectorizable(f"unresolvable column {ref}")
    return candidates[0], ref.column


@dataclass
class _Vec:
    """One column's values over the current mask domain."""

    values: Any  # np.ndarray
    nulls: Any | None  # np.ndarray[bool] | None
    kind: str
    exact: bool
    float_safe: bool


class _TableContext:
    """Masks over one table's full storage order (scan pushdown)."""

    def __init__(self, database: Database, table: str) -> None:
        self._store = database.column_store(table)
        self.tables = (table,)
        self.columns_by_table = {
            table: set(database.schema.table(table).column_names)
        }
        self.length = self._store.length

    def vec(self, table: str, column: str) -> _Vec:
        data = self._store.column(column)
        if data is None:
            raise NotVectorizable(f"column {table}.{column} not vectorizable")
        return _Vec(data.values, data.nulls, data.kind, data.exact, data.float_safe)

    def codes(self, table: str, column: str) -> tuple[Any, int]:
        factored = self._store.factorize(column)
        if factored is None:
            raise NotVectorizable(f"column {table}.{column} not vectorizable")
        codes, card, _dictionary = factored
        return codes, card


class _FrameContext:
    """Masks over the join intermediate's surviving combinations."""

    def __init__(
        self,
        database: Database,
        frame: dict[str, Any],
        tables: Sequence[str] | None = None,
    ) -> None:
        self._database = database
        self._frame = frame
        self._cache: dict[tuple[str, str], _Vec] = {}
        self.tables = tuple(tables) if tables is not None else tuple(frame)
        self.columns_by_table = {
            t: set(database.schema.table(t).column_names) for t in self.tables
        }
        first = next(iter(frame.values()))
        self.length = len(first)

    def vec(self, table: str, column: str) -> _Vec:
        key = (table, column)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        data = self._database.column_store(table).column(column)
        if data is None:
            raise NotVectorizable(f"column {table}.{column} not vectorizable")
        idx = self._frame[table]
        vec = _Vec(
            data.values[idx],
            data.nulls[idx] if data.nulls is not None else None,
            data.kind,
            data.exact,
            data.float_safe,
        )
        self._cache[key] = vec
        return vec

    def codes(self, table: str, column: str) -> tuple[Any, int]:
        """Dictionary codes over the frame domain (store codes gathered
        through the table's index vector)."""
        factored = self._database.column_store(table).factorize(column)
        if factored is None:
            raise NotVectorizable(f"column {table}.{column} not vectorizable")
        codes, card, _dictionary = factored
        return codes[self._frame[table]], card


def _ref_vec(ref: ColumnRef, ctx) -> _Vec:
    table, column = _resolve_ref(ref, ctx.tables, ctx.columns_by_table)
    return ctx.vec(table, column)


# ----------------------------------------------------------------------
# Predicate masks
# ----------------------------------------------------------------------


def _np_compare(op: CompOp, left: Any, right: Any) -> Any:
    if op is CompOp.EQ:
        return left == right
    if op is CompOp.NE:
        return left != right
    if op is CompOp.LT:
        return left < right
    if op is CompOp.LE:
        return left <= right
    if op is CompOp.GT:
        return left > right
    if op is CompOp.GE:
        return left >= right
    raise NotVectorizable(f"unsupported operator {op}")


def _operand_value(operand, ctx, subquery_values) -> tuple[str, Any]:
    """Classify an operand: ("col", _Vec) or ("const", python value)."""
    if isinstance(operand, Literal):
        return "const", operand.value
    if isinstance(operand, ColumnRef):
        return "col", _ref_vec(operand, ctx)
    if isinstance(operand, Subquery):
        return "const", subquery_values(operand)
    raise NotVectorizable(f"non-vectorizable operand {operand!r}")


def _valid_mask(n: int, *vecs: _Vec) -> Any | None:
    valid = None
    for vec in vecs:
        if vec.nulls is not None:
            valid = ~vec.nulls if valid is None else valid & ~vec.nulls
    return valid


def _apply_valid(mask: Any, valid: Any | None) -> Any:
    return mask if valid is None else mask & valid


def _col_const_mask(vec: _Vec, op: CompOp, const: Any, n: int) -> Any:
    """``column OP constant`` with :func:`compare`'s exact semantics."""
    valid = _valid_mask(n, vec)
    if const is None or not isinstance(const, (int, float, str)):
        # compare() returns False for NULL and non-scalar operands.
        return np.zeros(n, dtype=bool)
    if isinstance(const, str):
        if vec.kind != "str":
            return np.zeros(n, dtype=bool)  # cross-kind: statically False
        return _apply_valid(_np_compare(op, vec.values, const), valid)
    if vec.kind == "str":
        return np.zeros(n, dtype=bool)
    # Numeric.  bool is an int subclass and compares as 0/1, like Python.
    if isinstance(const, bool):
        const = int(const)
    if isinstance(const, int):
        if vec.kind == "int":
            if not (-(2**62) <= const <= 2**62):
                raise NotVectorizable("integer constant out of int64 range")
            return _apply_valid(_np_compare(op, vec.values, const), valid)
        # float column vs int constant: exact only within 2**53.
        if not (-FLOAT_EXACT_INT <= const <= FLOAT_EXACT_INT):
            raise NotVectorizable("int constant not exact as float64")
        return _apply_valid(_np_compare(op, vec.values, float(const)), valid)
    # float constant
    if vec.kind == "int":
        if not vec.float_safe:
            raise NotVectorizable("int column not exact as float64")
        return _apply_valid(
            _np_compare(op, vec.values.astype(np.float64), const), valid
        )
    return _apply_valid(_np_compare(op, vec.values, const), valid)


def _col_col_mask(left: _Vec, op: CompOp, right: _Vec, n: int) -> Any:
    valid = _valid_mask(n, left, right)
    if (left.kind == "str") != (right.kind == "str"):
        return np.zeros(n, dtype=bool)  # cross-kind: statically False
    if left.kind == "str":
        return _apply_valid(_np_compare(op, left.values, right.values), valid)
    if left.kind == "int" and right.kind == "int":
        return _apply_valid(_np_compare(op, left.values, right.values), valid)
    for side in (left, right):
        if side.kind == "int" and not side.float_safe:
            raise NotVectorizable("int column not exact as float64")
    lv = left.values.astype(np.float64) if left.kind == "int" else left.values
    rv = right.values.astype(np.float64) if right.kind == "int" else right.values
    return _apply_valid(_np_compare(op, lv, rv), valid)


def _comparison_mask(pred: Comparison, ctx, subquery_values) -> Any:
    n = ctx.length
    lkind, lval = _operand_value(pred.left, ctx, subquery_values)
    rkind, rval = _operand_value(pred.right, ctx, subquery_values)
    if lkind == "const" and rkind == "const":
        return np.full(n, compare(pred.op, lval, rval), dtype=bool)
    if lkind == "col" and rkind == "const":
        return _col_const_mask(lval, pred.op, rval, n)
    if lkind == "const" and rkind == "col":
        return _col_const_mask(rval, pred.op.flipped(), lval, n)
    return _col_col_mask(lval, pred.op, rval, n)


def _in_mask(pred: InPredicate, ctx, subquery_values) -> Any:
    n = ctx.length
    vec = _ref_vec(pred.column, ctx)
    valid = _valid_mask(n, vec)
    if pred.subquery is not None:
        members = subquery_values(pred.subquery)
        if not isinstance(members, list):
            raise NotVectorizable("IN subquery did not yield a value list")
    else:
        members = []
        for value in pred.values:
            if isinstance(value, Literal):
                members.append(value.value)
            elif isinstance(value, Subquery):
                members.append(subquery_values(value))
            else:
                raise NotVectorizable("non-constant IN list member")
    members = [m for m in members if m is not None]

    if vec.kind == "str":
        wanted = [m for m in members if isinstance(m, str)]
        if wanted:
            mask = np.isin(vec.values, np.array(wanted))
        else:
            mask = np.zeros(n, dtype=bool)
    else:
        wanted = []
        for m in members:
            if isinstance(m, bool):
                m = int(m)
            if not isinstance(m, (int, float)):
                continue
            if isinstance(m, int) and not (
                -FLOAT_EXACT_INT <= m <= FLOAT_EXACT_INT
            ):
                raise NotVectorizable("int member not exact as float64")
            wanted.append(float(m))
        if wanted:
            if vec.kind == "int" and not vec.float_safe:
                raise NotVectorizable("int column not exact as float64")
            values = (
                vec.values.astype(np.float64)
                if vec.kind == "int"
                else vec.values
            )
            mask = np.isin(values, np.array(wanted, dtype=np.float64))
        else:
            mask = np.zeros(n, dtype=bool)
    if pred.negated:
        mask = ~mask
    return _apply_valid(mask, valid)  # NULL IN / NOT IN are both False


def _like_mask(pred: Like, ctx, subquery_values) -> Any:
    n = ctx.length
    vec = _ref_vec(pred.column, ctx)
    if vec.kind != "str":
        raise NotVectorizable("LIKE over non-text column")
    valid = _valid_mask(n, vec)
    kind, pattern = _operand_value(pred.pattern, ctx, subquery_values)
    if kind != "const":
        raise NotVectorizable("non-constant LIKE pattern")
    if pattern is None:
        return np.zeros(n, dtype=bool)
    pattern = str(pattern)
    # Match each distinct value once; broadcast through the inverse map.
    uniq, inverse = np.unique(vec.values, return_inverse=True)
    matched = np.fromiter(
        (_like_match(v, pattern) for v in uniq.tolist()),
        dtype=bool,
        count=len(uniq),
    )
    mask = matched[inverse]
    if pred.negated:
        mask = ~mask
    return _apply_valid(mask, valid)


def _contains_subquery(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return isinstance(pred.left, Subquery) or isinstance(pred.right, Subquery)
    if isinstance(pred, Between):
        return isinstance(pred.low, Subquery) or isinstance(pred.high, Subquery)
    if isinstance(pred, InPredicate):
        return pred.subquery is not None or any(
            isinstance(v, Subquery) for v in pred.values
        )
    if isinstance(pred, Like):
        return isinstance(pred.pattern, Subquery)
    if isinstance(pred, Exists):
        return True
    if isinstance(pred, Not):
        return _contains_subquery(pred.operand)
    if isinstance(pred, (And, Or)):
        return any(_contains_subquery(p) for p in pred.operands)
    return False


def predicate_mask(pred: Predicate, ctx, subquery_values) -> Any:
    """Boolean mask over ``ctx``'s domain, or raise :class:`NotVectorizable`.

    NULL semantics match :func:`evaluate_predicate` exactly: leaf
    predicates collapse NULL to False *before* negation (so ``NOT``
    is plain mask complement, and NULL rows pass ``NOT (a = 5)``).

    Subqueries nested under NOT / AND / OR force the row path: the row
    arm short-circuits per row and may never execute the subquery,
    while eager mask evaluation always would — a behavioural difference
    when the subquery errors.  A subquery at top-of-conjunct position
    is fine (the conjunct loop only evaluates over non-empty surviving
    sets, where the row arm would have executed it too; the resolver
    memoizes, so once-vs-many is unobservable).
    """
    if isinstance(pred, Comparison):
        return _comparison_mask(pred, ctx, subquery_values)
    if isinstance(pred, Between):
        low = Comparison(pred.column, CompOp.GE, pred.low)
        high = Comparison(pred.column, CompOp.LE, pred.high)
        return _comparison_mask(low, ctx, subquery_values) & _comparison_mask(
            high, ctx, subquery_values
        )
    if isinstance(pred, InPredicate):
        return _in_mask(pred, ctx, subquery_values)
    if isinstance(pred, Like):
        return _like_mask(pred, ctx, subquery_values)
    if isinstance(pred, Exists):
        rows = subquery_values(pred.subquery)
        result = bool(rows)
        if pred.negated:
            result = not result
        return np.full(ctx.length, result, dtype=bool)
    if isinstance(pred, Not):
        if _contains_subquery(pred.operand):
            raise NotVectorizable("subquery under NOT")
        return ~predicate_mask(pred.operand, ctx, subquery_values)
    if isinstance(pred, And):
        if any(_contains_subquery(p) for p in pred.operands):
            raise NotVectorizable("subquery under AND")
        masks = [predicate_mask(p, ctx, subquery_values) for p in pred.operands]
        out = masks[0]
        for m in masks[1:]:
            out = out & m
        return out
    if isinstance(pred, Or):
        if any(_contains_subquery(p) for p in pred.operands):
            raise NotVectorizable("subquery under OR")
        masks = [predicate_mask(p, ctx, subquery_values) for p in pred.operands]
        out = masks[0]
        for m in masks[1:]:
            out = out | m
        return out
    raise NotVectorizable(f"unsupported predicate {type(pred).__name__}")


# ----------------------------------------------------------------------
# Scan
# ----------------------------------------------------------------------


def _eq_matches(value: Any, constant: Any) -> bool:
    return value is not None and value == constant


def scan_indices(
    scan,
    database: Database,
    session,
    subquery_values,
    trace: ColumnarTrace,
) -> Any:
    """Surviving row indices of one table scan, in storage order.

    Conjuncts apply in the row arm's order (eq lookups, then filters),
    each narrowing the surviving set, so row-fallback conjuncts are
    evaluated over exactly the rows the row arm would evaluate them on
    (same short-circuiting, same errors).
    """
    store = database.column_store(scan.table)
    rows = database.scan(scan.table)
    surviving = np.arange(store.length, dtype=np.int64)
    ctx = _TableContext(database, scan.table)

    for column, constant in scan.eq_lookups:
        if session is not None and not session.value_index_admits(
            scan.table, column, constant
        ):
            trace.record("scan", "vectorized", "value-index prune")
            return surviving[:0]
        if surviving.size == 0:
            break
        data = store.column(column)
        if data is not None:
            try:
                vec = _Vec(
                    data.values, data.nulls, data.kind, data.exact, data.float_safe
                )
                mask = _col_const_mask(vec, CompOp.EQ, constant, store.length)
            except NotVectorizable as exc:
                trace.record("scan", "row", exc.reason)
                surviving = surviving[
                    [_eq_matches(rows[i][column], constant) for i in surviving]
                ]
                continue
            trace.record("scan", "vectorized")
            surviving = surviving[mask[surviving]]
        else:
            trace.record("scan", "row", f"column {scan.table}.{column}")
            surviving = surviving[
                [_eq_matches(rows[i][column], constant) for i in surviving]
            ]

    for pred in scan.filters:
        if surviving.size == 0:
            break
        try:
            mask = predicate_mask(pred, ctx, subquery_values)
        except NotVectorizable as exc:
            trace.record("scan", "row", exc.reason)
            surviving = surviving[
                [
                    evaluate_predicate(
                        pred, {scan.table: rows[i]}, subquery_values
                    )
                    for i in surviving
                ]
            ]
            continue
        trace.record("scan", "vectorized")
        surviving = surviving[mask[surviving]]
    return surviving


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


class _NoMatches(Exception):
    """Join keys of incompatible kinds: statically zero matches."""


def _pair_codes(
    build_data: ColumnData,
    build_factored: tuple[Any, int, Any],
    scan_idx: Any,
    probe_data: ColumnData,
    probe_factored: tuple[Any, int, Any],
    probe_idx: Any,
) -> tuple[Any, Any, int]:
    """Map one key pair's cached dictionary codes into a shared space.

    Merging the two (small) per-column dictionaries and remapping codes
    costs O(card_build + card_probe) plus two int gathers — the full key
    columns were already factorized once per table version, so no
    per-query ``np.unique`` over row-count-sized data.  NULL rows map to
    the shared sentinel code past the merged dictionary; the caller's
    validity masks exclude them from matching, exactly like the row
    arm's ``None``-key skip.

    Returns (build_codes, probe_codes, cardinality); raises
    :class:`_NoMatches` for cross-kind keys (Python ``==`` between str
    and numeric is always False, so the join output is empty) and
    :class:`NotVectorizable` when float casting would lose exactness.
    """
    build_codes, _bcard, build_dict = build_factored
    probe_codes, _pcard, probe_dict = probe_factored
    if (build_data.kind == "str") != (probe_data.kind == "str"):
        raise _NoMatches
    if build_data.kind != probe_data.kind:  # int/float mix -> float64 space
        for side in (build_data, probe_data):
            if side.kind == "int" and not side.float_safe:
                raise NotVectorizable("int join key not exact as float64")
        if build_data.kind == "int":
            build_dict = build_dict.astype(np.float64)
        if probe_data.kind == "int":
            probe_dict = probe_dict.astype(np.float64)
    shared, inverse = np.unique(
        np.concatenate([build_dict, probe_dict]), return_inverse=True
    )
    inverse = inverse.astype(np.int64).reshape(len(build_dict) + len(probe_dict))
    sentinel = np.int64(len(shared))  # NULL top code lands here
    build_map = np.append(inverse[: len(build_dict)], sentinel)
    probe_map = np.append(inverse[len(build_dict):], sentinel)
    return (
        build_map[build_codes[scan_idx]],
        probe_map[probe_codes[probe_idx]],
        len(shared) + 1,
    )


def _combine_codes(code_pairs: list[tuple[Any, Any, int]]) -> tuple[Any, Any]:
    """Fold per-key codes into one code per side, compacting each step
    so the mixed-radix accumulator can never overflow int64."""
    build, probe = code_pairs[0][0].astype(np.int64), code_pairs[0][1].astype(np.int64)
    for b, p, card in code_pairs[1:]:
        build = build * card + b
        probe = probe * card + p
        merged = np.concatenate([build, probe])
        _, inverse = np.unique(merged, return_inverse=True)
        build, probe = inverse[: len(build)], inverse[len(build):]
    return build, probe


def _empty_frame(frame: dict[str, Any], table: str) -> dict[str, Any]:
    out = {t: ix[:0] for t, ix in frame.items()}
    out[table] = np.zeros(0, dtype=np.int64)
    return out


def hash_join_indices(
    frame: dict[str, Any],
    scan_idx: Any,
    step,
    database: Database,
) -> dict[str, Any]:
    """Vectorized equi-join: extend ``frame`` with the scanned subset of
    ``step``'s table.  Output order: probe (frame) order major, bucket
    storage order minor — exactly the row arm's enumeration."""
    table = step.scan.table
    store = database.column_store(table)
    k = len(next(iter(frame.values())))

    code_pairs = []
    try:
        for bound_ref, new_ref in step.keys:
            probe_store = database.column_store(bound_ref.table)
            build_data = store.column(new_ref.column)
            probe_data = probe_store.column(bound_ref.column)
            if build_data is None:
                raise NotVectorizable(
                    f"column {table}.{new_ref.column} not vectorizable"
                )
            if probe_data is None:
                raise NotVectorizable(
                    f"column {bound_ref.table}.{bound_ref.column} not vectorizable"
                )
            code_pairs.append(
                _pair_codes(
                    build_data,
                    store.factorize(new_ref.column),
                    scan_idx,
                    probe_data,
                    probe_store.factorize(bound_ref.column),
                    frame[bound_ref.table],
                )
            )
    except _NoMatches:
        return _empty_frame(frame, table)

    build_codes, probe_codes = _combine_codes(code_pairs)

    build_valid = np.ones(len(scan_idx), dtype=bool)
    probe_valid = np.ones(k, dtype=bool)
    for (bound_ref, new_ref) in step.keys:
        bd = store.column(new_ref.column)
        pd = database.column_store(bound_ref.table).column(bound_ref.column)
        if bd.nulls is not None:
            build_valid &= ~bd.nulls[scan_idx]
        if pd.nulls is not None:
            probe_valid &= ~pd.nulls[frame[bound_ref.table]]

    valid_positions = np.nonzero(build_valid)[0]
    if valid_positions.size == 0:
        return _empty_frame(frame, table)
    bc = build_codes[valid_positions]
    order = np.argsort(bc, kind="stable")  # stable: keeps storage order
    sorted_codes = bc[order]
    sorted_rows = scan_idx[valid_positions[order]]
    uniq, starts, counts = np.unique(
        sorted_codes, return_index=True, return_counts=True
    )

    pos = np.searchsorted(uniq, probe_codes)
    pos_c = np.clip(pos, 0, len(uniq) - 1)
    match = probe_valid & (pos < len(uniq)) & (uniq[pos_c] == probe_codes)
    cnt = np.where(match, counts[pos_c], 0)
    total = int(cnt.sum())
    if total == 0:
        return _empty_frame(frame, table)

    rep = np.repeat(np.arange(k, dtype=np.int64), cnt)
    offsets = np.cumsum(cnt) - cnt  # output start per probe row
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, cnt)
    new_rows = sorted_rows[starts[pos_c][rep] + within]

    out = {t: ix[rep] for t, ix in frame.items()}
    out[table] = new_rows
    return out


def _row_hash_join_indices(
    frame: dict[str, Any],
    scan_idx: Any,
    step,
    database: Database,
) -> dict[str, Any]:
    """Row-at-a-time fallback join over the index representation —
    bit-for-bit the row arm's dict-bucket join, emitting indices."""
    table = step.scan.table
    rows = database.scan(table)
    new_cols = tuple(new_ref.column for _bound, new_ref in step.keys)
    bound_refs = tuple(bound for bound, _new in step.keys)
    bound_rows = {ref.table: database.scan(ref.table) for ref in bound_refs}

    buckets: dict[tuple, list[int]] = {}
    for i in scan_idx.tolist():
        row = rows[i]
        key = tuple(row[c] for c in new_cols)
        if any(v is None for v in key):
            continue
        buckets.setdefault(key, []).append(i)

    k = len(next(iter(frame.values())))
    frame_lists = {t: ix.tolist() for t, ix in frame.items()}
    rep: list[int] = []
    new_rows: list[int] = []
    for j in range(k):
        probe = tuple(
            bound_rows[ref.table][frame_lists[ref.table][j]][ref.column]
            for ref in bound_refs
        )
        if any(v is None for v in probe):
            continue
        bucket = buckets.get(probe)
        if bucket:
            rep.extend([j] * len(bucket))
            new_rows.extend(bucket)

    rep_arr = np.array(rep, dtype=np.int64)
    out = {t: ix[rep_arr] for t, ix in frame.items()}
    out[table] = np.array(new_rows, dtype=np.int64)
    return out


def join_step_indices(
    frame: dict[str, Any],
    scan_idx: Any,
    step,
    database: Database,
    trace: ColumnarTrace,
) -> dict[str, Any]:
    table = step.scan.table
    k = len(next(iter(frame.values())))
    if not step.is_hash_join:
        estimated = k * len(scan_idx)
        if estimated > MAX_CROSS_PRODUCT:
            raise cross_product_error(
                list(frame) + [table], estimated, database.schema
            )
        trace.record("join", "vectorized", "cross product")
        out = {t: np.repeat(ix, len(scan_idx)) for t, ix in frame.items()}
        out[table] = np.tile(scan_idx, k)
        return out
    try:
        out = hash_join_indices(frame, scan_idx, step, database)
        trace.record("join", "vectorized")
        return out
    except NotVectorizable as exc:
        trace.record("join", "row", exc.reason)
        return _row_hash_join_indices(frame, scan_idx, step, database)


# ----------------------------------------------------------------------
# Residual filters
# ----------------------------------------------------------------------


def _gather_frame(frame: dict[str, Any], selector: Any) -> dict[str, Any]:
    return {t: ix[selector] for t, ix in frame.items()}


def residual_filter(
    frame: dict[str, Any],
    residual: Sequence[Predicate],
    query_tables: Sequence[str],
    database: Database,
    subquery_values,
    trace: ColumnarTrace,
) -> dict[str, Any]:
    """Apply leftover multi-table conjuncts, per-predicate fallback."""
    views = {t: database.scan(t) for t in frame}
    for pred in residual:
        k = len(next(iter(frame.values())))
        if k == 0:
            break
        ctx = _FrameContext(database, frame, tables=query_tables)
        try:
            mask = predicate_mask(pred, ctx, subquery_values)
        except NotVectorizable as exc:
            trace.record("filter", "row", exc.reason)
            frame_lists = {t: ix.tolist() for t, ix in frame.items()}
            keep = np.fromiter(
                (
                    evaluate_predicate(
                        pred,
                        {t: views[t][frame_lists[t][j]] for t in frame},
                        subquery_values,
                    )
                    for j in range(k)
                ),
                dtype=bool,
                count=k,
            )
            frame = _gather_frame(frame, keep)
            continue
        trace.record("filter", "vectorized")
        frame = _gather_frame(frame, mask)
    return frame


# ----------------------------------------------------------------------
# Finish: grouping / aggregation
# ----------------------------------------------------------------------


def _combine_ref_codes(
    pairs: Sequence[tuple[Any, int]], n: int
) -> tuple[Any, int]:
    """Mixed-radix combination of per-column dictionary codes into one
    int64 code per row, returned with its cardinality bound.  NULLs
    already hold their own code (see :meth:`ColumnStore.factorize`),
    mirroring ``None`` as a dict-key component; the accumulator compacts
    before it could overflow."""
    codes = np.zeros(n, dtype=np.int64)
    acc = 1
    for col_codes, card in pairs:
        card = max(card, 1)
        if acc * card >= 2**62:  # compact before the radix overflows
            _, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64)
            acc = int(codes.max()) + 1 if n else 1
        codes = codes * card + col_codes
        acc *= card
    return codes, acc


def _first_appearance_groups(codes: Any, card: int, n: int):
    """Dense group ids ordered by first appearance.

    Returns ``(gid, G, first_row)`` matching ``np.unique`` +
    first-appearance ranking.  When the code cardinality is small the
    O(n + card) scatter path avoids sorting row-count-sized data: a
    reversed scatter leaves each code's *first* row index (later writes
    win, so writing in reverse order keeps the earliest), and only the
    ≤card present codes get sorted."""
    if 0 < card <= max(2 * n, 1024):
        first_all = np.full(card, n, dtype=np.int64)
        first_all[codes[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        present = np.flatnonzero(first_all < n)
        order = np.argsort(first_all[present], kind="stable")
        first_row = first_all[present][order]
        G = len(present)
        rank_all = np.empty(card, dtype=np.int64)
        rank_all[present[order]] = np.arange(G, dtype=np.int64)
        return rank_all[codes], G, first_row
    _uniq, first, inverse = np.unique(codes, return_index=True, return_inverse=True)
    G = len(first)
    order = np.argsort(first, kind="stable")  # first-appearance order
    rank = np.empty(G, dtype=np.int64)
    rank[order] = np.arange(G, dtype=np.int64)
    return rank[inverse], G, first[order]


class _GroupedState:
    """Shared per-query grouping layout: segments in output-group order."""

    def __init__(self, gid: Any, G: int, n: int) -> None:
        self.gid = gid
        self.G = G
        self.n = n
        self.counts = np.bincount(gid, minlength=G) if n else np.zeros(G, dtype=np.int64)
        self.row_order = np.argsort(gid, kind="stable")
        self.sorted_gid = gid[self.row_order]
        self.starts = np.searchsorted(self.sorted_gid, np.arange(G))


def _materialize_scalar(value: Any, is_null: bool) -> Any:
    return None if is_null else value


def _segment_min_max(
    state: _GroupedState, values: Any, mask: Any, want_max: bool
) -> list[Any]:
    """Per-group MIN or MAX of non-null values via one lexsort sweep."""
    sv = values[state.row_order]
    sm = mask[state.row_order]
    g2 = state.sorted_gid[sm]
    v2 = sv[sm]
    out: list[Any] = [None] * state.G
    if len(g2) == 0:
        return out
    order = np.lexsort((v2, g2))
    gs = g2[order]
    vs = v2[order]
    boundary = np.concatenate([[True], gs[1:] != gs[:-1]])
    if want_max:
        # segment ends: positions just before the next boundary
        ends = np.concatenate([boundary[1:], [True]])
        groups, values_out = gs[ends], vs[ends]
    else:
        groups, values_out = gs[boundary], vs[boundary]
    for g, v in zip(groups.tolist(), values_out.tolist()):
        out[g] = v
    return out


def _aggregate_groups(
    node: Aggregate,
    state: _GroupedState,
    ctx,
) -> list[Any]:
    """Per-group values for one aggregate, bit-compatible with
    :func:`evaluate_aggregate` over the row arm's per-group lists."""
    counts = state.counts
    if isinstance(node.arg, Star):
        if node.func is AggFunc.COUNT and not node.distinct:
            return [int(c) for c in counts.tolist()]
        return [
            evaluate_aggregate(node.func, [1] * int(c), node.distinct)
            for c in counts.tolist()
        ]

    vec = _ref_vec(node.arg, ctx)
    sv = vec.values[state.row_order]
    if vec.nulls is not None:
        sm = ~vec.nulls[state.row_order]
    else:
        sm = np.ones(state.n, dtype=bool)

    if state.n == 0:
        empty = evaluate_aggregate(node.func, [], node.distinct)
        return [empty] * state.G

    nn = (
        np.add.reduceat(sm.astype(np.int64), state.starts)
        if state.G
        else np.zeros(0, dtype=np.int64)
    )

    func = node.func
    if func is AggFunc.COUNT:
        if not node.distinct:
            return [int(c) for c in nn.tolist()]
        if not vec.exact and not (vec.kind == "float" and vec.float_safe):
            raise NotVectorizable("COUNT DISTINCT over inexact column")
        g2 = state.sorted_gid[sm]
        v2 = sv[sm]
        out = [0] * state.G
        if len(g2):
            order = np.lexsort((v2, g2))
            gs, vs = g2[order], v2[order]
            fresh = np.concatenate([[True], (gs[1:] != gs[:-1]) | (vs[1:] != vs[:-1])])
            for g, c in zip(*np.unique(gs[fresh], return_counts=True)):
                out[int(g)] = int(c)
        return out

    if func in (AggFunc.MIN, AggFunc.MAX):
        # DISTINCT is a no-op for MIN/MAX; requires exact materialization.
        if not vec.exact:
            raise NotVectorizable("MIN/MAX over inexact column")
        return _segment_min_max(state, vec.values, sm, want_max=func is AggFunc.MAX)

    if func in (AggFunc.SUM, AggFunc.AVG):
        if vec.kind == "str":
            raise NotVectorizable("SUM/AVG over text column")
        if vec.kind == "int":
            max_abs = 0
            if vec.values.size:
                max_abs = max(
                    abs(int(vec.values.max())), abs(int(vec.values.min()))
                )
            if max_abs and max_abs * state.n >= _SUM_OVERFLOW_BOUND:
                raise NotVectorizable("int sum overflow risk")
            if node.distinct:
                g2 = state.sorted_gid[sm]
                v2 = sv[sm]
                sums = [0] * state.G
                dcounts = [0] * state.G
                if len(g2):
                    order = np.lexsort((v2, g2))
                    gs, vs = g2[order], v2[order]
                    fresh = np.concatenate(
                        [[True], (gs[1:] != gs[:-1]) | (vs[1:] != vs[:-1])]
                    )
                    for g, v in zip(gs[fresh].tolist(), vs[fresh].tolist()):
                        sums[g] += v  # int sums are order-independent
                        dcounts[g] += 1
                if func is AggFunc.SUM:
                    return [
                        sums[g] if dcounts[g] else None for g in range(state.G)
                    ]
                return [
                    sums[g] / dcounts[g] if dcounts[g] else None
                    for g in range(state.G)
                ]
            masked = np.where(sm, sv, 0)
            totals = np.add.reduceat(masked, state.starts)
            if func is AggFunc.SUM:
                return [
                    int(t) if c else None
                    for t, c in zip(totals.tolist(), nn.tolist())
                ]
            return [
                int(t) / int(c) if c else None
                for t, c in zip(totals.tolist(), nn.tolist())
            ]
        # float: Python's sum() is sequential; np.add.reduceat pairwise-
        # sums and diverges in the last bits, so each segment is summed
        # left-to-right (cumsum is sequential in numpy).
        if not vec.exact:
            raise NotVectorizable("SUM/AVG over inexact float column")
        if node.distinct:
            raise NotVectorizable("SUM/AVG DISTINCT over floats is order-dependent")
        out: list[Any] = []
        ends = np.concatenate([state.starts[1:], [state.n]])
        for g in range(state.G):
            seg = sv[state.starts[g]:ends[g]]
            segm = sm[state.starts[g]:ends[g]]
            if not bool(segm.all()):
                seg = seg[segm]
            if seg.size == 0:
                out.append(None)
            elif seg.size < _CUMSUM_MIN:
                total = sum(seg.tolist())
                out.append(total if func is AggFunc.SUM else total / seg.size)
            else:
                total = float(np.cumsum(seg)[-1])
                out.append(total if func is AggFunc.SUM else total / seg.size)
        return out

    raise NotVectorizable(f"unsupported aggregate {func}")


def _collect_aggregates(query: Query) -> list[Aggregate]:
    nodes: dict[Aggregate, None] = {}
    for item in query.select:
        if isinstance(item, Aggregate):
            nodes[item] = None
    for pred in conjuncts(query.having):
        for node in _having_aggregates(pred):
            nodes[node] = None
    for item in query.order_by:
        if isinstance(item.expr, Aggregate):
            nodes[item.expr] = None
    return list(nodes)


def _having_aggregates(pred: Predicate) -> list[Aggregate]:
    if isinstance(pred, (And, Or)):
        out = []
        for p in pred.operands:
            out.extend(_having_aggregates(p))
        return out
    if isinstance(pred, Comparison):
        return [s for s in (pred.left, pred.right) if isinstance(s, Aggregate)]
    return []


def _validate_having(pred: Predicate) -> None:
    """Refuse HAVING shapes the row arm rejects or we cannot precompute."""
    if isinstance(pred, (And, Or)):
        for p in pred.operands:
            _validate_having(p)
        return
    if isinstance(pred, Comparison):
        for side in (pred.left, pred.right):
            if not isinstance(side, (Aggregate, ColumnRef, Literal, Subquery)):
                raise NotVectorizable("non-constant HAVING operand")
        return
    raise NotVectorizable("unsupported HAVING predicate")


def _grouped_records(
    query: Query,
    frame: dict[str, Any],
    database: Database,
    subquery_values,
) -> list[Row]:
    """Mirror of ``_execute_grouped`` over index vectors: group codes,
    segment aggregates, per-group record building (incl. ``__order__``
    helper columns), and HAVING filtering."""
    ctx = _FrameContext(database, frame, tables=query.from_tables)
    n = ctx.length

    key_vecs = []
    key_codes = []
    for ref in query.group_by:
        vec = _ref_vec(ref, ctx)
        if not vec.exact:
            raise NotVectorizable("group key over inexact column")
        key_vecs.append(vec)
        key_codes.append(ctx.codes(*_resolve_ref(ref, ctx.tables, ctx.columns_by_table)))

    if query.group_by:
        if n == 0:
            return []  # no rows -> no groups (dict stays empty)
        # Group on cached per-column dictionary codes: exact columns make
        # code equality == Python-value equality, and group order depends
        # only on first appearance, never on code values.
        codes, card = _combine_ref_codes(key_codes, n)
        gid, G, first_row = _first_appearance_groups(codes, card, n)
    else:
        G = 1
        gid = np.zeros(n, dtype=np.int64)
        first_row = np.zeros(1, dtype=np.int64)

    state = _GroupedState(gid, G, n)

    agg_values: dict[Aggregate, list[Any]] = {}
    for node in _collect_aggregates(query):
        agg_values[node] = _aggregate_groups(node, state, ctx)

    # Per-group value of each group-key column (first occurrence).
    key_values: list[list[Any]] = []
    for vec in key_vecs:
        vals = vec.values[first_row].astype(object)
        if vec.nulls is not None:
            vals[vec.nulls[first_row]] = None
        key_values.append(vals.tolist())

    def group_key_value(ref: ColumnRef, g: int) -> Any:
        for position, group_col in enumerate(query.group_by):
            if group_col == ref or (
                group_col.column == ref.column and ref.table is None
            ):
                return key_values[position][g]
        if not query.group_by and state.counts[g]:
            vec = _ref_vec(ref, ctx)  # implicit single group: first row
            if not vec.exact:
                raise NotVectorizable("bare column over inexact column")
            i = int(first_row[g])
            if vec.nulls is not None and bool(vec.nulls[i]):
                return None
            return vec.values[i : i + 1].astype(object).tolist()[0]
        if not state.counts[g]:
            return None
        raise NotVectorizable(f"column {ref} neither grouped nor aggregated")

    if query.having is not None:
        _validate_having(query.having)

    def having_side(operand, g: int) -> Any:
        if isinstance(operand, Aggregate):
            return agg_values[operand][g]
        if isinstance(operand, ColumnRef):
            return group_key_value(operand, g)
        return evaluate_operand(operand, {}, subquery_values)

    def having_ok(pred: Predicate, g: int) -> bool:
        if isinstance(pred, And):
            return all(having_ok(p, g) for p in pred.operands)
        if isinstance(pred, Or):
            return any(having_ok(p, g) for p in pred.operands)
        assert isinstance(pred, Comparison)
        return compare(
            pred.op, having_side(pred.left, g), having_side(pred.right, g)
        )

    records: list[Row] = []
    for g in range(G):
        if query.having is not None and not having_ok(query.having, g):
            continue
        record: Row = {}
        for item in query.select:
            if isinstance(item, Aggregate):
                record[str(item)] = agg_values[item][g]
            elif isinstance(item, ColumnRef):
                record[str(item)] = group_key_value(item, g)
            else:
                raise NotVectorizable("SELECT * with GROUP BY")
        for order_item in query.order_by:
            label = str(order_item.expr)
            if label in record:
                continue
            if isinstance(order_item.expr, Aggregate):
                record["__order__" + label] = agg_values[order_item.expr][g]
            else:
                record["__order__" + label] = group_key_value(order_item.expr, g)
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Finish: plain projection, vectorized distinct / sort / limit
# ----------------------------------------------------------------------


def _stable_desc_argsort(values: Any) -> Any:
    """Stable *descending* argsort: ties keep original order (the
    reverse / stable-ascending / reverse trick)."""
    m = len(values)
    return (m - 1 - np.argsort(values[::-1], kind="stable"))[::-1]


def _plain_finish(
    query: Query,
    frame: dict[str, Any],
    database: Database,
    max_rows: int | None,
    recorder,
) -> list[Row]:
    """Vectorized SELECT / DISTINCT / ORDER BY / LIMIT for non-grouped
    queries.  LIMIT is applied to the sort permutation *before*
    materialization, so a top-k over a large join never builds the full
    output."""

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    ctx = _FrameContext(database, frame, tables=query.from_tables)
    n = ctx.length

    sources: list[tuple[str, str]] = []  # (table, column) per cols entry

    def exact_vec(ref: ColumnRef) -> _Vec:
        table, column = _resolve_ref(ref, ctx.tables, ctx.columns_by_table)
        vec = ctx.vec(table, column)
        if not vec.exact:
            raise NotVectorizable("projection over inexact column")
        sources.append((table, column))
        return vec

    with stage("group"):
        cols: dict[str, _Vec] = {}
        for item in query.select:
            if isinstance(item, Star):
                for table in query.from_tables:
                    for column in database.schema.table(table).column_names:
                        vec = ctx.vec(table, column)
                        if not vec.exact:
                            raise NotVectorizable(
                                "projection over inexact column"
                            )
                        cols[_star_label(query, table, column)] = vec
                        sources.append((table, column))
            elif isinstance(item, ColumnRef):
                cols[str(item)] = exact_vec(item)
            else:  # Aggregate outside grouped execution: row arm raises
                raise NotVectorizable("aggregate outside grouped execution")
        for order_item in query.order_by:
            expr = order_item.expr
            if not isinstance(expr, ColumnRef):
                raise NotVectorizable("non-column ORDER BY in plain query")
            if str(expr) not in cols:
                cols["__order__" + str(expr)] = exact_vec(expr)

        selector = np.arange(n, dtype=np.int64)
        if query.distinct:
            # First-occurrence dedup on the full record tuple (helper
            # columns included, as tuple(row.values()) would), via cached
            # per-column dictionary codes: exact columns make code
            # equality == Python-value equality.
            codes, card = _combine_ref_codes(
                [ctx.codes(t, c) for t, c in sources], n
            )
            _gid, _G, first_row = _first_appearance_groups(codes, card, n)
            selector = np.sort(first_row)
            cols = {
                label: _Vec(
                    vec.values[selector],
                    vec.nulls[selector] if vec.nulls is not None else None,
                    vec.kind,
                    vec.exact,
                    vec.float_safe,
                )
                for label, vec in cols.items()
            }

    m = len(selector)
    perm = np.arange(m, dtype=np.int64)
    if query.order_by:
        with stage("sort"):
            for order_item in reversed(query.order_by):
                label = str(order_item.expr)
                vec = cols.get(label) or cols["__order__" + label]
                values = vec.values[perm]
                if order_item.desc:
                    perm = perm[_stable_desc_argsort(values)]
                else:
                    perm = perm[np.argsort(values, kind="stable")]
                if vec.nulls is not None:
                    # NULLs last, preserving their relative order (the
                    # row arm's (missing, value) composite key).
                    perm = perm[np.argsort(vec.nulls[perm], kind="stable")]

    effective = m
    if query.limit is not None:
        effective = min(effective, query.limit)
    if max_rows is not None:
        effective = min(effective, max_rows)
    perm = perm[:effective]

    labels = [label for label in cols if not label.startswith("__order__")]
    columns_out = []
    for label in labels:
        vec = cols[label]
        out = vec.values[perm].astype(object)
        if vec.nulls is not None:
            out[vec.nulls[perm]] = None
        columns_out.append(out.tolist())
    return [dict(zip(labels, values)) for values in zip(*columns_out)] if labels else [
        {} for _ in range(effective)
    ]


def _materialize_joined(
    frame: dict[str, Any], database: Database
) -> list[dict[str, Row]]:
    views = {t: database.scan(t) for t in frame}
    lists = {t: ix.tolist() for t, ix in frame.items()}
    k = len(next(iter(lists.values())))
    tables = list(frame)
    return [
        {t: views[t][lists[t][j]] for t in tables} for j in range(k)
    ]


def columnar_finish(
    query: Query,
    frame: dict[str, Any],
    database: Database,
    subquery_values,
    max_rows: int | None,
    recorder,
    trace: ColumnarTrace,
) -> list[Row]:
    """Vectorized finish with transparent fallback to the shared
    :func:`finish_rows` (group/project semantics can never diverge —
    fallback *is* the row arm)."""
    has_aggregates = bool(query.aggregates()) or any(
        isinstance(i, Aggregate) for i in query.select
    )

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    try:
        if query.group_by or has_aggregates:
            with stage("group"):
                records = _grouped_records(query, frame, database, subquery_values)
            trace.record("finish", "vectorized")
            return apply_distinct_order_limit(
                query, records, max_rows=max_rows, recorder=recorder
            )
        result = _plain_finish(query, frame, database, max_rows, recorder)
        trace.record("finish", "vectorized")
        return result
    except NotVectorizable as exc:
        trace.record("finish", "row", exc.reason)
        joined = _materialize_joined(frame, database)
        return finish_rows(
            query, joined, subquery_values, max_rows=max_rows, recorder=recorder
        )


# ----------------------------------------------------------------------
# Top-level columnar execution
# ----------------------------------------------------------------------


def execute_columnar(
    plan,
    database: Database,
    session,
    subquery_values,
    recorder,
    max_rows: int | None,
    trace: ColumnarTrace,
) -> list[Row]:
    """Run a built plan through the columnar arm.

    The intermediate is always index vectors; each stage independently
    chooses vectorized or row execution (recorded on ``trace``), so the
    result is bit-identical to the row arm by construction.
    """

    def stage(name: str):
        return recorder.stage(name) if recorder is not None else nullcontext()

    with stage("scan") as scan_stats:
        base_idx = scan_indices(plan.base, database, session, subquery_values, trace)
        if scan_stats is not None:
            scan_stats.items += len(base_idx)
    frame: dict[str, Any] = {plan.base.table: base_idx}

    for step in plan.joins:
        with stage("scan") as scan_stats:
            scan_idx = scan_indices(
                step.scan, database, session, subquery_values, trace
            )
            if scan_stats is not None:
                scan_stats.items += len(scan_idx)
        with stage("join") as join_stats:
            frame = join_step_indices(frame, scan_idx, step, database, trace)
            if join_stats is not None:
                join_stats.items += len(next(iter(frame.values())))

    if plan.residual:
        with stage("filter"):
            frame = residual_filter(
                frame,
                plan.residual,
                plan.query.from_tables,
                database,
                subquery_values,
                trace,
            )

    return columnar_finish(
        plan.query, frame, database, subquery_values, max_rows, recorder, trace
    )


# ----------------------------------------------------------------------
# Static eligibility probes (EXPLAIN support; no data touched beyond
# dtype inspection, no subqueries executed)
# ----------------------------------------------------------------------


def _probe_operand(operand, ctx) -> None:
    if isinstance(operand, (Literal, Subquery)):
        return
    if isinstance(operand, ColumnRef):
        _ref_vec(operand, ctx)
        return
    raise NotVectorizable(f"non-vectorizable operand {operand!r}")


def _probe_predicate(pred: Predicate, ctx) -> None:
    """Static mirror of :func:`predicate_mask`'s refusal conditions
    (kind/exactness guards that depend on runtime constants excluded)."""
    if isinstance(pred, Comparison):
        _probe_operand(pred.left, ctx)
        _probe_operand(pred.right, ctx)
        return
    if isinstance(pred, Between):
        _probe_operand(pred.column, ctx)
        _probe_operand(pred.low, ctx)
        _probe_operand(pred.high, ctx)
        return
    if isinstance(pred, InPredicate):
        _ref_vec(pred.column, ctx)
        if pred.subquery is None:
            for value in pred.values:
                if not isinstance(value, (Literal, Subquery)):
                    raise NotVectorizable("non-constant IN list member")
        return
    if isinstance(pred, Like):
        vec = _ref_vec(pred.column, ctx)
        if vec.kind != "str":
            raise NotVectorizable("LIKE over non-text column")
        if not isinstance(pred.pattern, (Literal, Subquery)):
            raise NotVectorizable("non-constant LIKE pattern")
        return
    if isinstance(pred, Exists):
        return
    if isinstance(pred, Not):
        if _contains_subquery(pred.operand):
            raise NotVectorizable("subquery under NOT")
        _probe_predicate(pred.operand, ctx)
        return
    if isinstance(pred, (And, Or)):
        if any(_contains_subquery(p) for p in pred.operands):
            raise NotVectorizable("subquery under AND/OR")
        for p in pred.operands:
            _probe_predicate(p, ctx)
        return
    raise NotVectorizable(f"unsupported predicate {type(pred).__name__}")


def probe_scan(scan, database: Database) -> str:
    """"" when the scan vectorizes, else the first fallback reason."""
    if np is None:
        return "numpy unavailable"
    try:
        store = database.column_store(scan.table)
        ctx = _TableContext(database, scan.table)
        for column, _constant in scan.eq_lookups:
            if store.column(column) is None:
                return f"column {scan.table}.{column} not vectorizable"
        for pred in scan.filters:
            _probe_predicate(pred, ctx)
    except NotVectorizable as exc:
        return exc.reason
    return ""


def probe_join(step, database: Database) -> str:
    if np is None:
        return "numpy unavailable"
    if not step.is_hash_join:
        return ""
    for bound_ref, new_ref in step.keys:
        for table, column in (
            (step.scan.table, new_ref.column),
            (bound_ref.table, bound_ref.column),
        ):
            if database.column_store(table).column(column) is None:
                return f"column {table}.{column} not vectorizable"
    return ""


def probe_finish(query: Query, database: Database) -> str:
    """Static eligibility of the vectorized finish for EXPLAIN."""
    if np is None:
        return "numpy unavailable"
    ctx_tables = query.from_tables
    columns_by_table = {
        t: set(database.schema.table(t).column_names) for t in ctx_tables
    }

    class _Probe:
        tables = ctx_tables

        def __init__(self) -> None:
            self.columns_by_table = columns_by_table

        def vec(self, table: str, column: str) -> _Vec:
            data = database.column_store(table).column(column)
            if data is None:
                raise NotVectorizable(
                    f"column {table}.{column} not vectorizable"
                )
            return _Vec(data.values, data.nulls, data.kind, data.exact, data.float_safe)

    ctx = _Probe()
    has_aggregates = bool(query.aggregates()) or any(
        isinstance(i, Aggregate) for i in query.select
    )
    try:
        if query.group_by or has_aggregates:
            for ref in query.group_by:
                if not _ref_vec(ref, ctx).exact:
                    raise NotVectorizable("group key over inexact column")
            for node in _collect_aggregates(query):
                if isinstance(node.arg, ColumnRef):
                    vec = _ref_vec(node.arg, ctx)
                    if node.func in (AggFunc.SUM, AggFunc.AVG):
                        if vec.kind == "str":
                            raise NotVectorizable("SUM/AVG over text column")
                        if vec.kind == "float" and node.distinct:
                            raise NotVectorizable(
                                "SUM/AVG DISTINCT over floats is order-dependent"
                            )
            for item in query.select:
                if isinstance(item, Star):
                    raise NotVectorizable("SELECT * with GROUP BY")
            if query.having is not None:
                _validate_having(query.having)
        else:
            for item in query.select:
                if isinstance(item, ColumnRef):
                    if not _ref_vec(item, ctx).exact:
                        raise NotVectorizable("projection over inexact column")
                elif isinstance(item, Star):
                    for table in ctx_tables:
                        for column in database.schema.table(table).column_names:
                            if not ctx.vec(table, column).exact:
                                raise NotVectorizable(
                                    "projection over inexact column"
                                )
            for order_item in query.order_by:
                if not isinstance(order_item.expr, ColumnRef):
                    raise NotVectorizable("non-column ORDER BY in plain query")
                _ref_vec(order_item.expr, ctx)
    except NotVectorizable as exc:
        return exc.reason
    return ""
