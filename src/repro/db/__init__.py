"""In-memory DBMS substrate: storage, executor, planner, value index,
data generation."""

from repro.db.datagen import populate
from repro.db.executor import MAX_CROSS_PRODUCT, execute
from repro.db.index import ValueHit, ValueIndex
from repro.db.planner import (
    ExecutorSession,
    QueryPlan,
    build_plan,
    execute_planned,
    explain,
)
from repro.db.similarity import best_match, jaccard_tokens, jaccard_trigram
from repro.db.storage import ColumnData, ColumnStore, Database, Row
from repro.db.vectorized import COLUMNAR_MIN_ROWS, ColumnarTrace

__all__ = [
    "COLUMNAR_MIN_ROWS",
    "ColumnData",
    "ColumnStore",
    "ColumnarTrace",
    "Database",
    "ExecutorSession",
    "MAX_CROSS_PRODUCT",
    "QueryPlan",
    "Row",
    "ValueHit",
    "ValueIndex",
    "best_match",
    "build_plan",
    "execute",
    "execute_planned",
    "explain",
    "jaccard_tokens",
    "jaccard_trigram",
    "populate",
]
