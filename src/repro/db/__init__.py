"""In-memory DBMS substrate: storage, executor, value index, data generation."""

from repro.db.datagen import populate
from repro.db.executor import execute
from repro.db.index import ValueHit, ValueIndex
from repro.db.similarity import best_match, jaccard_tokens, jaccard_trigram
from repro.db.storage import Database, Row

__all__ = [
    "Database",
    "Row",
    "ValueHit",
    "ValueIndex",
    "best_match",
    "execute",
    "jaccard_tokens",
    "jaccard_trigram",
    "populate",
]
