"""In-memory row storage.

A :class:`Database` binds a :class:`~repro.schema.schema.Schema` to
concrete rows.  Rows are plain dicts keyed by column name; values are
``int``/``float``/``str`` or ``None``.  The executor, the value index
(constant anonymization), and the execution-based equivalence checker
all operate on this structure.

Reads come in two explicit flavours:

* :meth:`Database.scan` — the hot path.  Returns a zero-copy, read-only
  view (a lazily built tuple of the live row dicts); callers must not
  mutate the rows.  The executor and planner scan tables through this.
* :meth:`Database.rows` — the mutation-safe path.  Returns fresh
  shallow copies on every call, for callers that want to edit rows
  without touching storage.

The :attr:`Database.version` counter increments on every insert so
caching layers (hash indexes, result caches) can detect staleness.

Alongside the row view the database maintains a lazily built *columnar*
view: a :class:`ColumnStore` per table holding one numpy array per
column (plus a null mask), dtype-mapped from the column's
:class:`~repro.schema.column.ColumnType`.  The vectorized executor
(:mod:`repro.db.vectorized`) evaluates predicates, join probes, and
aggregates against these arrays; columns whose values do not round-trip
a clean dtype (mixed types, huge integers, strings with embedded NULs)
are marked non-vectorizable and the executor falls back to the row path
for any step touching them.  Column stores are invalidated through the
same version counter as every other cache: an insert drops the table's
store and the next columnar read rebuilds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as np
except ImportError:  # pragma: no cover - baked into the image
    np = None  # type: ignore[assignment]

from repro.errors import ExecutionError, SchemaError
from repro.schema.column import ColumnType
from repro.schema.schema import Schema

Row = dict[str, Any]

#: Integers with |v| <= 2**53 are exactly representable as float64, so
#: int-vs-float comparisons and joins can be vectorized in float space.
FLOAT_EXACT_INT = 2**53

#: Text columns whose longest value exceeds this many characters are not
#: materialized as fixed-width unicode arrays (memory blowup guard).
MAX_TEXT_WIDTH = 512


@dataclass
class ColumnData:
    """One column as a numpy array plus nullness metadata.

    ``values`` holds a fill value (0 / 0.0 / "") at null slots; ``nulls``
    is a boolean mask or ``None`` when the column has no NULLs.  ``kind``
    is the array's logical kind (``int`` / ``float`` / ``str``).
    ``exact`` means ``values.astype(object).tolist()`` reproduces the
    stored Python values bit-identically (type and value), so the array
    may be used to *materialize* output values, not just to filter.
    ``float_safe`` means every numeric value is exactly representable as
    a float64, so cross-kind int/float comparisons stay exact.
    """

    values: Any  # np.ndarray
    nulls: Any | None  # np.ndarray[bool] | None
    kind: str  # "int" | "float" | "str"
    exact: bool
    float_safe: bool

    @property
    def has_nulls(self) -> bool:
        return self.nulls is not None


_KIND_BY_CTYPE = {
    ColumnType.INTEGER: "int",
    ColumnType.FLOAT: "float",
    ColumnType.TEXT: "str",
    ColumnType.DATE: "str",
}


def _build_column(values: list[Any], ctype: ColumnType) -> "ColumnData | None":
    """Build one column's array, or ``None`` when not vectorizable."""
    if np is None:
        return None
    null_flags = [v is None for v in values]
    any_nulls = any(null_flags)
    nulls = np.array(null_flags, dtype=bool) if any_nulls else None
    present = [v for v in values if v is not None]

    if not present:  # empty or all-NULL: kind from the declared type
        kind = _KIND_BY_CTYPE[ctype]
        dtype = {"int": np.int64, "float": np.float64, "str": "U1"}[kind]
        return ColumnData(
            values=np.zeros(len(values), dtype=dtype),
            nulls=nulls,
            kind=kind,
            exact=True,
            float_safe=True,
        )

    # type() (not isinstance) so bools never pass as ints.
    if all(type(v) is int for v in present):
        try:
            arr = np.array(
                [0 if v is None else v for v in values], dtype=np.int64
            )
        except OverflowError:
            return None
        float_safe = all(-FLOAT_EXACT_INT <= v <= FLOAT_EXACT_INT for v in present)
        return ColumnData(arr, nulls, "int", exact=True, float_safe=float_safe)

    if all(type(v) in (int, float) for v in present):
        if any(v != v for v in present):  # NaN: ==/sort semantics diverge
            return None
        try:
            arr = np.array(
                [0.0 if v is None else v for v in values], dtype=np.float64
            )
        except OverflowError:
            return None
        all_float = all(type(v) is float for v in present)
        float_safe = all(
            type(v) is float or -FLOAT_EXACT_INT <= v <= FLOAT_EXACT_INT
            for v in present
        )
        return ColumnData(arr, nulls, "float", exact=all_float, float_safe=float_safe)

    if all(type(v) is str for v in present):
        if any("\x00" in v for v in present):  # U-dtype drops trailing NULs
            return None
        if max(len(v) for v in present) > MAX_TEXT_WIDTH:
            return None
        arr = np.array(["" if v is None else v for v in values])
        return ColumnData(arr, nulls, "str", exact=True, float_safe=False)

    return None  # mixed / unsupported value types: row path only


class ColumnStore:
    """Columnar snapshot of one table at one :attr:`Database.version`.

    Arrays are built lazily per column on first access and cached for
    the life of the store; the owning :class:`Database` drops the store
    whenever the table changes, so a store never serves stale data.
    """

    def __init__(self, database: "Database", table_name: str) -> None:
        self.table = table_name
        self.version = database.version
        self._rows = database.scan(table_name)
        self.length = len(self._rows)
        self._ctypes = {
            c.name: c.ctype for c in database.schema.table(table_name).columns
        }
        self._columns: dict[str, ColumnData | None] = {}
        self._non_null: dict[str, list[Any]] = {}
        self._codes: dict[str, "tuple[Any, int, Any] | None"] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnStore({self.table!r}, rows={self.length})"

    def column(self, name: str) -> ColumnData | None:
        """The column's array bundle, or ``None`` when not vectorizable."""
        if name not in self._columns:
            if name not in self._ctypes:
                raise SchemaError(
                    f"table {self.table!r} has no column {name!r}"
                )
            self._columns[name] = _build_column(
                [row[name] for row in self._rows], self._ctypes[name]
            )
        return self._columns[name]

    def factorize(self, name: str) -> "tuple[Any, int, Any] | None":
        """Dictionary codes for one column, or ``None`` if not vectorizable.

        Returns ``(codes, cardinality, dictionary)``: an int64 code array
        over storage order where equal values share a code, the sorted
        array of distinct non-NULL values (``dictionary[c]`` is code
        ``c``'s value), and the cardinality — ``len(dictionary)`` plus one
        when NULLs are present, which take the dedicated top code.  Code
        *values* carry no meaning beyond equality — the executor's
        group-by and DISTINCT kernels order groups by first appearance,
        never by code — and equi-joins merge two columns' dictionaries
        into a shared code space instead of re-uniquing full columns.
        Cached for the life of the store, so repeated queries pay the
        ``np.unique`` sort once per table version instead of per query.
        """
        if name not in self._codes:
            data = self.column(name)
            if data is None:
                self._codes[name] = None
            elif self.length == 0:
                self._codes[name] = (
                    np.zeros(0, dtype=np.int64), 1, data.values[:0]
                )
            else:
                uniq, inverse = np.unique(data.values, return_inverse=True)
                codes = inverse.astype(np.int64).reshape(self.length)
                card = int(codes.max()) + 1
                if data.nulls is not None:
                    codes = np.where(data.nulls, card, codes)
                    card += 1
                self._codes[name] = (codes, card, uniq)
        return self._codes[name]

    def non_null_values(self, name: str) -> list[Any]:
        """Non-null values in insertion order (cached; do not mutate)."""
        if name not in self._non_null:
            if name not in self._ctypes:
                raise SchemaError(
                    f"table {self.table!r} has no column {name!r}"
                )
            self._non_null[name] = [
                row[name] for row in self._rows if row[name] is not None
            ]
        return self._non_null[name]


class Database:
    """A schema plus in-memory rows for each of its tables."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._rows: dict[str, list[Row]] = {t.name: [] for t in schema.tables}
        self._views: dict[str, tuple[Row, ...]] = {}
        self._column_stores: dict[str, ColumnStore] = {}
        self._version = 0

    def __repr__(self) -> str:
        sizes = {name: len(rows) for name, rows in self._rows.items()}
        return f"Database({self.schema.name!r}, rows={sizes})"

    @property
    def version(self) -> int:
        """Monotone counter bumped on every insert (cache invalidation)."""
        return self._version

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        """Insert one row; validates column names and value types."""
        table = self.schema.table(table_name)
        clean: Row = {}
        for column in table.columns:
            value = row.get(column.name)
            if value is not None:
                value = _coerce(value, column.ctype, table_name, column.name)
            clean[column.name] = value
        unknown = set(row) - set(table.column_names)
        if unknown:
            raise SchemaError(
                f"row for table {table_name!r} has unknown columns {sorted(unknown)}"
            )
        self._rows[table_name].append(clean)
        self._views.pop(table_name, None)
        self._column_stores.pop(table_name, None)
        self._version += 1

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, Any]]) -> None:
        """Insert many rows."""
        for row in rows:
            self.insert(table_name, row)

    def scan(self, table_name: str) -> Sequence[Row]:
        """Zero-copy, read-only view of a table's rows.

        The returned tuple aliases the live row dicts — callers must
        treat them as immutable.  The view is built once per table
        version and shared by every scan, so repeated scans allocate
        nothing (the per-row deep copies :meth:`rows` makes dominated
        the executor profile before this existed).
        """
        if table_name not in self._rows:
            raise SchemaError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        view = self._views.get(table_name)
        if view is None:
            view = tuple(self._rows[table_name])
            self._views[table_name] = view
        return view

    def rows(self, table_name: str) -> list[Row]:
        """All rows of a table as fresh shallow copies (safe to mutate).

        This is the explicit mutation-safe read; use :meth:`scan` for
        read-only access without the per-call allocation churn.
        """
        return [dict(row) for row in self.scan(table_name)]

    def row_count(self, table_name: str) -> int:
        if table_name not in self._rows:
            raise SchemaError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        return len(self._rows[table_name])

    def column_store(self, table_name: str) -> ColumnStore:
        """The table's columnar view, built lazily at the current version.

        Inserts drop the store (same invalidation as :meth:`scan`'s row
        views), so a cached store always reflects the live rows.
        """
        if table_name not in self._rows:
            raise SchemaError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        store = self._column_stores.get(table_name)
        if store is None:
            store = ColumnStore(self, table_name)
            self._column_stores[table_name] = store
        return store

    def column_values(self, table_name: str, column_name: str) -> list[Any]:
        """All non-null values of one column, in insertion order.

        Served from the column store's cached list when one is
        populated (the :class:`~repro.db.index.ValueIndex` and the
        similarity lookups hit this per column); otherwise built
        directly from the rows without forcing a store build.
        """
        self.schema.column(table_name, column_name)
        store = self._column_stores.get(table_name)
        if store is not None:
            return list(store.non_null_values(column_name))
        return [
            row[column_name]
            for row in self._rows[table_name]
            if row[column_name] is not None
        ]


def _coerce(value: Any, ctype: ColumnType, table: str, column: str) -> Any:
    """Coerce ``value`` to the column's logical type or raise."""
    try:
        if ctype is ColumnType.INTEGER:
            if isinstance(value, bool):
                raise TypeError
            return int(value)
        if ctype is ColumnType.FLOAT:
            return float(value)
        if ctype in (ColumnType.TEXT, ColumnType.DATE):
            if not isinstance(value, str):
                raise TypeError
            return value
    except (TypeError, ValueError):
        pass
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled column type {ctype}")
    raise ExecutionError(
        f"value {value!r} is not valid for {table}.{column} of type {ctype.value}"
    )
