"""In-memory row storage.

A :class:`Database` binds a :class:`~repro.schema.schema.Schema` to
concrete rows.  Rows are plain dicts keyed by column name; values are
``int``/``float``/``str`` or ``None``.  The executor, the value index
(constant anonymization), and the execution-based equivalence checker
all operate on this structure.

Reads come in two explicit flavours:

* :meth:`Database.scan` — the hot path.  Returns a zero-copy, read-only
  view (a lazily built tuple of the live row dicts); callers must not
  mutate the rows.  The executor and planner scan tables through this.
* :meth:`Database.rows` — the mutation-safe path.  Returns fresh
  shallow copies on every call, for callers that want to edit rows
  without touching storage.

The :attr:`Database.version` counter increments on every insert so
caching layers (hash indexes, result caches) can detect staleness.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ExecutionError, SchemaError
from repro.schema.column import ColumnType
from repro.schema.schema import Schema

Row = dict[str, Any]


class Database:
    """A schema plus in-memory rows for each of its tables."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._rows: dict[str, list[Row]] = {t.name: [] for t in schema.tables}
        self._views: dict[str, tuple[Row, ...]] = {}
        self._version = 0

    def __repr__(self) -> str:
        sizes = {name: len(rows) for name, rows in self._rows.items()}
        return f"Database({self.schema.name!r}, rows={sizes})"

    @property
    def version(self) -> int:
        """Monotone counter bumped on every insert (cache invalidation)."""
        return self._version

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        """Insert one row; validates column names and value types."""
        table = self.schema.table(table_name)
        clean: Row = {}
        for column in table.columns:
            value = row.get(column.name)
            if value is not None:
                value = _coerce(value, column.ctype, table_name, column.name)
            clean[column.name] = value
        unknown = set(row) - set(table.column_names)
        if unknown:
            raise SchemaError(
                f"row for table {table_name!r} has unknown columns {sorted(unknown)}"
            )
        self._rows[table_name].append(clean)
        self._views.pop(table_name, None)
        self._version += 1

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, Any]]) -> None:
        """Insert many rows."""
        for row in rows:
            self.insert(table_name, row)

    def scan(self, table_name: str) -> Sequence[Row]:
        """Zero-copy, read-only view of a table's rows.

        The returned tuple aliases the live row dicts — callers must
        treat them as immutable.  The view is built once per table
        version and shared by every scan, so repeated scans allocate
        nothing (the per-row deep copies :meth:`rows` makes dominated
        the executor profile before this existed).
        """
        if table_name not in self._rows:
            raise SchemaError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        view = self._views.get(table_name)
        if view is None:
            view = tuple(self._rows[table_name])
            self._views[table_name] = view
        return view

    def rows(self, table_name: str) -> list[Row]:
        """All rows of a table as fresh shallow copies (safe to mutate).

        This is the explicit mutation-safe read; use :meth:`scan` for
        read-only access without the per-call allocation churn.
        """
        return [dict(row) for row in self.scan(table_name)]

    def row_count(self, table_name: str) -> int:
        if table_name not in self._rows:
            raise SchemaError(
                f"database {self.schema.name!r} has no table {table_name!r}"
            )
        return len(self._rows[table_name])

    def column_values(self, table_name: str, column_name: str) -> list[Any]:
        """All non-null values of one column, in insertion order."""
        self.schema.column(table_name, column_name)
        return [
            row[column_name]
            for row in self._rows[table_name]
            if row[column_name] is not None
        ]


def _coerce(value: Any, ctype: ColumnType, table: str, column: str) -> Any:
    """Coerce ``value`` to the column's logical type or raise."""
    try:
        if ctype is ColumnType.INTEGER:
            if isinstance(value, bool):
                raise TypeError
            return int(value)
        if ctype is ColumnType.FLOAT:
            return float(value)
        if ctype in (ColumnType.TEXT, ColumnType.DATE):
            if not isinstance(value, str):
                raise TypeError
            return value
    except (TypeError, ValueError):
        pass
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled column type {ctype}")
    raise ExecutionError(
        f"value {value!r} is not valid for {table}.{column} of type {ctype.value}"
    )
