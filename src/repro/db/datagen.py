"""Synthetic sample-data population for any catalog schema.

The paper's pipeline needs a database ``D`` that "describes the schema
and contains some sample data" (§3.3): sample values feed the value
index used for constant anonymization, the execution-based equivalence
checker, and the optimizer's test workloads.  Real deployments hand
DBPal their production tables; here we synthesize plausible values per
column using name/domain heuristics, deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.db.storage import Database
from repro.schema.column import Column, ColumnType
from repro.schema.schema import Schema
from repro.schema.table import Table

# ----------------------------------------------------------------------
# Value pools
# ----------------------------------------------------------------------

FIRST_NAMES = (
    "alice bob carol david emma frank grace henry irene jack karen liam "
    "maria nathan olivia peter quinn rachel samuel tina ursula victor "
    "wendy xavier yvonne zach noah mia ethan ava"
).split()

LAST_NAMES = (
    "smith johnson williams brown jones garcia miller davis rodriguez "
    "martinez hernandez lopez gonzalez wilson anderson thomas taylor "
    "moore jackson martin lee perez thompson white harris sanchez clark"
).split()

CITIES = (
    "springfield riverton fairview lakeside georgetown madison clinton "
    "arlington ashland auburn bristol burlington camden chester clayton "
    "dayton dover florence franklin greenville hamilton hudson jackson "
    "kingston lebanon lexington manchester marion milford newport oxford"
).split()

STATES = (
    "alabama alaska arizona arkansas california colorado connecticut "
    "delaware florida georgia hawaii idaho illinois indiana iowa kansas "
    "kentucky louisiana maine maryland massachusetts michigan minnesota "
    "mississippi missouri montana nebraska nevada ohio oregon texas utah "
    "vermont virginia washington wisconsin wyoming"
).split()

DISEASES = (
    "influenza pneumonia diabetes asthma hypertension bronchitis "
    "arthritis migraine anemia appendicitis dermatitis gastritis "
    "hepatitis measles mumps sinusitis tonsillitis fracture concussion "
    "allergy"
).split()

CUISINES = "italian mexican chinese indian thai french japanese greek".split()

CATEGORIES = (
    "electronics clothing furniture toys books groceries sports garden "
    "jewelry automotive"
).split()

COUNTRIES = (
    "usa canada mexico brazil france germany italy spain japan china "
    "india australia egypt kenya norway sweden poland greece"
).split()

GENDERS = ("male", "female")

TITLES_ADJ = "modern ancient silent hidden broken golden distant endless".split()
TITLES_NOUN = "river mountain garden journey empire shadow harbor season".split()

SUBJECTS = (
    "algebra biology chemistry physics history literature economics "
    "statistics philosophy programming databases networks"
).split()

DEPARTMENTS = (
    "engineering marketing finance operations research sales support "
    "design legal logistics"
).split()

BUILDINGS = "north_hall south_hall east_wing west_wing main_tower annex".split()

JOB_TITLES = (
    "engineer analyst manager director technician consultant clerk "
    "specialist coordinator administrator"
).split()

AIRPORT_CODES = (
    "jfk lax ord atl dfw sfo sea bos mia den phx iah msp dtw phl lga"
).split()

AIRCRAFT_MODELS = (
    "a320 a330 a350 b737 b747 b757 b767 b777 b787 e190 crj900 md80"
).split()

CAR_MODELS = (
    "falcon comet ranger summit breeze aurora pioneer vista horizon nova"
).split()

HANDLES = (
    "stargazer codewiz pixelpanda nightowl sunbeam quickfox bluejay "
    "thunder maplewood riverstone"
).split()

#: Numeric ranges per domain hint: (low, high).
DOMAIN_RANGES = {
    "age": (1, 99),
    "height": (100, 6200),
    "length": (50, 3800),
    "duration": (1, 60),
    "size": (10, 900),
    "area": (1000, 600000),
    "population": (5000, 9000000),
    "price": (5, 2000),
    "salary": (30000, 180000),
    "weight": (1, 500),
    "speed": (60, 700),
    "date": (1950, 2020),
    "count": (0, 500),
}

_GENERIC_RANGE = (0, 1000)


def populate(schema: Schema, rows_per_table: int = 40, seed: int = 7) -> Database:
    """Create a :class:`Database` for ``schema`` filled with sample rows.

    Tables are populated in FK dependency order so foreign keys always
    reference existing parent values.  The same ``(schema, seed)``
    always produces identical data.
    """
    rng = np.random.default_rng(seed)
    database = Database(schema)
    generated: dict[tuple[str, str], list] = {}

    for table in _dependency_order(schema):
        fk_sources = {
            fk.column: (fk.ref_table, fk.ref_column)
            for fk in schema.foreign_keys
            if fk.table == table.name
        }
        rows = []
        for row_index in range(rows_per_table):
            row = {}
            for column in table.columns:
                if column.name in fk_sources:
                    parent = generated[fk_sources[column.name]]
                    row[column.name] = parent[int(rng.integers(len(parent)))]
                else:
                    row[column.name] = _value_for(column, table, row_index, rng)
            rows.append(row)
        database.insert_many(table.name, rows)
        for column in table.columns:
            generated[(table.name, column.name)] = [r[column.name] for r in rows]
    return database


def _dependency_order(schema: Schema) -> list[Table]:
    """Tables sorted so FK parents precede children (cycles broken by order)."""
    children = {fk.table for fk in schema.foreign_keys}
    ordered = [t for t in schema.tables if t.name not in children]
    remaining = [t for t in schema.tables if t.name in children]
    done = {t.name for t in ordered}
    while remaining:
        progressed = False
        for table in list(remaining):
            parents = {
                fk.ref_table for fk in schema.foreign_keys if fk.table == table.name
            }
            if parents <= done | {table.name}:
                ordered.append(table)
                done.add(table.name)
                remaining.remove(table)
                progressed = True
        if not progressed:  # FK cycle: append the rest in schema order
            ordered.extend(remaining)
            break
    return ordered


def _value_for(column: Column, table: Table, row_index: int, rng: np.random.Generator):
    """Generate one value for ``column`` using name/domain heuristics."""
    if column.primary_key and column.ctype is ColumnType.INTEGER:
        return row_index + 1
    if column.ctype.is_numeric:
        low, high = DOMAIN_RANGES.get(column.domain, _GENERIC_RANGE)
        if column.ctype is ColumnType.FLOAT:
            value = float(np.round(rng.uniform(low, high), 2))
            if column.name in ("gpa", "rating", "stars"):
                value = float(np.round(rng.uniform(1.0, 5.0), 2))
            return value
        return int(rng.integers(low, high + 1))
    if column.ctype is ColumnType.DATE:
        year = int(rng.integers(1995, 2021))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        return f"{year:04d}-{month:02d}-{day:02d}"
    return _text_value(column, table, row_index, rng)


def _pick(pool, rng: np.random.Generator) -> str:
    return pool[int(rng.integers(len(pool)))]


def _text_value(column: Column, table: Table, row_index: int, rng) -> str:
    name = column.name
    if name in ("state_name", "state"):
        return _pick(STATES, rng)
    if "city" in name or name in ("location", "capital"):
        return _pick(CITIES, rng)
    if name == "gender":
        return _pick(GENDERS, rng)
    if name == "diagnosis":
        return _pick(DISEASES, rng)
    if name == "cuisine":
        return _pick(CUISINES, rng)
    if name == "category":
        return _pick(CATEGORIES, rng)
    if name in ("country",):
        return _pick(COUNTRIES, rng)
    if name in ("dept_name", "department"):
        return _pick(DEPARTMENTS, rng)
    if name == "building":
        return _pick(BUILDINGS, rng)
    if name == "username":
        return f"{_pick(HANDLES, rng)}{row_index}"
    if name in ("airport_code", "origin", "destination"):
        return _pick(AIRPORT_CODES, rng)
    if name == "aircraft_model":
        return _pick(AIRCRAFT_MODELS, rng)
    if name == "model":
        return _pick(CAR_MODELS, rng)
    if name == "course_id":
        return f"{_pick(SUBJECTS, rng)[:4]}{100 + row_index}"
    if name == "title" and table.name in ("employee",):
        return _pick(JOB_TITLES, rng)
    if name == "title" and table.name in ("course",):
        return f"introduction to {_pick(SUBJECTS, rng)}"
    if name == "title":
        return f"the {_pick(TITLES_ADJ, rng)} {_pick(TITLES_NOUN, rng)}"
    if "name" in name or name in ("member", "reviewer"):
        # Covers person names and entity names alike.
        if table.name in ("mountain", "river"):
            return f"{_pick(TITLES_ADJ, rng)} {table.name} {row_index}"
        if name in ("maker_name", "airport_name", "product_name"):
            return f"{_pick(TITLES_ADJ, rng)} {_pick(TITLES_NOUN, rng)}"
        return f"{_pick(FIRST_NAMES, rng)} {_pick(LAST_NAMES, rng)}"
    return f"{name}_{row_index}"
