"""Aggregate function implementations for the executor."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ExecutionError
from repro.sql.ast import AggFunc


def evaluate_aggregate(func: AggFunc, values: Sequence[Any], distinct: bool = False) -> Any:
    """Apply ``func`` to ``values`` (nulls already removed, except COUNT(*)).

    SQL semantics: SUM/AVG/MIN/MAX of an empty input are NULL (None);
    COUNT of an empty input is 0.
    """
    if distinct:
        values = list(dict.fromkeys(values))
    if func is AggFunc.COUNT:
        return len(values)
    if not values:
        return None
    if func in (AggFunc.SUM, AggFunc.AVG):
        if any(isinstance(v, str) for v in values):
            raise ExecutionError(f"{func.value} over non-numeric values")
        if func is AggFunc.SUM:
            return sum(values)
        return sum(values) / len(values)
    if func is AggFunc.MIN:
        return min(values)
    if func is AggFunc.MAX:
        return max(values)
    raise ExecutionError(f"unsupported aggregate function {func}")
