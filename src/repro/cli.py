"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schemas``   — list the built-in schemas;
* ``generate``  — synthesize a training corpus for a schema and write
  it to JSONL/TSV.  Generation is checkpointed: a shard-progress
  manifest is committed alongside the output, ``--resume`` continues an
  interrupted run bit-identically, ``--shard-timeout`` and
  ``--max-attempts`` bound how long a misbehaving shard may stall the
  run before it is quarantined.  Exit status: 0 complete, 3 complete
  with quarantined shards, 130 interrupted (resumable);
* ``train``     — synthesize + train a model, saving a checkpoint;
* ``translate`` — load a checkpoint and answer questions (one-shot or
  interactive REPL) against a populated sample database;
* ``serve``     — the same, through the concurrent serving layer
  (micro-batching, translation cache, circuit breaker) with an
  optional metrics snapshot (``--stats`` / ``--stats-json``);
* ``benchmark`` — evaluate a checkpoint on the Patients benchmark;
* ``lint``      — run the static analyzer (:mod:`repro.analysis`) over
  schemas and seed templates (default), or over a generated corpus
  file (``--corpus PATH``; ``--introspect DB`` resolves the corpus
  against a live sqlite database's schema).  Exit status: 0 clean, 4
  findings (errors; with ``--strict`` warnings count too), 1 internal
  error;
* ``repair``    — run one SQL candidate through the serving tier's
  execute–verify–repair loop (:mod:`repro.serving.repair`) against a
  populated sample database, printing the repaired SQL and the full
  per-step trace.  Exit status: 0 clean or repaired, 4 findings remain
  (abandoned / budget exhausted), 1 internal error;
* ``introspect`` — read a sqlite database file into a schema
  (:mod:`repro.adapters`), printing tables/columns/keys and any
  ``L5xx`` introspection diagnostics;
* ``db explain`` — show the planner's execution plan for a SQL query
  against a populated sample database (``--execute`` also runs it and
  prints per-stage timings; ``--backend sqlite`` compiles for and runs
  on the sqlite adapter instead).

``generate``/``train`` normally name a built-in schema; ``generate
--introspect path.db`` builds the schema from a live database instead,
which is the paper's pluggability story end to end: point the pipeline
at a database, get a corpus.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys

from repro.core import GenerationConfig, TrainingPipeline
from repro.db import populate
from repro.errors import GracefulExit, ReproError
from repro.schema import SCHEMA_FACTORIES, load_schema

#: Exit statuses (``generate`` documents these as its contract).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_QUARANTINE = 3
EXIT_LINT_FINDINGS = 4
EXIT_INTERRUPTED = 130


@contextlib.contextmanager
def _graceful_sigterm():
    """Convert SIGTERM into :class:`GracefulExit` for orderly shutdown.

    Lets long-running commands flush checkpoints and print a one-line
    "resumable" message instead of dying with a traceback (SIGINT
    already arrives as ``KeyboardInterrupt``).
    """

    def _handler(signum, frame):  # noqa: ARG001 - signal signature
        raise GracefulExit("terminated")

    previous = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("generation parameters (Table 1)")
    for name, default in GenerationConfig().to_dict().items():
        kind = type(default)
        group.add_argument(f"--{name.replace('_', '-')}", type=kind, default=default)


def _config_from(args: argparse.Namespace) -> GenerationConfig:
    fields = GenerationConfig().to_dict()
    return GenerationConfig(**{name: getattr(args, name) for name in fields})


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.serving import ServingConfig

    group = parser.add_argument_group("serving parameters")
    for name, default in ServingConfig().to_dict().items():
        flag = f"--{name.replace('_', '-')}"
        if isinstance(default, bool):
            group.add_argument(
                flag,
                type=lambda text: text.lower() in ("1", "true", "yes", "on"),
                default=default,
                metavar="BOOL",
            )
        else:
            group.add_argument(flag, type=type(default), default=default)


def _serving_config_from(args: argparse.Namespace):
    from repro.serving import ServingConfig

    fields = ServingConfig().to_dict()
    return ServingConfig(**{name: getattr(args, name) for name in fields})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DBPal NL2SQL training pipeline"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemas", help="list built-in schemas")

    generate = sub.add_parser("generate", help="synthesize a training corpus")
    generate.add_argument(
        "schema",
        nargs="?",
        default=None,
        help="schema name (see `schemas`); omit with --introspect",
    )
    generate.add_argument(
        "--introspect",
        metavar="DB",
        default=None,
        help="build the schema from a live sqlite database file "
        "instead of a built-in schema",
    )
    generate.add_argument("--output", required=True, help="output path")
    generate.add_argument(
        "--format", choices=("jsonl", "tsv"), default="jsonl"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--pos-aware-dropout", action="store_true")
    generate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="synthesis worker processes (0 = in-process; output is "
        "identical for every worker count)",
    )
    generate.add_argument(
        "--perf",
        action="store_true",
        help="print per-stage wall-clock timings and pairs/sec",
    )
    fault = generate.add_argument_group("fault tolerance")
    fault.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run from its manifest (skips "
        "completed shards; output is bit-identical to an uninterrupted run)",
    )
    fault.add_argument(
        "--shard-timeout",
        type=float,
        default=0.0,
        help="wall-clock budget per shard attempt in seconds "
        "(0 = unlimited; enforced with --workers >= 1)",
    )
    fault.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per shard before it is quarantined",
    )
    fault.add_argument(
        "--flush-every",
        type=int,
        default=0,
        help="commit the manifest every N shards (0 = adaptive: commit "
        "at most every ~0.5s; uncommitted shards regenerate on resume)",
    )
    fault.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable the manifest/resume machinery (plain streaming write)",
    )
    _add_config_arguments(generate)

    train = sub.add_parser("train", help="synthesize data and train a model")
    train.add_argument("schema")
    train.add_argument("--output", required=True, help="checkpoint path (.npz)")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--embed-dim", type=int, default=48)
    train.add_argument("--hidden-dim", type=int, default=96)
    train.add_argument("--corpus-cap", type=int, default=6000)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--model",
        choices=("seq2seq", "syntax"),
        default="syntax",
        help="plain seq2seq or grammar-constrained",
    )
    _add_config_arguments(train)

    translate = sub.add_parser("translate", help="answer NL questions")
    translate.add_argument("schema")
    translate.add_argument("--checkpoint", required=True)
    translate.add_argument(
        "--ask", default="", help="one-shot question (omit for a REPL)"
    )
    translate.add_argument("--rows", type=int, default=10, help="max rows to print")
    translate.add_argument("--seed", type=int, default=7, help="sample-data seed")

    serve = sub.add_parser(
        "serve", help="answer NL questions through the concurrent serving layer"
    )
    serve.add_argument("schema")
    serve.add_argument("--checkpoint", required=True)
    serve.add_argument(
        "--rows", type=int, default=0, help="also execute, printing up to N rows"
    )
    serve.add_argument("--seed", type=int, default=7, help="sample-data seed")
    serve.add_argument(
        "--stats", action="store_true", help="print a metrics snapshot on exit"
    )
    serve.add_argument(
        "--stats-json", default="", help="write the machine-readable snapshot here"
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="serve from N shared-nothing shard processes behind a "
        "consistent-hash-routing front door (0 = single process; "
        "scale-out needs as many cores)",
    )
    serve.add_argument(
        "--reload",
        default="",
        metavar="CKPT",
        help="after startup, hot-swap this checkpoint into the running "
        "service (with --replicas: rolling, shard-by-shard, zero "
        "dropped requests)",
    )
    serve.add_argument(
        "--repair-budget",
        type=int,
        default=-1,
        metavar="N",
        help="shorthand for --repair-attempts N: repair/re-lint cycles "
        "allowed per answer (0 disables the execute-verify-repair loop)",
    )
    _add_serving_arguments(serve)

    bench = sub.add_parser("benchmark", help="evaluate on the Patients benchmark")
    bench.add_argument("--checkpoint", required=True)
    bench.add_argument("--category", default="", help="restrict to one category")

    lint = sub.add_parser(
        "lint",
        help="statically analyze schemas, seed templates, or a corpus",
    )
    lint.add_argument(
        "--schema",
        default="",
        help="restrict to one built-in schema (default: all)",
    )
    lint.add_argument(
        "--templates",
        action="store_true",
        help="lint the seed templates only (skip the schema pass)",
    )
    lint.add_argument(
        "--corpus",
        default="",
        metavar="PATH",
        help="audit a generated JSONL/TSV corpus file instead",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="warnings also count as findings (exit 4)",
    )
    lint.add_argument(
        "--introspect",
        metavar="DB",
        default="",
        help="resolve --corpus pairs against a sqlite database's "
        "introspected schema",
    )

    repair = sub.add_parser(
        "repair",
        help="run one SQL candidate through the execute-verify-repair loop",
    )
    repair.add_argument("schema", help="schema name (see `schemas`)")
    repair.add_argument("sql", help="candidate SQL text to verify and repair")
    repair.add_argument(
        "--rows-per-table", type=int, default=30, help="sample-data size"
    )
    repair.add_argument("--seed", type=int, default=7, help="sample-data seed")
    repair.add_argument(
        "--attempts", type=int, default=2, help="repair/re-lint cycles allowed"
    )
    repair.add_argument(
        "--deadline",
        type=float,
        default=0.25,
        help="wall-clock budget in seconds for the whole run",
    )
    repair.add_argument(
        "--json", action="store_true", help="machine-readable trace"
    )

    canonical = sub.add_parser(
        "canonical",
        help="print a query's canonical form/key, or decide two-query "
        "equivalence (EQUIVALENT | DISTINCT | UNKNOWN)",
    )
    canonical.add_argument("schema", help="schema name (see `schemas`)")
    canonical.add_argument("sql", help="SQL text (@JOIN form accepted)")
    canonical.add_argument(
        "sql2",
        nargs="?",
        default=None,
        help="second SQL text; when given, run the equivalence oracle",
    )
    canonical.add_argument(
        "--rows-per-table",
        type=int,
        default=25,
        help="differential probe database size",
    )
    canonical.add_argument(
        "--seeds",
        default="0,17",
        help="comma-separated probe database seeds",
    )
    canonical.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    introspect = sub.add_parser(
        "introspect",
        help="read a sqlite database file into a schema",
    )
    introspect.add_argument("database", help="path to a sqlite database file")
    introspect.add_argument(
        "--name", default="", help="schema name (default: from file name)"
    )
    introspect.add_argument(
        "--json", action="store_true", help="machine-readable schema dump"
    )

    db = sub.add_parser("db", help="database/executor utilities")
    db_sub = db.add_subparsers(dest="db_command", required=True)
    db_explain = db_sub.add_parser(
        "explain", help="show the planner's execution plan for a SQL query"
    )
    db_explain.add_argument("schema", help="schema name (see `schemas`)")
    db_explain.add_argument("sql", help="SQL text (@JOIN form accepted)")
    db_explain.add_argument(
        "--rows-per-table", type=int, default=30, help="sample-data size"
    )
    db_explain.add_argument("--seed", type=int, default=7, help="sample-data seed")
    db_explain.add_argument(
        "--execute",
        action="store_true",
        help="also run the query, printing rows and per-stage timings",
    )
    db_explain.add_argument(
        "--columnar",
        choices=("auto", "on", "off"),
        default="auto",
        help="vectorized execution arm: auto (row-count threshold), "
        "on (force), off (row path only)",
    )
    db_explain.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="execution backend: memory (planned reference executor) "
        "or sqlite (compiled dialect SQL on the sqlite3 adapter)",
    )
    return parser


def cmd_schemas(_args) -> int:
    for name in sorted(SCHEMA_FACTORIES):
        schema = load_schema(name)
        tables = ", ".join(schema.table_names)
        print(f"{name:12s} tables: {tables}")
    return 0


def _introspected_schema(path: str, name: str = ""):
    """Introspect a sqlite database file, printing any warnings.

    Error-severity findings raise ``IntrospectionError`` inside the
    adapter; ``main`` maps that to exit 1 with the diagnostics in the
    message.
    """
    from repro.adapters import SqliteAdapter
    from repro.errors import IntrospectionError

    adapter = SqliteAdapter(path, schema_name=name or None)
    try:
        try:
            schema = adapter.introspect()
        except IntrospectionError as exc:
            for finding in exc.diagnostics:
                print(
                    f"introspect: [{finding.code}] {finding.message}",
                    file=sys.stderr,
                )
            raise
        report = adapter.last_introspection
    finally:
        adapter.close()
    for finding in report.diagnostics:
        print(
            f"introspect: [{finding.code}] {finding.message}",
            file=sys.stderr,
        )
    return schema


def cmd_generate(args) -> int:
    import time
    from collections import Counter
    from itertools import chain

    from repro.core import ResilienceConfig, manifest_path_for
    from repro.core.checkpoint import STATUS_COMPLETE
    from repro.core.corpus_io import save_jsonl, save_tsv
    from repro.perf import PerfRecorder

    if bool(args.schema) == bool(args.introspect):
        print(
            "error: give exactly one schema source — a built-in schema "
            "name or --introspect DB",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if args.introspect:
        schema = _introspected_schema(args.introspect)
        print(
            f"introspected schema {schema.name!r} "
            f"({len(schema.table_names)} table(s)) from {args.introspect}"
        )
    else:
        schema = load_schema(args.schema)
    pipeline = TrainingPipeline(
        schema,
        _config_from(args),
        seed=args.seed,
        pos_aware_dropout=args.pos_aware_dropout,
        workers=args.workers,
    )
    recorder = PerfRecorder() if args.perf else None
    families: Counter = Counter()
    augmentations: Counter = Counter()

    def tally_batch(batch) -> None:
        # Corpus batches stream straight to disk; only counters stay.
        for pair in batch:
            families[pair.family.value] += 1
            augmentations[pair.augmentation] += 1

    start = time.perf_counter()
    if args.no_checkpoint:
        if args.resume:
            print("error: --resume requires checkpointing", file=sys.stderr)
            return EXIT_ERROR

        def tally(batches):
            for batch in batches:
                tally_batch(batch)
                yield batch

        stream = chain.from_iterable(
            tally(pipeline.generate_stream(recorder=recorder))
        )
        writer = save_jsonl if args.format == "jsonl" else save_tsv
        written = writer(stream, args.output)
        report = None
        status = STATUS_COMPLETE
    else:
        resilience = ResilienceConfig(
            shard_timeout=args.shard_timeout, max_attempts=args.max_attempts
        )
        try:
            with _graceful_sigterm():
                report = pipeline.generate_checkpointed(
                    args.output,
                    fmt=args.format,
                    resume=args.resume,
                    resilience=resilience,
                    recorder=recorder,
                    on_batch=tally_batch,
                    flush_every=args.flush_every,
                )
        except (KeyboardInterrupt, GracefulExit):
            manifest = manifest_path_for(args.output)
            print(
                f"interrupted — resumable from checkpoint {manifest} "
                f"(rerun with --resume)",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        written = report.new_pairs
        status = report.status

    elapsed = time.perf_counter() - start
    print(f"wrote {written} pairs to {args.output}")
    if report is not None and report.resumed_shards:
        print(
            f"resumed from checkpoint: {report.resumed_shards} shard(s) "
            f"skipped, {report.pairs_written} pairs total"
        )
    print(f"families: {dict(families)}")
    print(f"augmentations: {dict(augmentations)}")
    if report is not None and report.quarantined:
        print(
            f"quarantined {len(report.quarantined)} shard(s) "
            f"({status}):", file=sys.stderr
        )
        for failure in report.quarantined:
            print(
                f"  [{failure.code}] schema={failure.schema_name} "
                f"template={failure.template_id} "
                f"seed=(entropy={failure.seed_entropy}, "
                f"spawn_key={list(failure.seed_spawn_key)}) "
                f"after {failure.attempts} attempt(s): {failure.message}",
                file=sys.stderr,
            )
    if recorder is not None:
        print(recorder.format_table(title="synthesis perf"))
        rate = written / elapsed if elapsed > 0 else 0.0
        print(f"wall-clock: {elapsed:.3f}s ({rate:.1f} pairs/sec, "
              f"workers={args.workers})")
    return EXIT_OK if status == STATUS_COMPLETE else EXIT_QUARANTINE


def cmd_train(args) -> int:
    from repro.neural import Seq2SeqModel, SyntaxAwareModel, save_model

    schema = load_schema(args.schema)
    pipeline = TrainingPipeline(schema, _config_from(args), seed=args.seed)
    corpus = pipeline.generate().subsample(args.corpus_cap, seed=args.seed)
    model_cls = Seq2SeqModel if args.model == "seq2seq" else SyntaxAwareModel
    model = model_cls(
        embed_dim=args.embed_dim,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        seed=args.seed,
    )
    print(f"training {args.model} model on {len(corpus)} pairs ...")
    model.fit(corpus.pairs)
    save_model(model, args.output)
    print(f"saved checkpoint to {args.output} "
          f"(final loss/token {model.loss_history[-1]:.4f})")
    return 0


def cmd_translate(args) -> int:
    from repro.neural import load_model
    from repro.runtime import DBPal

    schema = load_schema(args.schema)
    database = populate(schema, rows_per_table=30, seed=args.seed)
    nlidb = DBPal(database, load_model(args.checkpoint))

    def answer(question: str) -> None:
        result = nlidb.translate(question)
        print(f"SQL: {result.sql}")
        if result.ok:
            try:
                for row in nlidb.query(question, max_rows=args.rows):
                    print(" ", row)
            except ReproError as exc:
                print(f"  (execution failed: {exc})")

    if args.ask:
        answer(args.ask)
        return 0
    print("DBPal REPL — empty line to exit")
    while True:
        try:
            question = input("nl> ").strip()
        except EOFError:
            break
        if not question:
            break
        answer(question)
    return 0


def _build_serving_nlidb(schema_name: str, checkpoint: str, seed: int):
    """Build one complete serving replica (module-level: shard factory).

    Runs inside each shard process under ``repro serve --replicas N``,
    so every shard gets its own database, model, and pre/post
    processors — shared-nothing by construction.
    """
    from repro.neural import load_model
    from repro.runtime import DBPal

    schema = load_schema(schema_name)
    database = populate(schema, rows_per_table=30, seed=seed)
    return DBPal(database, load_model(checkpoint))


def _load_checkpoint_model(path: str):
    """Module-level checkpoint loader (rolling-reload runs it per shard)."""
    from repro.neural import load_model

    return load_model(path)


def _print_stage_table(stages: dict) -> None:
    """Per-stage timings with busy and wall clearly told apart."""
    if not stages:
        return
    print("  per-stage timings (busy = summed across threads; "
          "wall = first entry to last exit):")
    width = max(len(name) for name in stages)
    for name, stats in stages.items():
        busy = stats.get("busy_seconds", stats.get("seconds", 0.0))
        print(
            f"    {name:<{width}}  busy {busy:>8.3f}s"
            f"  wall {stats.get('wall_seconds', 0.0):>8.3f}s"
            f"  x{stats.get('calls', 0)}"
        )


def _print_serve_stats(service, stats: dict, sharded: bool) -> None:
    if sharded:
        cluster = stats["cluster"]
        front = stats["front"]
        print("sharded serving stats:")
        print(f"  replicas      {stats['replicas']}")
        print(f"  requests      {front['requests_total']}")
        print(f"  qps           {front['qps']:.1f}")
        print(f"  latency p50   {front['latency']['p50'] * 1000:.2f} ms")
        print(f"  latency p99   {front['latency']['p99'] * 1000:.2f} ms")
        print(f"  cache hitrate {cluster['cache_hit_rate']:.1%} (aggregate)")
        supervisor = stats["supervisor"]
        print(f"  respawns      {supervisor['respawns']}"
              f"  quarantined {supervisor['quarantined']}")
        for name, snap in sorted(stats["shards"].items()):
            print(f"  {name:<12}  requests {snap['requests_total']}"
                  f"  hitrate {snap['cache_hit_rate']:.1%}")
        _print_stage_table(cluster.get("stages", {}))
    else:
        print(service.metrics.format_table())
        cache = stats.get("cache")
        if cache:
            print(f"  cache size    {cache['size']}/{cache['capacity']}")
        print(f"  breaker       {stats['breaker']['state']}")
        repair = stats.get("repair")
        if repair:
            counters = stats.get("counters", {})
            print(
                f"  repair        {counters.get('repair.repaired', 0)} repaired"
                f" / {counters.get('repair.requests', 0)} checked"
                f" ({counters.get('repair.abandoned', 0)} abandoned,"
                f" {counters.get('repair.budget_exhausted', 0)} exhausted)"
            )
        _print_stage_table(stats.get("stages", {}))
        accounting = stats.get("accounting")
        if accounting:
            tag = "consistent" if accounting["consistent"] else "INCONSISTENT"
            print(f"  counters      {tag} "
                  f"({len(accounting['identities'])} identities checked)")


def cmd_serve(args) -> int:
    import json

    sharded = args.replicas >= 1
    config = _serving_config_from(args)
    if args.repair_budget >= 0:
        from dataclasses import replace as dc_replace

        config = dc_replace(config, repair_attempts=args.repair_budget)
    if sharded:
        from repro.serving import ShardSpec, ShardedConfig, ShardedService

        spec = ShardSpec(
            _build_serving_nlidb,
            (args.schema, args.checkpoint, args.seed),
            config=config,
        )
        service_cm = ShardedService(spec, ShardedConfig(replicas=args.replicas))
    else:
        from repro.neural import load_model
        from repro.runtime import DBPal
        from repro.serving import TranslationService

        schema = load_schema(args.schema)
        database = populate(schema, rows_per_table=30, seed=args.seed)
        nlidb = DBPal(database, load_model(args.checkpoint))
        service_cm = TranslationService(nlidb, config)
    interactive = sys.stdin.isatty()

    interrupted = False
    # The context manager drains in-flight requests and stops the
    # worker pool (all shards, in sharded mode) on exit, interrupt
    # included — no accepted request is dropped mid-batch, and an
    # interrupt exits with a one-liner, not a traceback.
    with _graceful_sigterm(), service_cm as service:
        if args.reload:
            if sharded:
                reloaded = service.rolling_reload(
                    _load_checkpoint_model, args.reload
                )
                for record in reloaded:
                    print(f"reloaded {record['shard']} "
                          f"(generation {record['generation']})")
            else:
                service.reload_model(_load_checkpoint_model(args.reload))
                print("reloaded model")
        if interactive:
            print("DBPal serving REPL — empty line to exit")
        try:
            while True:
                try:
                    question = input("nl> " if interactive else "").strip()
                except EOFError:
                    break
                if not question:
                    if interactive:
                        break
                    continue
                response = service.translate(question)
                tag = response.status if response.status != "ok" else response.source
                print(f"[{response.request_id}] ({tag}) SQL: {response.sql}")
                if response.failure is not None:
                    print(f"    {response.failure.code}: {response.failure.message}")
                elif args.rows and response.result is not None and response.result.ok:
                    try:
                        for row in service.query(question, max_rows=args.rows):
                            print(" ", row)
                    except ReproError as exc:
                        print(f"  (execution failed: {exc})")
        except (KeyboardInterrupt, GracefulExit):
            interrupted = True
        stats = service.stats()
    if args.stats:
        _print_serve_stats(service, stats, sharded)
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
        print(f"wrote stats to {args.stats_json}")
    if interrupted:
        drained = "all shards drained" if sharded else "workers drained"
        print(
            f"interrupted — {drained}, service stopped cleanly",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 0


def cmd_benchmark(args) -> int:
    from repro.bench import build_patients_benchmark
    from repro.eval import evaluate, format_table
    from repro.neural import load_model
    from repro.schema import patients_schema

    workload = build_patients_benchmark()
    if args.category:
        workload = workload.by_category(args.category)
    model = load_model(args.checkpoint)
    schema = patients_schema()
    result = evaluate(model, workload, metric="exact", schemas={schema.name: schema})
    by_category = result.by_category()
    rows = [[c, by_category[c]] for c in workload.categories()]
    rows.append(["overall", result.accuracy])
    print(format_table(["Category", "Accuracy"], rows, title="Patients benchmark"))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        LintReport,
        audit_corpus,
        lint_schema,
        lint_templates,
    )
    from repro.core.seed_templates import SEED_TEMPLATES
    from repro.schema.catalog import all_schemas

    if args.schema:
        schemas = [load_schema(args.schema)]
    else:
        schemas = all_schemas()

    report = LintReport()
    if args.introspect and not args.corpus:
        print(
            "error: --introspect requires --corpus PATH", file=sys.stderr
        )
        return EXIT_ERROR
    if args.corpus:
        named_schemas = None
        if args.introspect:
            live = _introspected_schema(args.introspect)
            # The live schema is authoritative for pairs naming it and
            # the fallback for pairs naming nothing resolvable.
            named_schemas = {live.name: live}
            default_schema = live
        else:
            default_schema = schemas[0] if args.schema else None
        try:
            report.extend(
                audit_corpus(
                    args.corpus,
                    schemas=named_schemas,
                    default_schema=default_schema,
                )
            )
        except OSError as exc:
            print(f"error: cannot read corpus: {exc}", file=sys.stderr)
            return EXIT_ERROR
    else:
        if not args.templates:
            for schema in schemas:
                report.extend(lint_schema(schema))
        report.extend(lint_templates(schemas, SEED_TEMPLATES))

    if args.json:
        print(report.to_json())
    else:
        print(report.format_text())
    return EXIT_LINT_FINDINGS if report.has_findings(args.strict) else EXIT_OK


def cmd_db(args) -> int:
    from repro.db.planner import ExecutorSession, explain
    from repro.errors import SqlError
    from repro.perf import PerfRecorder
    from repro.runtime.postprocess import PostProcessor
    from repro.sql.parser import parse

    schema = load_schema(args.schema)
    database = populate(schema, rows_per_table=args.rows_per_table, seed=args.seed)
    # Accept the @JOIN shorthand the translator emits: route the SQL
    # through the post-processor so plans reflect what actually runs.
    processed = PostProcessor(schema).process(args.sql)
    if processed is not None:
        query = processed.query
    else:
        try:
            query = parse(args.sql)
        except SqlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.backend == "sqlite":
        return _db_explain_sqlite(query, database, execute=args.execute)
    print(explain(query, database))
    if args.execute:
        recorder = PerfRecorder()
        columnar = {"auto": None, "on": True, "off": False}[args.columnar]
        session = ExecutorSession(database, recorder=recorder, columnar=columnar)
        rows = session.execute(query)
        print(f"\n{len(rows)} row(s)")
        for row in rows[:20]:
            print(" ", row)
        if len(rows) > 20:
            print(f"  ... ({len(rows) - 20} more)")
        print(recorder.format_table(title="executor perf"))
        trace = session.last_columnar_trace
        if trace is not None:
            summary = (
                f"columnar steps: {trace.vectorized_steps} vectorized, "
                f"{trace.row_steps} row"
            )
            reasons = trace.fallback_reasons()
            if reasons:
                details = ", ".join(
                    f"{reason} (x{count})" for reason, count in sorted(reasons.items())
                )
                summary += f"; fallbacks: {details}"
            print(summary)
    return 0


def _db_explain_sqlite(query, database, execute: bool) -> int:
    """Show the sqlite adapter's compiled SQL and query plan."""
    import time

    from repro.adapters import SqliteAdapter
    from repro.adapters.sqlite3_adapter import compile_select

    with SqliteAdapter.from_database(database) as adapter:
        extents = adapter._extents(database.schema.table_names)
        compiled = compile_select(query, database.schema, extents)
        print("compiled SQL (sqlite dialect):")
        print(f"  {compiled.sql}")
        if compiled.client_distinct:
            print("  (DISTINCT/LIMIT applied client-side)")
        plan = adapter.connection.execute(
            f"EXPLAIN QUERY PLAN {compiled.sql}"
        ).fetchall()
        print("sqlite query plan:")
        for row in plan:
            print(f"  {row[-1]}")
        if execute:
            start = time.perf_counter()
            rows = adapter.execute(query)
            elapsed = time.perf_counter() - start
            print(f"\n{len(rows)} row(s) in {elapsed * 1000:.2f} ms")
            for row in rows[:20]:
                print(" ", row)
            if len(rows) > 20:
                print(f"  ... ({len(rows) - 20} more)")
    return 0


def cmd_repair(args) -> int:
    """One-shot execute–verify–repair run over a SQL candidate.

    Exit status: 0 when the candidate is clean or was repaired, 4 when
    findings remain (abandoned / budget exhausted), 1 on internal error
    (unparseable SQL, unknown schema).
    """
    import json as json_module

    from repro.adapters import MemoryAdapter
    from repro.db.index import ValueIndex
    from repro.errors import SqlError
    from repro.runtime.postprocess import PostProcessor
    from repro.serving import RepairBudget, RepairPipeline
    from repro.sql.parser import parse

    schema = load_schema(args.schema)
    database = populate(schema, rows_per_table=args.rows_per_table, seed=args.seed)
    # Accept the @JOIN shorthand the translator emits, like `db explain`.
    processed = PostProcessor(schema).process(args.sql)
    if processed is not None and processed.query is not None:
        query = processed.query
    else:
        try:
            query = parse(args.sql)
        except SqlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
    pipeline = RepairPipeline(
        schema,
        adapter=MemoryAdapter(database),
        budget=RepairBudget(max_attempts=args.attempts, deadline=args.deadline),
        value_index=ValueIndex(database),
    )
    report = pipeline.run(query, location="cli")
    if args.json:
        print(
            json_module.dumps(
                {
                    "outcome": report.outcome,
                    "verified": report.verified,
                    "sql": report.sql,
                    "trace": report.trace.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"outcome:  {report.outcome} (verified: {report.verified})")
        print(f"sql:      {report.sql}")
        trace = report.trace
        if trace.codes_tried:
            print(f"codes:    {', '.join(trace.codes_tried)}")
        for edit in trace.edits:
            print(f"edit:     [{edit['code']}] {edit['action']}: {edit['detail']}")
        for execution in trace.executions:
            print(
                f"execute:  candidate {execution['candidate']}"
                f" -> {execution['verdict']} ({execution['detail']})"
            )
        budget = trace.budget
        print(
            f"budget:   {budget.get('attempts_used', 0)}"
            f"/{budget.get('max_attempts', 0)} attempts,"
            f" {budget.get('spent_seconds', 0.0):.4f}s"
            f"/{budget.get('deadline', 0.0)}s"
        )
        if trace.error_code:
            print(f"error:    {trace.error_code} ({trace.reason})")
    return EXIT_OK if report.outcome in ("clean", "repaired") else EXIT_LINT_FINDINGS


def cmd_canonical(args) -> int:
    """Canonical form / equivalence oracle one-shot (PR 10).

    One query: print its canonical text and stable key; exit 0.  Two
    queries: run the three-verdict oracle — exit 0 for EQUIVALENT
    (canonical-form proof), 4 for DISTINCT (differential
    counterexample, an L602 finding), 3 for UNKNOWN (undecided; never
    silently upgraded).
    """
    import json as json_module

    from repro.analysis.equivalence import DISTINCT, EQUIVALENT, check_equivalence
    from repro.errors import SqlError
    from repro.runtime.postprocess import PostProcessor
    from repro.sql.canonical import canonical_key, canonical_text
    from repro.sql.parser import parse

    schema = load_schema(args.schema)
    post = PostProcessor(schema)

    def load_query(sql: str):
        # Accept the @JOIN shorthand the translator emits.
        processed = post.process(sql)
        if processed is not None and processed.query is not None:
            return processed.query
        return parse(sql)

    try:
        query = load_query(args.sql)
        other = load_query(args.sql2) if args.sql2 is not None else None
    except SqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if other is None:
        text = canonical_text(query, schema)
        key = canonical_key(query, schema)
        if args.json:
            print(
                json_module.dumps(
                    {"schema": schema.name, "canonical": text, "key": key},
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(f"canonical: {text}")
            print(f"key:       {key}")
        return EXIT_OK

    seeds = tuple(int(s) for s in str(args.seeds).split(",") if s != "")
    result = check_equivalence(
        query,
        other,
        schema,
        seeds=seeds,
        rows_per_table=args.rows_per_table,
    )
    if args.json:
        print(json_module.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"verdict:   {result.verdict}")
        print(f"left:      {result.left_canonical}")
        print(f"right:     {result.right_canonical}")
        for diag in result.report.sorted():
            print(f"{diag.severity.value:<7}    {diag}")
    if result.verdict == EQUIVALENT:
        return EXIT_OK
    if result.verdict == DISTINCT:
        return EXIT_LINT_FINDINGS
    return EXIT_QUARANTINE


def cmd_introspect(args) -> int:
    import json as json_module

    schema = _introspected_schema(args.database, name=args.name)
    if args.json:
        dump = {
            "name": schema.name,
            "tables": [
                {
                    "name": table.name,
                    "annotation": table.annotation,
                    "columns": [
                        {
                            "name": column.name,
                            "type": column.ctype.value,
                            "primary_key": column.primary_key,
                            "annotation": column.annotation,
                        }
                        for column in table.columns
                    ],
                }
                for table in schema.tables
            ],
            "foreign_keys": [
                {
                    "table": fk.table,
                    "column": fk.column,
                    "ref_table": fk.ref_table,
                    "ref_column": fk.ref_column,
                }
                for fk in schema.foreign_keys
            ],
        }
        print(json_module.dumps(dump, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"schema {schema.name!r} ({len(schema.table_names)} table(s))")
    for table in schema.tables:
        print(f"\n{table.name}  [{table.annotation}]")
        for column in table.columns:
            flags = " pk" if column.primary_key else ""
            print(
                f"  {column.name:24s} {column.ctype.value}{flags}"
                f"  [{column.annotation}]"
            )
    if schema.foreign_keys:
        print("\nforeign keys:")
        for fk in schema.foreign_keys:
            print(f"  {fk}")
    return EXIT_OK


_COMMANDS = {
    "schemas": cmd_schemas,
    "generate": cmd_generate,
    "train": cmd_train,
    "translate": cmd_translate,
    "serve": cmd_serve,
    "benchmark": cmd_benchmark,
    "lint": cmd_lint,
    "repair": cmd_repair,
    "canonical": cmd_canonical,
    "introspect": cmd_introspect,
    "db": cmd_db,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:  # unknown schema etc.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
