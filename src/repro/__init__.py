"""DBPal: a fully pluggable NL2SQL training pipeline (SIGMOD 2020 reproduction).

Public API tour
---------------

>>> from repro import (
...     GenerationConfig, TrainingPipeline,   # the paper's contribution
...     Seq2SeqModel, SyntaxAwareModel,       # pluggable translators
...     DBPal,                                # end-to-end NLIDB
...     load_schema, populate,                # schemas + sample data
... )

Train a translator for a schema with zero manual training data::

    schema = load_schema("patients")
    pipeline = TrainingPipeline(schema)
    model = Seq2SeqModel()
    pipeline.train(model)

Serve it as a natural-language interface::

    nlidb = DBPal(populate(schema), model)
    nlidb.query("show me the names of all patients with age 80")

Or serve it concurrently, with micro-batching, caching, and graceful
degradation (``repro serve`` on the command line)::

    with TranslationService(nlidb) as service:
        service.translate("show me the names of all patients with age 80")
"""

from repro.core import (
    Augmenter,
    GenerationConfig,
    Generator,
    SEED_TEMPLATES,
    TrainingCorpus,
    TrainingPair,
    TrainingPipeline,
    grid_search,
    random_search,
)
from repro.db import Database, ValueIndex, execute, populate
from repro.neural import (
    RetrievalModel,
    Seq2SeqModel,
    SyntaxAwareModel,
    TranslationModel,
    load_model,
    save_model,
)
from repro.runtime import DBPal
from repro.schema import Schema, all_schemas, load_schema, patients_schema
from repro.serving import ServingConfig, ServingResponse, TranslationService
from repro.sql import parse, to_sql

__version__ = "1.0.0"

__all__ = [
    "Augmenter",
    "DBPal",
    "Database",
    "GenerationConfig",
    "Generator",
    "RetrievalModel",
    "SEED_TEMPLATES",
    "Schema",
    "Seq2SeqModel",
    "ServingConfig",
    "ServingResponse",
    "SyntaxAwareModel",
    "TrainingCorpus",
    "TranslationService",
    "TrainingPair",
    "TrainingPipeline",
    "TranslationModel",
    "ValueIndex",
    "all_schemas",
    "execute",
    "grid_search",
    "load_model",
    "load_schema",
    "parse",
    "patients_schema",
    "populate",
    "random_search",
    "save_model",
    "to_sql",
    "__version__",
]
