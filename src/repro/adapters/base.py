"""The backend adapter protocol: what it means to be a DBPal backend.

DBPal's pluggability claim (paper §1) is that the pipeline only needs a
schema and an engine to execute against.  This module pins that claim
down as a small protocol — :class:`BackendAdapter` — with explicit
capability flags, so every layer that used to assume the in-memory
engine (:class:`repro.runtime.DBPal`, the equivalence checker, corpus
synthesis, the CLI) can run against any registered backend.

The contract:

* ``connect()`` / ``close()`` bracket the adapter's lifetime; adapters
  are context managers, and ``close()`` is idempotent.
* ``execute(query, max_rows=None)`` runs one AST query and returns
  *normalized* result rows: a list of dicts keyed by the reference
  executor's output labels, in the reference executor's deterministic
  output order, with floats canonicalized by :func:`normalize_rows`.
  Two correct backends therefore return ``==``-comparable values — the
  property the cross-backend differential suite enforces.
* ``introspect()`` reads the live database into a
  :class:`repro.schema.Schema` (synthesizing NL annotations), or raises
  :class:`~repro.errors.IntrospectionError` carrying ``L5xx``
  diagnostics.  It must never return a silently wrong schema.
* ``load(database)`` bulk-loads a populated in-memory
  :class:`~repro.db.storage.Database` (e.g. from
  :func:`repro.db.datagen.populate`), preserving insertion order.

Failures surface as :class:`~repro.errors.BackendError` (code
``E_BACKEND``) with the driver exception chained, or
:class:`~repro.errors.DialectError` (``E_DIALECT``) when the emitter
refused before reaching the engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import BackendError
from repro.schema.schema import Schema
from repro.sql.ast import Query

Row = dict[str, Any]


@dataclass(frozen=True)
class Capabilities:
    """What a backend can do, as data.

    Callers branch on flags instead of isinstance checks, so a new
    backend slots in without touching call sites.
    """

    #: Registry name of the backend ("memory", "sqlite", ...).
    name: str
    #: SQL dialect the backend executes (a :mod:`repro.sql.dialects` name).
    dialect: str
    #: Whether the database outlives the process (a file on disk).
    persistent: bool = False
    #: Whether ``introspect()`` is supported.
    introspectable: bool = False
    #: Whether ``execute`` compiles to SQL text for a real engine (as
    #: opposed to interpreting the AST directly).
    executes_sql_text: bool = False
    #: Whether loads are transactional (all-or-nothing on failure).
    transactional: bool = False


class BackendAdapter(abc.ABC):
    """Abstract base for database backends (see module docstring)."""

    capabilities: Capabilities

    # -- lifecycle -----------------------------------------------------

    @abc.abstractmethod
    def connect(self) -> "BackendAdapter":
        """Open the underlying connection; returns ``self`` for chaining."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the connection.  Idempotent."""

    def __enter__(self) -> "BackendAdapter":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the three verbs -----------------------------------------------

    @abc.abstractmethod
    def execute(self, query: Query, max_rows: int | None = None) -> list[Row]:
        """Run ``query``; return normalized rows (see module docstring)."""

    @abc.abstractmethod
    def introspect(self) -> Schema:
        """Read the live database into a :class:`Schema`."""

    @abc.abstractmethod
    def load(self, database) -> None:
        """Bulk-load an in-memory :class:`~repro.db.storage.Database`."""

    # -- conveniences --------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this adapter executes against."""
        raise NotImplementedError


def normalize_rows(rows: list[Mapping[str, Any]]) -> list[Row]:
    """Canonicalize result rows for cross-backend comparison.

    Floats are rounded to 12 significant digits: aggregate accumulation
    order differs between engines (e.g. SUM over a join), so the last
    couple of ulps of a float are engine noise, not signal.  Everything
    else — ints, strings, None, and row/column order — passes through
    untouched, which is exactly what "bit-identical normalized results"
    quantifies over.
    """
    normalized: list[Row] = []
    for row in rows:
        record: Row = {}
        for label, value in row.items():
            if isinstance(value, float):
                value = float(f"{value:.12g}")
            record[label] = value
        normalized.append(record)
    return normalized


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: name -> adapter class.  Populated by :func:`register_backend`.
BACKENDS: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator registering an adapter under ``name``."""

    def decorate(cls: type) -> type:
        BACKENDS[name] = cls
        return cls

    return decorate


def backend_names() -> list[str]:
    return sorted(BACKENDS)


def create_backend(name: str, *args, **kwargs) -> BackendAdapter:
    """Instantiate a registered backend by name.

    Unknown names raise :class:`BackendError` (``E_BACKEND``) naming
    the registered alternatives.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None
    return cls(*args, **kwargs)


def iter_backends() -> Iterator[tuple[str, type]]:
    yield from sorted(BACKENDS.items())
