"""Backend adapter SDK: pluggable database engines behind one protocol.

DBPal's pipeline is "fully pluggable" (paper §1) only if the layers
that execute SQL — the runtime, the eval harness, corpus synthesis, the
CLI — are written against an engine-neutral seam.  This package is that
seam:

* :class:`BackendAdapter` — the protocol (connect / execute /
  introspect / load, plus :class:`Capabilities` flags);
* :class:`MemoryAdapter` — the in-memory reference engine
  (:mod:`repro.db`) behind the protocol;
* :class:`SqliteAdapter` — a real engine via the stdlib ``sqlite3``
  module: DDL + bulk load, deterministic dialect-aware execution, and
  schema introspection with ``L5xx`` diagnostics;
* a registry (:func:`create_backend`, :data:`BACKENDS`) so callers
  select backends by name.

The differential test suite (``tests/test_adapters_differential.py``)
holds every backend to bit-identical normalized results against the
reference engine.
"""

from repro.adapters.base import (
    BACKENDS,
    BackendAdapter,
    Capabilities,
    backend_names,
    create_backend,
    normalize_rows,
    register_backend,
)
from repro.adapters.memory import MemoryAdapter
from repro.adapters.sqlite3_adapter import (
    SqliteAdapter,
    compile_select,
    split_identifier,
)

__all__ = [
    "BACKENDS",
    "BackendAdapter",
    "Capabilities",
    "MemoryAdapter",
    "SqliteAdapter",
    "backend_names",
    "compile_select",
    "create_backend",
    "normalize_rows",
    "register_backend",
    "split_identifier",
]
