"""The in-memory backend: the reference engine behind the adapter protocol.

A thin wrapper giving :mod:`repro.db` (storage + planner/executor) the
same face as a real engine, so callers written against
:class:`~repro.adapters.base.BackendAdapter` run unchanged on either.
This is also the differential suite's ground-truth arm: its results
*define* correct normalized output for the other backends.
"""

from __future__ import annotations

from repro.adapters.base import (
    BackendAdapter,
    Capabilities,
    Row,
    normalize_rows,
    register_backend,
)
from repro.db.planner import ExecutorSession
from repro.db.storage import Database
from repro.errors import BackendError
from repro.schema.schema import Schema
from repro.sql.ast import Query


@register_backend("memory")
class MemoryAdapter(BackendAdapter):
    """Adapter over the in-memory engine.

    Accepts a populated :class:`~repro.db.storage.Database`, an existing
    :class:`~repro.db.planner.ExecutorSession` (to share its caches), or
    a bare :class:`~repro.schema.Schema` (starts empty; ``load`` fills
    it).
    """

    capabilities = Capabilities(
        name="memory",
        dialect="default",
        persistent=False,
        introspectable=True,
        executes_sql_text=False,
        transactional=False,
    )

    def __init__(self, source: Database | ExecutorSession | Schema) -> None:
        if isinstance(source, ExecutorSession):
            self.session = source
            self.database = source.database
        elif isinstance(source, Database):
            self.database = source
            self.session = ExecutorSession(source)
        elif isinstance(source, Schema):
            self.database = Database(source)
            self.session = ExecutorSession(self.database)
        else:
            raise BackendError(
                f"MemoryAdapter needs a Database, ExecutorSession, or "
                f"Schema, not {type(source).__name__}"
            )

    # -- lifecycle -----------------------------------------------------

    def connect(self) -> "MemoryAdapter":
        return self

    def close(self) -> None:  # nothing to release
        return None

    # -- verbs ---------------------------------------------------------

    def execute(self, query: Query, max_rows: int | None = None) -> list[Row]:
        return normalize_rows(self.session.execute(query, max_rows=max_rows))

    def introspect(self) -> Schema:
        return self.database.schema

    def load(self, database: Database) -> None:
        """Copy every table of ``database`` into this adapter's store."""
        if database.schema.table_names != self.database.schema.table_names:
            raise BackendError(
                f"cannot load schema {database.schema.name!r} into a "
                f"{self.database.schema.name!r} backend"
            )
        for table in database.schema.table_names:
            self.database.insert_many(table, database.rows(table))

    @property
    def schema(self) -> Schema:
        return self.database.schema
