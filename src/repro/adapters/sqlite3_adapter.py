"""A real database backend over the stdlib ``sqlite3`` module.

Three jobs, one file:

* **DDL + bulk load** — :meth:`SqliteAdapter.create` renders a
  :class:`~repro.schema.Schema` to sqlite DDL and :meth:`load` copies a
  populated in-memory :class:`~repro.db.storage.Database` in insertion
  order, so ``rowid`` is dense and equals the reference engine's scan
  position (the deterministic-ordering lever below).
* **Deterministic execution** — :func:`compile_select` emits sqlite SQL
  whose result rows are *bit-identical* to the reference executor's,
  not merely set-equal.  The reference pipeline has concrete semantics
  a naive translation misses; each is compensated explicitly:

  - atomic predicates collapse NULL to false (``compare()`` in
    :mod:`repro.db.expressions`), while sqlite uses three-valued
    logic — every atom is wrapped in ``COALESCE((atom), 0)`` so NOT /
    AND / OR operate on {0,1} exactly as the reference does;
  - output order is the FROM-clause cross-product order — emulated by
    appending ``t.rowid`` tiebreaks (non-grouped) or a
    ``MIN()`` -of-product-rank tiebreak (grouped: the reference emits
    groups in first-appearance order);
  - ORDER BY sorts missing values last regardless of direction —
    emulated with a leading ``(expr IS NULL)`` key per sort key;
  - DISTINCT dedups on the *full* row tuple including ``__order__``
    helper columns, keeping the first occurrence — done client-side
    (sqlite's DISTINCT would also reject our rowid tiebreaks), with
    LIMIT applied after;
  - output labels mirror the executor's: ``str(item)`` for column and
    aggregate items, schema-ordered ``table.column``/``column``
    expansion for ``*`` — every select item is emitted ``AS "label"``.

* **Introspection** — :meth:`introspect` reads ``sqlite_master`` +
  ``PRAGMA table_info``/``foreign_key_list`` into a
  :class:`~repro.schema.Schema`, synthesizing NL annotations by
  splitting identifiers, and reports every judgement call as an
  ``L5xx`` diagnostic.  Any error-severity finding aborts with
  :class:`~repro.errors.IntrospectionError` — never a silently wrong
  schema.
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.adapters.base import (
    BackendAdapter,
    Capabilities,
    Row,
    normalize_rows,
    register_backend,
)
from repro.analysis.diagnostics import LintReport, make
from repro.db.storage import Database
from repro.errors import BackendError, DialectError, IntrospectionError
from repro.schema.column import Column, ColumnType
from repro.schema.schema import Schema
from repro.schema.table import ForeignKey, Table
from repro.sql.ast import Aggregate, ColumnRef, OrderItem, Query, Star
from repro.sql.dialects import get_dialect
from repro.sql.printer import SqlPrinter

#: Logical column type -> declared sqlite type.  INTEGER is declared
#: ``INT`` on purpose: a column declared exactly ``INTEGER PRIMARY KEY``
#: becomes an alias for ``rowid``, which would make row order follow key
#: values instead of insertion order and break the determinism contract.
#: ``INT`` has identical affinity without the aliasing rule.
_DECLARED_TYPE = {
    ColumnType.INTEGER: "INT",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.DATE: "DATE",
}

#: sqlite ``typeof()`` results compatible with each logical type.
_COMPATIBLE_TYPEOF = {
    ColumnType.INTEGER: {"integer"},
    ColumnType.FLOAT: {"real", "integer"},
    ColumnType.TEXT: {"text"},
    ColumnType.DATE: {"text"},
}


# ----------------------------------------------------------------------
# Executable emission
# ----------------------------------------------------------------------


class ExecutableSqlitePrinter(SqlPrinter):
    """The sqlite dialect printer with reference-engine NULL semantics.

    Subqueries render through :meth:`query`, which adds the same
    deterministic ORDER BY tiebreaks when the subquery has a LIMIT (the
    reference applies its own deterministic pipeline inside subqueries
    too).
    """

    def __init__(self, schema: Schema, extents: dict[str, int]) -> None:
        super().__init__("sqlite")
        self._schema = schema
        self._extents = extents

    def atom(self, rendered: str) -> str:
        return f"COALESCE(({rendered}), 0)"

    def query(self, query: Query) -> str:
        if query.distinct and (query.order_by or query.limit is not None):
            raise DialectError(
                "DISTINCT combined with ORDER BY/LIMIT inside a subquery "
                "requires client-side deduplication and cannot be emitted "
                "for sqlite"
            )
        if query.limit is None:
            return super().query(query)
        # A LIMIT cuts the row set, so the subquery's order must be the
        # reference order; splice in the deterministic tiebreaks.
        ordered = order_clause(query, self, self._extents)
        trimmed = Query(
            select=query.select,
            from_tables=query.from_tables,
            where=query.where,
            group_by=query.group_by,
            having=query.having,
            order_by=(),
            limit=None,
            distinct=query.distinct,
        )
        base = super().query(trimmed)
        if ordered:
            base += " ORDER BY " + ", ".join(ordered)
        return base + f" LIMIT {query.limit}"


def is_aggregate_query(query: Query) -> bool:
    """Mirror of the reference executor's grouped-path trigger."""
    return bool(query.aggregates()) or any(
        isinstance(item, Aggregate) for item in query.select
    )


def order_clause(
    query: Query, printer: SqlPrinter, extents: dict[str, int]
) -> list[str]:
    """ORDER BY terms reproducing the reference engine's output order.

    User keys first (each preceded by an ``IS NULL`` missing-last
    flag), then the determinism tiebreak: per-table ``rowid`` for
    non-grouped queries, the minimum cross-product rank for grouped
    ones.  Global aggregates (no GROUP BY) yield one row and need
    neither.
    """
    terms: list[str] = []
    for item in query.order_by:
        expr = (
            printer.aggregate(item.expr)
            if isinstance(item.expr, Aggregate)
            else printer.column_ref(item.expr)
        )
        terms.append(f"({expr} IS NULL)")
        terms.append(f"{expr} DESC" if item.desc else expr)
    if is_aggregate_query(query):
        if query.group_by:
            terms.append(f"MIN({_product_rank(query, printer, extents)})")
        return terms
    for table in query.from_tables:
        terms.append(printer.column_ref(ColumnRef("rowid", table=table)))
    return terms


def _product_rank(
    query: Query, printer: SqlPrinter, extents: dict[str, int]
) -> str:
    """An integer expression strictly increasing in cross-product order.

    For FROM tables t1..tk the reference joins rows in lexicographic
    ``(rowid_1, .., rowid_k)`` order; flattening with per-table radixes
    ``M_i = max(rowid of t_i)`` gives a single sortable rank whose group
    minimum is the group's first appearance.
    """
    tables = query.from_tables
    if len(tables) == 1:
        return printer.column_ref(ColumnRef("rowid", table=tables[0]))
    parts = []
    for position, table in enumerate(tables):
        rowid = printer.column_ref(ColumnRef("rowid", table=table))
        radix = 1
        for later in tables[position + 1 :]:
            radix *= max(extents.get(later, 1), 1)
        if position == len(tables) - 1:
            parts.append(f"({rowid} - 1)")
        else:
            parts.append(f"({rowid} - 1) * {radix}")
    return " + ".join(parts)


@dataclass
class CompiledQuery:
    """One top-level query lowered to sqlite SQL plus a client-side plan."""

    sql: str
    #: DISTINCT (and its LIMIT) must run client-side (see module doc).
    client_distinct: bool = False
    #: LIMIT to apply client-side when ``client_distinct``.
    limit: int | None = None
    #: Helper labels (``__order__*``) to strip from result rows.
    helpers: tuple[str, ...] = ()


def compile_select(
    query: Query, schema: Schema, extents: dict[str, int]
) -> CompiledQuery:
    """Lower ``query`` to deterministic sqlite SQL (see module docstring)."""
    if query.uses_join_placeholder:
        raise BackendError(
            "cannot execute query with unresolved @JOIN placeholder; "
            "run the post-processor first"
        )
    printer = ExecutableSqlitePrinter(schema, extents)
    dialect = printer.dialect
    grouped = is_aggregate_query(query)

    # SELECT list: (label, expr) pairs exactly mirroring executor labels.
    pairs: list[tuple[str, str]] = []
    labels: set[str] = set()
    for item in query.select:
        if isinstance(item, Star):
            if grouped:
                raise BackendError("SELECT * cannot be combined with GROUP BY")
            multi = len(query.from_tables) > 1
            for table in query.from_tables:
                for column in schema.table(table).columns:
                    label = f"{table}.{column.name}" if multi else column.name
                    ref = ColumnRef(column.name, table=table)
                    pairs.append((label, printer.column_ref(ref)))
                    labels.add(label)
        elif isinstance(item, ColumnRef):
            pairs.append((str(item), printer.column_ref(item)))
            labels.add(str(item))
        elif isinstance(item, Aggregate):
            pairs.append((str(item), printer.aggregate(item)))
            labels.add(str(item))
        else:
            raise BackendError(f"unsupported select item: {item!r}")

    # ORDER BY helper columns, as the executor adds them.
    helpers: list[str] = []
    for order in query.order_by:
        label = str(order.expr)
        if label in labels:
            continue
        helper = "__order__" + label
        expr = (
            printer.aggregate(order.expr)
            if isinstance(order.expr, Aggregate)
            else printer.column_ref(order.expr)
        )
        pairs.append((helper, expr))
        labels.add(label)
        helpers.append(helper)

    parts = ["SELECT"]
    parts.append(
        ", ".join(
            f"{expr} AS {dialect.quote_identifier(label)}"
            for label, expr in pairs
        )
    )
    parts.append("FROM")
    parts.append(", ".join(printer.table(t) for t in query.from_tables))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(printer.predicate(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(printer.column_ref(c) for c in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(printer.predicate(query.having))
    ordered = order_clause(query, printer, extents)
    if ordered:
        parts.append("ORDER BY")
        parts.append(", ".join(ordered))
    if query.limit is not None and not query.distinct:
        parts.append(f"LIMIT {query.limit}")
    return CompiledQuery(
        sql=" ".join(parts),
        client_distinct=query.distinct,
        limit=query.limit,
        helpers=tuple(helpers),
    )


# ----------------------------------------------------------------------
# NL annotation synthesis
# ----------------------------------------------------------------------

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Za-z])(?=[0-9])")


def split_identifier(name: str) -> str:
    """``patient_name`` / ``patientName`` -> ``"patient name"``.

    Returns an empty string when the identifier has no alphabetic
    content to verbalize (the L502 case).
    """
    spaced = _CAMEL_BOUNDARY.sub(" ", name.replace("_", " "))
    words = [w for w in spaced.split() if any(ch.isalpha() for ch in w)]
    return " ".join(w.lower() for w in words)


# ----------------------------------------------------------------------
# The adapter
# ----------------------------------------------------------------------


@register_backend("sqlite")
class SqliteAdapter(BackendAdapter):
    """Backend over a sqlite3 database file (or ``:memory:``)."""

    capabilities = Capabilities(
        name="sqlite",
        dialect="sqlite",
        persistent=True,
        introspectable=True,
        executes_sql_text=True,
        transactional=True,
    )

    def __init__(
        self,
        path: str | Path = ":memory:",
        schema: Schema | None = None,
        schema_name: str | None = None,
    ) -> None:
        self.path = str(path)
        self._schema = schema
        self._schema_name = schema_name
        self._conn: sqlite3.Connection | None = None
        self._extent_cache: dict[str, int] = {}
        #: Warnings from the last :meth:`introspect` call.
        self.last_introspection = LintReport()

    @classmethod
    def from_database(
        cls,
        database: Database,
        path: str | Path = ":memory:",
        enforce_keys: bool | None = None,
    ) -> "SqliteAdapter":
        """Create + load a sqlite database mirroring ``database``."""
        adapter = cls(path, schema=database.schema)
        adapter.connect()
        adapter.create(database.schema, enforce_keys=enforce_keys)
        adapter.load(database)
        return adapter

    # -- lifecycle -----------------------------------------------------

    def connect(self) -> "SqliteAdapter":
        if self._conn is None:
            try:
                self._conn = sqlite3.connect(self.path)
            except sqlite3.Error as exc:
                raise BackendError(
                    f"cannot open sqlite database {self.path!r}: {exc}"
                ) from exc
        return self

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self.connect()
        return self._conn  # type: ignore[return-value]

    # -- DDL and loading -----------------------------------------------

    def create(self, schema: Schema, enforce_keys: bool | None = None) -> None:
        """Create ``schema``'s tables (which must not already exist).

        ``enforce_keys`` controls PRIMARY KEY declaration: ``True``
        declares every key, ``False`` none, and the default ``None``
        declares only single-column INTEGER keys that are not also
        foreign keys — the subset synthetic :mod:`~repro.db.datagen`
        data is guaranteed to satisfy (its text keys may repeat).
        """
        dialect = get_dialect("sqlite")
        fk_children = {(fk.table, fk.column) for fk in schema.foreign_keys}
        statements = []
        for table in schema.tables:
            pk_columns = [c for c in table.columns if c.primary_key]
            if enforce_keys is True:
                declared_pk = pk_columns
            elif enforce_keys is False:
                declared_pk = []
            else:
                declared_pk = [
                    c
                    for c in pk_columns
                    if len(pk_columns) == 1
                    and c.ctype is ColumnType.INTEGER
                    and (table.name, c.name) not in fk_children
                ]
            body = [
                f"{dialect.quote_identifier(c.name)} {_DECLARED_TYPE[c.ctype]}"
                for c in table.columns
            ]
            if declared_pk:
                keys = ", ".join(
                    dialect.quote_identifier(c.name) for c in declared_pk
                )
                body.append(f"PRIMARY KEY ({keys})")
            for fk in schema.foreign_keys:
                if fk.table != table.name:
                    continue
                body.append(
                    f"FOREIGN KEY ({dialect.quote_identifier(fk.column)}) "
                    f"REFERENCES {dialect.quote_identifier(fk.ref_table)} "
                    f"({dialect.quote_identifier(fk.ref_column)})"
                )
            statements.append(
                f"CREATE TABLE {dialect.quote_identifier(table.name)} "
                f"({', '.join(body)})"
            )
        try:
            with self.connection:
                for statement in statements:
                    self.connection.execute(statement)
        except sqlite3.Error as exc:
            raise BackendError(f"DDL failed: {exc}") from exc
        self._schema = schema
        self._extent_cache.clear()

    def load(self, database: Database) -> None:
        """Bulk-load ``database`` in insertion order (one transaction)."""
        schema = database.schema
        if self._schema is None:
            self.create(schema)
        dialect = get_dialect("sqlite")
        try:
            with self.connection:
                for table in schema.tables:
                    names = [c.name for c in table.columns]
                    sql = (
                        f"INSERT INTO {dialect.quote_identifier(table.name)} "
                        f"({', '.join(dialect.quote_identifier(n) for n in names)}) "
                        f"VALUES ({', '.join('?' for _ in names)})"
                    )
                    rows = [
                        tuple(row[name] for name in names)
                        for row in database.rows(table.name)
                    ]
                    if rows:
                        self.connection.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise BackendError(
                f"bulk load into {self.path!r} failed: {exc}"
            ) from exc
        self._extent_cache.clear()

    # -- execution -----------------------------------------------------

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            self._schema = self.introspect()
        return self._schema

    def _extents(self, tables: tuple[str, ...]) -> dict[str, int]:
        dialect = get_dialect("sqlite")
        extents: dict[str, int] = {}
        for table in tables:
            if table not in self._extent_cache:
                try:
                    cursor = self.connection.execute(
                        f"SELECT MAX(rowid) FROM {dialect.quote_identifier(table)}"
                    )
                except sqlite3.Error as exc:
                    raise BackendError(
                        f"cannot inspect table {table!r}: {exc}"
                    ) from exc
                value = cursor.fetchone()[0]
                self._extent_cache[table] = int(value or 0)
            extents[table] = self._extent_cache[table]
        return extents

    def execute(self, query: Query, max_rows: int | None = None) -> list[Row]:
        schema = self.schema
        for table in query.from_tables:
            if not table.startswith("@") and table not in schema:
                raise BackendError(
                    f"unknown table {table!r} in schema {schema.name!r}"
                )
        # Extents for every table, not just the FROM clause: subqueries
        # may range over other tables and need rank radixes too.
        compiled = compile_select(
            query, schema, self._extents(schema.table_names)
        )
        try:
            cursor = self.connection.execute(compiled.sql)
        except sqlite3.Error as exc:
            raise BackendError(
                f"sqlite rejected compiled query: {exc}\n  {compiled.sql}"
            ) from exc
        columns = [description[0] for description in cursor.description]
        rows = [dict(zip(columns, values)) for values in cursor.fetchall()]
        if compiled.client_distinct:
            seen: set[tuple] = set()
            unique: list[Row] = []
            for row in rows:
                key = tuple(row.values())
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if compiled.helpers:
            helper_set = set(compiled.helpers)
            rows = [
                {k: v for k, v in row.items() if k not in helper_set}
                for row in rows
            ]
        if compiled.client_distinct and compiled.limit is not None:
            rows = rows[: compiled.limit]
        if max_rows is not None:
            rows = rows[:max_rows]
        return normalize_rows(rows)

    # -- introspection -------------------------------------------------

    def introspect(self) -> Schema:
        """Read the live database into a :class:`Schema` (see module doc)."""
        report = LintReport()
        conn = self.connection
        try:
            rows = conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY rowid"
            ).fetchall()
        except sqlite3.Error as exc:
            raise BackendError(
                f"cannot read sqlite catalog of {self.path!r}: {exc}"
            ) from exc
        raw_names = [row[0] for row in rows]
        if not raw_names:
            report.extend(
                [
                    make(
                        "L506",
                        f"database {self.path!r} contains no tables",
                        location=self.path,
                    )
                ]
            )
            self.last_introspection = report
            raise IntrospectionError(
                f"nothing to introspect in {self.path!r}",
                diagnostics=report.diagnostics,
            )

        tables: list[Table] = []
        seen_names: dict[str, str] = {}
        usable_tables: dict[str, Table] = {}
        for raw_name in raw_names:
            name = raw_name.lower()
            location = f"{self.path}:{raw_name}"
            if not _usable_identifier(name):
                report.extend(
                    [
                        make(
                            "L501",
                            f"table name {raw_name!r} is not a usable "
                            "identifier",
                            location=location,
                            hint="rename to snake_case letters/digits/underscores",
                        )
                    ]
                )
                continue
            if name in seen_names:
                report.extend(
                    [
                        make(
                            "L501",
                            f"table names {seen_names[name]!r} and "
                            f"{raw_name!r} collide after lowercasing",
                            location=location,
                        )
                    ]
                )
                continue
            seen_names[name] = raw_name
            columns = self._introspect_columns(raw_name, name, report)
            if columns is None:
                continue
            annotation = split_identifier(name)
            if not annotation:
                report.extend(
                    [
                        make(
                            "L502",
                            f"table name {raw_name!r} yields no NL phrase; "
                            "using the raw identifier",
                            location=location,
                        )
                    ]
                )
                annotation = name
            table = Table(name, columns, annotation=annotation)
            tables.append(table)
            usable_tables[name] = table

        foreign_keys = self._introspect_foreign_keys(
            seen_names, usable_tables, report
        )

        self.last_introspection = report
        if not report.ok:
            raise IntrospectionError(
                f"cannot build a schema from {self.path!r}: "
                f"{len(report.errors)} error(s), e.g. {report.errors[0]}",
                diagnostics=report.diagnostics,
            )
        name = self._schema_name or _schema_name_from_path(self.path)
        return Schema(name, tables, foreign_keys)

    def _introspect_columns(
        self, raw_table: str, table: str, report: LintReport
    ) -> list[Column] | None:
        dialect = get_dialect("sqlite")
        quoted = dialect.quote_identifier(raw_table)
        info = self.connection.execute(
            f"PRAGMA table_info({quoted})"
        ).fetchall()
        columns: list[Column] = []
        seen: dict[str, str] = {}
        ok = True
        for _cid, raw_name, declared, _notnull, _default, pk in info:
            name = raw_name.lower()
            location = f"{self.path}:{raw_table}.{raw_name}"
            if not _usable_identifier(name):
                report.extend(
                    [
                        make(
                            "L501",
                            f"column name {raw_name!r} is not a usable "
                            "identifier",
                            location=location,
                        )
                    ]
                )
                ok = False
                continue
            if name in seen:
                report.extend(
                    [
                        make(
                            "L501",
                            f"column names {seen[name]!r} and {raw_name!r} "
                            "collide after lowercasing",
                            location=location,
                        )
                    ]
                )
                ok = False
                continue
            seen[name] = raw_name
            ctype, recognized = _map_declared_type(declared)
            if not recognized:
                report.extend(
                    [
                        make(
                            "L505",
                            f"declared type {declared!r} mapped to "
                            f"{ctype.name} by affinity",
                            location=location,
                        )
                    ]
                )
            mismatch = self._typeof_mismatch(quoted, raw_name, ctype)
            if mismatch:
                report.extend(
                    [
                        make(
                            "L503",
                            f"column declared {declared!r} ({ctype.name}) "
                            f"stores typeof={mismatch!r} values",
                            location=location,
                            hint="fix the stored values or the declared type",
                        )
                    ]
                )
                ok = False
                continue
            annotation = split_identifier(name)
            if not annotation:
                report.extend(
                    [
                        make(
                            "L502",
                            f"column name {raw_name!r} yields no NL phrase; "
                            "using the raw identifier",
                            location=location,
                        )
                    ]
                )
                annotation = name
            columns.append(
                Column(
                    name,
                    ctype=ctype,
                    annotation=annotation,
                    primary_key=bool(pk),
                )
            )
        if not columns:
            report.extend(
                [
                    make(
                        "L501",
                        f"table {raw_table!r} has no usable columns",
                        location=f"{self.path}:{raw_table}",
                    )
                ]
            )
            return None
        return columns if ok else None

    def _typeof_mismatch(
        self, quoted_table: str, raw_column: str, ctype: ColumnType
    ) -> str | None:
        """The first stored ``typeof()`` incompatible with ``ctype``."""
        dialect = get_dialect("sqlite")
        quoted = dialect.quote_identifier(raw_column)
        stored = self.connection.execute(
            f"SELECT DISTINCT typeof({quoted}) FROM {quoted_table} "
            f"WHERE {quoted} IS NOT NULL LIMIT 8"
        ).fetchall()
        allowed = _COMPATIBLE_TYPEOF[ctype]
        for (kind,) in stored:
            if kind not in allowed:
                return kind
        return None

    def _introspect_foreign_keys(
        self,
        seen_names: dict[str, str],
        tables: dict[str, Table],
        report: LintReport,
    ) -> list[ForeignKey]:
        dialect = get_dialect("sqlite")
        foreign_keys: list[ForeignKey] = []
        for name, raw_name in seen_names.items():
            if name not in tables:
                continue
            rows = self.connection.execute(
                f"PRAGMA foreign_key_list({dialect.quote_identifier(raw_name)})"
            ).fetchall()
            groups: dict[int, list[tuple]] = {}
            for row in rows:
                groups.setdefault(row[0], []).append(row)
            for fk_id, members in sorted(groups.items()):
                location = f"{self.path}:{raw_name}#fk{fk_id}"
                if len(members) > 1:
                    report.extend(
                        [
                            make(
                                "L504",
                                f"composite foreign key on {raw_name!r} "
                                f"({len(members)} columns) dropped",
                                location=location,
                            )
                        ]
                    )
                    continue
                _id, _seq, ref_table, child, parent = members[0][:5]
                ref_name = ref_table.lower()
                if ref_name not in tables:
                    report.extend(
                        [
                            make(
                                "L504",
                                f"foreign key on {raw_name!r} references "
                                f"unusable table {ref_table!r}; edge dropped",
                                location=location,
                            )
                        ]
                    )
                    continue
                if parent is None:
                    pk = tables[ref_name].primary_key
                    if pk is None:
                        report.extend(
                            [
                                make(
                                    "L504",
                                    f"foreign key on {raw_name!r} references "
                                    f"{ref_table!r} which has no primary key; "
                                    "edge dropped",
                                    location=location,
                                )
                            ]
                        )
                        continue
                    parent = pk.name
                child_name = child.lower()
                parent_name = parent.lower()
                if (
                    child_name not in tables[name]
                    or parent_name not in tables[ref_name]
                ):
                    report.extend(
                        [
                            make(
                                "L504",
                                f"foreign key {raw_name}.{child} -> "
                                f"{ref_table}.{parent} references an unusable "
                                "column; edge dropped",
                                location=location,
                            )
                        ]
                    )
                    continue
                foreign_keys.append(
                    ForeignKey(name, child_name, ref_name, parent_name)
                )
        return foreign_keys


def _usable_identifier(name: str) -> bool:
    return bool(name) and name.replace("_", "").isalnum()


def _map_declared_type(declared: str | None) -> tuple[ColumnType, bool]:
    """Map a declared sqlite type to a logical type.

    Returns ``(type, recognized)`` — unrecognized declarations fall back
    through sqlite's affinity rules (the L505 case).  ``DATE`` is
    checked before ``INT`` so ``DATETIME``-style declarations land on
    DATE, mirroring how :meth:`SqliteAdapter.create` spells dates.
    """
    text = (declared or "").upper()
    if "DATE" in text or "TIME" in text:
        return ColumnType.DATE, True
    if "INT" in text:
        return ColumnType.INTEGER, True
    if any(tag in text for tag in ("CHAR", "CLOB", "TEXT")):
        return ColumnType.TEXT, True
    if any(tag in text for tag in ("REAL", "FLOA", "DOUB")):
        return ColumnType.FLOAT, True
    if any(tag in text for tag in ("NUM", "DEC", "BOOL")):
        return ColumnType.FLOAT, False
    return ColumnType.TEXT, False


def _schema_name_from_path(path: str) -> str:
    if path == ":memory:":
        return "sqlite"
    stem = Path(path).stem.lower()
    cleaned = re.sub(r"[^a-z0-9_]", "_", stem).strip("_")
    return cleaned or "sqlite"


# re-exported for the differential suite and benchmarks
__all__ = [
    "CompiledQuery",
    "ExecutableSqlitePrinter",
    "SqliteAdapter",
    "compile_select",
    "split_identifier",
]

