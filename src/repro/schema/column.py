"""Column definitions for the relational schema model.

A :class:`Column` carries the information DBPal's generator needs beyond
what a bare DDL column would provide: a human-readable *annotation* (the
phrase used when the column is verbalized in natural language), a list of
synonyms, and a domain hint (e.g. ``"age"``) used by the comparative /
superlative augmentation step (paper §3.2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types supported by the SQL subset."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support ``<``/``>`` and AVG/SUM."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)


#: Domain hints recognized by the comparative-substitution augmenter.
#: Maps a domain name to (comparative-greater, comparative-less) phrases.
KNOWN_DOMAINS = {
    "age": ("older than", "younger than"),
    "height": ("taller than", "shorter than"),
    "length": ("longer than", "shorter than"),
    "duration": ("longer than", "shorter than"),
    "size": ("larger than", "smaller than"),
    "area": ("larger than", "smaller than"),
    "population": ("more populous than", "less populous than"),
    "price": ("more expensive than", "cheaper than"),
    "salary": ("better paid than", "worse paid than"),
    "weight": ("heavier than", "lighter than"),
    "speed": ("faster than", "slower than"),
    "date": ("later than", "earlier than"),
    "count": ("more than", "fewer than"),
}


@dataclass(frozen=True)
class Column:
    """A single attribute of a table.

    Parameters
    ----------
    name:
        SQL identifier of the column (lower-case snake case).
    ctype:
        Logical type; drives which filter operators and aggregates the
        generator may instantiate for this column.
    annotation:
        Human-readable phrase used in generated NL (defaults to ``name``
        with underscores replaced by spaces).
    synonyms:
        Alternative NL phrases for the column, used by the slot-filling
        lexicons to diversify generated questions.
    domain:
        Optional domain hint (a key of :data:`KNOWN_DOMAINS`) enabling
        domain-specific comparative phrases such as "older than".
    primary_key:
        Whether this column is (part of) the table's primary key.
    """

    name: str
    ctype: ColumnType = ColumnType.TEXT
    annotation: str = ""
    synonyms: tuple[str, ...] = ()
    domain: str = ""
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.domain and self.domain not in KNOWN_DOMAINS:
            raise SchemaError(
                f"unknown domain {self.domain!r} for column {self.name!r}; "
                f"known domains: {sorted(KNOWN_DOMAINS)}"
            )
        if not self.annotation:
            object.__setattr__(self, "annotation", self.name.replace("_", " "))

    @property
    def is_numeric(self) -> bool:
        """Whether the column supports numeric comparisons/aggregates."""
        return self.ctype.is_numeric

    @property
    def nl_phrases(self) -> tuple[str, ...]:
        """All NL phrases that may verbalize this column."""
        return (self.annotation, *self.synonyms)

    @property
    def placeholder(self) -> str:
        """The anonymization placeholder for constants of this column.

        Matches the paper's notation, e.g. ``@AGE`` for a column named
        ``age`` (§3.1).
        """
        return "@" + self.name.upper()


def integer(name: str, **kwargs) -> Column:
    """Shorthand for an INTEGER column."""
    return Column(name, ColumnType.INTEGER, **kwargs)


def floating(name: str, **kwargs) -> Column:
    """Shorthand for a FLOAT column."""
    return Column(name, ColumnType.FLOAT, **kwargs)


def text(name: str, **kwargs) -> Column:
    """Shorthand for a TEXT column."""
    return Column(name, ColumnType.TEXT, **kwargs)


def date(name: str, **kwargs) -> Column:
    """Shorthand for a DATE column."""
    return Column(name, ColumnType.DATE, **kwargs)
