"""Table and foreign-key definitions for the relational schema model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.column import Column


@dataclass(frozen=True)
class ForeignKey:
    """A directed foreign-key edge ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


class Table:
    """A named collection of columns with optional NL annotations.

    Parameters
    ----------
    name:
        SQL identifier of the table.
    columns:
        Ordered column definitions; names must be unique within the table.
    annotation:
        Human-readable singular noun phrase for the table (defaults to
        ``name`` with underscores replaced by spaces).
    synonyms:
        Alternative NL phrases for the table.
    """

    def __init__(
        self,
        name: str,
        columns: list[Column] | tuple[Column, ...],
        annotation: str = "",
        synonyms: tuple[str, ...] = (),
    ) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = tuple(columns)
        self.annotation = annotation or name.replace("_", " ")
        self.synonyms = tuple(synonyms)
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"duplicate column names in table {name!r}")

    def __repr__(self) -> str:
        cols = ", ".join(c.name for c in self.columns)
        return f"Table({self.name!r}: {cols})"

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._by_name

    def __iter__(self):
        return iter(self.columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def numeric_columns(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if c.is_numeric)

    @property
    def text_columns(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if not c.is_numeric)

    @property
    def primary_key(self) -> Column | None:
        """The first primary-key column, if any."""
        for column in self.columns:
            if column.primary_key:
                return column
        return None

    @property
    def nl_phrases(self) -> tuple[str, ...]:
        """All NL phrases that may verbalize this table."""
        return (self.annotation, *self.synonyms)
