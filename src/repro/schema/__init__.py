"""Relational schema model: tables, columns, foreign keys, join graph."""

from repro.schema.annotations import ColumnAnnotation, TableAnnotation, annotate
from repro.schema.catalog import SCHEMA_FACTORIES, all_schemas, load_schema, patients_schema
from repro.schema.column import KNOWN_DOMAINS, Column, ColumnType, date, floating, integer, text
from repro.schema.schema import Schema
from repro.schema.table import ForeignKey, Table

__all__ = [
    "Column",
    "ColumnType",
    "ColumnAnnotation",
    "ForeignKey",
    "KNOWN_DOMAINS",
    "SCHEMA_FACTORIES",
    "Schema",
    "Table",
    "TableAnnotation",
    "all_schemas",
    "annotate",
    "date",
    "floating",
    "integer",
    "load_schema",
    "patients_schema",
    "text",
]
