"""Schema annotation helpers.

The paper assumes "the database schema provides human-understandable
table and attribute names, but the user can optionally annotate the
schema to provide more readable names if required" (§2.2.1).  This
module implements that optional annotation pass: given a plain schema
and a nested mapping of readable names / synonyms / domains, it returns
a new annotated :class:`~repro.schema.schema.Schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.column import Column
from repro.schema.schema import Schema
from repro.schema.table import Table


@dataclass
class ColumnAnnotation:
    """Optional NL metadata for one column."""

    annotation: str = ""
    synonyms: tuple[str, ...] = ()
    domain: str = ""


@dataclass
class TableAnnotation:
    """Optional NL metadata for one table and its columns."""

    annotation: str = ""
    synonyms: tuple[str, ...] = ()
    columns: dict[str, ColumnAnnotation] = field(default_factory=dict)


def annotate(schema: Schema, annotations: dict[str, TableAnnotation]) -> Schema:
    """Return a copy of ``schema`` with the given annotations applied.

    Unknown table or column names raise :class:`SchemaError` — silent
    typos in annotations would otherwise silently degrade the generated
    training data.
    """
    for table_name, table_ann in annotations.items():
        table = schema.table(table_name)
        for column_name in table_ann.columns:
            table.column(column_name)

    new_tables = []
    for table in schema.tables:
        table_ann = annotations.get(table.name, TableAnnotation())
        new_columns = []
        for column in table.columns:
            col_ann = table_ann.columns.get(column.name, ColumnAnnotation())
            new_columns.append(
                Column(
                    name=column.name,
                    ctype=column.ctype,
                    annotation=col_ann.annotation or column.annotation,
                    synonyms=col_ann.synonyms or column.synonyms,
                    domain=col_ann.domain or column.domain,
                    primary_key=column.primary_key,
                )
            )
        new_tables.append(
            Table(
                table.name,
                new_columns,
                annotation=table_ann.annotation or table.annotation,
                synonyms=table_ann.synonyms or table.synonyms,
            )
        )
    return Schema(schema.name, new_tables, schema.foreign_keys)
