"""Built-in example schemas.

The catalog plays two roles in the reproduction:

* :func:`patients_schema` is the single-table medical schema of the
  paper's new *Patients* benchmark (§6.2);
* the remaining schemas form the domain pool for our Spider substitute
  benchmark (§6.1 substitution documented in DESIGN.md) — diverse
  domains, multi-table with foreign keys, so the generated workloads
  exercise joins and the train/test schema split.

All value vocabularies used to populate sample data live in
:mod:`repro.db.datagen`; here we only define structure and annotations.
"""

from __future__ import annotations

from repro.schema.column import date, floating, integer, text
from repro.schema.schema import Schema
from repro.schema.table import ForeignKey, Table


def patients_schema() -> Schema:
    """The medical schema of the Patients benchmark (paper §6.2.1)."""
    patient = Table(
        "patients",
        [
            integer("patient_id", primary_key=True, annotation="patient id"),
            text("name", synonyms=("full name",)),
            integer("age", domain="age"),
            text("gender", synonyms=("sex",)),
            text("diagnosis", synonyms=("disease", "condition")),
            integer(
                "length_of_stay",
                annotation="length of stay",
                synonyms=("stay", "hospital stay"),
                domain="duration",
            ),
        ],
        annotation="patient",
        synonyms=("person", "case"),
    )
    return Schema("patients", [patient])


def geography_schema() -> Schema:
    """A GeoQuery-flavoured geography schema (states, cities, mountains, rivers)."""
    state = Table(
        "state",
        [
            text("state_name", primary_key=True, annotation="state name", synonyms=("name",)),
            floating("area", domain="area"),
            integer("population", domain="population"),
            text("capital"),
        ],
        annotation="state",
    )
    city = Table(
        "city",
        [
            text("city_name", primary_key=True, annotation="city name", synonyms=("name",)),
            text("state_name", annotation="state name", synonyms=("state",)),
            integer("population", domain="population"),
        ],
        annotation="city",
        synonyms=("town",),
    )
    mountain = Table(
        "mountain",
        [
            text("mountain_name", primary_key=True, annotation="mountain name", synonyms=("name",)),
            text("state_name", annotation="state name", synonyms=("state",)),
            floating("height", domain="height"),
        ],
        annotation="mountain",
        synonyms=("peak",),
    )
    river = Table(
        "river",
        [
            text("river_name", primary_key=True, annotation="river name", synonyms=("name",)),
            text("state_name", annotation="state name", synonyms=("state",)),
            floating("length", domain="length"),
        ],
        annotation="river",
    )
    fks = [
        ForeignKey("city", "state_name", "state", "state_name"),
        ForeignKey("mountain", "state_name", "state", "state_name"),
        ForeignKey("river", "state_name", "state", "state_name"),
    ]
    return Schema("geography", [state, city, mountain, river], fks)


def flights_schema() -> Schema:
    """Airline flights, airports, and aircraft."""
    airport = Table(
        "airport",
        [
            text("airport_code", primary_key=True, annotation="airport code", synonyms=("code",)),
            text("airport_name", annotation="airport name", synonyms=("name",)),
            text("city"),
            integer("elevation", domain="height"),
        ],
        annotation="airport",
    )
    aircraft = Table(
        "aircraft",
        [
            text("aircraft_model", primary_key=True, annotation="aircraft model", synonyms=("model",)),
            integer("capacity", domain="size", synonyms=("seats",)),
            integer("range", domain="length"),
        ],
        annotation="aircraft",
        synonyms=("plane", "airplane"),
    )
    flight = Table(
        "flight",
        [
            integer("flight_number", primary_key=True, annotation="flight number", synonyms=("number",)),
            text("origin", annotation="origin", synonyms=("source airport",)),
            text("destination", synonyms=("target airport",)),
            text("aircraft_model", annotation="aircraft model", synonyms=("model",)),
            integer("duration", domain="duration", synonyms=("flight time",)),
            floating("price", domain="price", synonyms=("fare", "cost")),
        ],
        annotation="flight",
    )
    fks = [
        ForeignKey("flight", "origin", "airport", "airport_code"),
        ForeignKey("flight", "aircraft_model", "aircraft", "aircraft_model"),
    ]
    return Schema("flights", [airport, aircraft, flight], fks)


def university_schema() -> Schema:
    """Students, courses, and departments."""
    department = Table(
        "department",
        [
            text("dept_name", primary_key=True, annotation="department name", synonyms=("name",)),
            floating("budget", domain="price"),
            text("building"),
        ],
        annotation="department",
    )
    student = Table(
        "student",
        [
            integer("student_id", primary_key=True, annotation="student id"),
            text("name"),
            integer("age", domain="age"),
            floating("gpa", annotation="gpa", synonyms=("grade point average",)),
            text("dept_name", annotation="department name", synonyms=("department", "major")),
        ],
        annotation="student",
    )
    course = Table(
        "course",
        [
            text("course_id", primary_key=True, annotation="course id"),
            text("title", synonyms=("name",)),
            integer("credits", domain="count"),
            text("dept_name", annotation="department name", synonyms=("department",)),
        ],
        annotation="course",
        synonyms=("class",),
    )
    fks = [
        ForeignKey("student", "dept_name", "department", "dept_name"),
        ForeignKey("course", "dept_name", "department", "dept_name"),
    ]
    return Schema("university", [department, student, course], fks)


def retail_schema() -> Schema:
    """Products, orders, and customers of a web shop."""
    customer = Table(
        "customer",
        [
            integer("customer_id", primary_key=True, annotation="customer id"),
            text("name"),
            text("city"),
            integer("age", domain="age"),
        ],
        annotation="customer",
        synonyms=("client", "buyer"),
    )
    product = Table(
        "product",
        [
            integer("product_id", primary_key=True, annotation="product id"),
            text("product_name", annotation="product name", synonyms=("name",)),
            text("category"),
            floating("price", domain="price", synonyms=("cost",)),
            integer("stock", domain="count", synonyms=("inventory",)),
        ],
        annotation="product",
        synonyms=("item",),
    )
    order = Table(
        "orders",
        [
            integer("order_id", primary_key=True, annotation="order id"),
            integer("customer_id", annotation="customer id", synonyms=("customer",)),
            integer("product_id", annotation="product id", synonyms=("product",)),
            integer("quantity", domain="count", synonyms=("amount",)),
            date("order_date", annotation="order date", domain="date"),
        ],
        annotation="order",
        synonyms=("purchase",),
    )
    fks = [
        ForeignKey("orders", "customer_id", "customer", "customer_id"),
        ForeignKey("orders", "product_id", "product", "product_id"),
    ]
    return Schema("retail", [customer, product, order], fks)


def library_schema() -> Schema:
    """Books, authors, and loans."""
    author = Table(
        "author",
        [
            integer("author_id", primary_key=True, annotation="author id"),
            text("name"),
            text("country", synonyms=("nationality",)),
        ],
        annotation="author",
        synonyms=("writer",),
    )
    book = Table(
        "book",
        [
            integer("book_id", primary_key=True, annotation="book id"),
            text("title", synonyms=("name",)),
            integer("author_id", annotation="author id", synonyms=("author",)),
            integer("year", domain="date", synonyms=("publication year",)),
            integer("pages", domain="size", synonyms=("page count",)),
        ],
        annotation="book",
    )
    loan = Table(
        "loan",
        [
            integer("loan_id", primary_key=True, annotation="loan id"),
            integer("book_id", annotation="book id", synonyms=("book",)),
            text("member"),
            integer("days_out", annotation="days out", domain="duration"),
        ],
        annotation="loan",
        synonyms=("checkout",),
    )
    fks = [
        ForeignKey("book", "author_id", "author", "author_id"),
        ForeignKey("loan", "book_id", "book", "book_id"),
    ]
    return Schema("library", [author, book, loan], fks)


def restaurants_schema() -> Schema:
    """Restaurants and their ratings."""
    restaurant = Table(
        "restaurant",
        [
            integer("restaurant_id", primary_key=True, annotation="restaurant id"),
            text("name"),
            text("city"),
            text("cuisine", synonyms=("food type",)),
            floating("rating", synonyms=("score", "stars")),
            floating("avg_price", annotation="average price", domain="price", synonyms=("price",)),
        ],
        annotation="restaurant",
        synonyms=("eatery", "diner"),
    )
    review = Table(
        "review",
        [
            integer("review_id", primary_key=True, annotation="review id"),
            integer("restaurant_id", annotation="restaurant id", synonyms=("restaurant",)),
            text("reviewer"),
            floating("stars", synonyms=("rating",)),
        ],
        annotation="review",
    )
    fks = [ForeignKey("review", "restaurant_id", "restaurant", "restaurant_id")]
    return Schema("restaurants", [restaurant, review], fks)


def movies_schema() -> Schema:
    """Movies, directors, and box-office figures."""
    director = Table(
        "director",
        [
            integer("director_id", primary_key=True, annotation="director id"),
            text("name"),
            integer("age", domain="age"),
        ],
        annotation="director",
        synonyms=("filmmaker",),
    )
    movie = Table(
        "movie",
        [
            integer("movie_id", primary_key=True, annotation="movie id"),
            text("title", synonyms=("name",)),
            integer("director_id", annotation="director id", synonyms=("director",)),
            integer("year", domain="date", synonyms=("release year",)),
            floating("gross", domain="price", synonyms=("box office", "revenue")),
            integer("runtime", domain="duration", synonyms=("length", "duration")),
        ],
        annotation="movie",
        synonyms=("film",),
    )
    fks = [ForeignKey("movie", "director_id", "director", "director_id")]
    return Schema("movies", [director, movie], fks)


def employees_schema() -> Schema:
    """A classic HR schema: employees and departments."""
    department = Table(
        "department",
        [
            integer("dept_id", primary_key=True, annotation="department id"),
            text("dept_name", annotation="department name", synonyms=("name",)),
            text("location"),
        ],
        annotation="department",
        synonyms=("division",),
    )
    employee = Table(
        "employee",
        [
            integer("emp_id", primary_key=True, annotation="employee id"),
            text("name"),
            integer("dept_id", annotation="department id", synonyms=("department",)),
            floating("salary", domain="salary", synonyms=("pay", "wage")),
            integer("age", domain="age"),
            text("title", synonyms=("position", "role")),
        ],
        annotation="employee",
        synonyms=("worker", "staff member"),
    )
    fks = [ForeignKey("employee", "dept_id", "department", "dept_id")]
    return Schema("employees", [department, employee], fks)


def automotive_schema() -> Schema:
    """Cars and manufacturers."""
    maker = Table(
        "maker",
        [
            integer("maker_id", primary_key=True, annotation="maker id"),
            text("maker_name", annotation="maker name", synonyms=("name", "manufacturer")),
            text("country"),
        ],
        annotation="maker",
        synonyms=("manufacturer", "carmaker"),
    )
    car = Table(
        "car",
        [
            integer("car_id", primary_key=True, annotation="car id"),
            text("model"),
            integer("maker_id", annotation="maker id", synonyms=("maker",)),
            integer("horsepower", domain="speed", synonyms=("power",)),
            floating("mpg", annotation="mpg", synonyms=("fuel economy", "miles per gallon")),
            integer("year", domain="date"),
            floating("price", domain="price", synonyms=("cost",)),
        ],
        annotation="car",
        synonyms=("automobile", "vehicle"),
    )
    fks = [ForeignKey("car", "maker_id", "maker", "maker_id")]
    return Schema("automotive", [maker, car], fks)


def social_schema() -> Schema:
    """Users and posts of a social network."""
    user = Table(
        "users",
        [
            integer("user_id", primary_key=True, annotation="user id"),
            text("username", synonyms=("handle", "name")),
            integer("followers", domain="count", synonyms=("follower count",)),
            integer("age", domain="age"),
            text("city"),
        ],
        annotation="user",
        synonyms=("member", "account"),
    )
    post = Table(
        "post",
        [
            integer("post_id", primary_key=True, annotation="post id"),
            integer("user_id", annotation="user id", synonyms=("user", "author")),
            integer("likes", domain="count", synonyms=("like count",)),
            integer("shares", domain="count", synonyms=("share count",)),
        ],
        annotation="post",
        synonyms=("message", "status update"),
    )
    fks = [ForeignKey("post", "user_id", "users", "user_id")]
    return Schema("social", [user, post], fks)


#: Factories for every built-in schema, keyed by schema name.
SCHEMA_FACTORIES = {
    "patients": patients_schema,
    "geography": geography_schema,
    "flights": flights_schema,
    "university": university_schema,
    "retail": retail_schema,
    "library": library_schema,
    "restaurants": restaurants_schema,
    "movies": movies_schema,
    "employees": employees_schema,
    "automotive": automotive_schema,
    "social": social_schema,
}


def load_schema(name: str) -> Schema:
    """Instantiate a built-in schema by name."""
    try:
        factory = SCHEMA_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown schema {name!r}; available: {sorted(SCHEMA_FACTORIES)}"
        ) from None
    return factory()


def all_schemas() -> list[Schema]:
    """Instantiate every built-in schema."""
    return [factory() for factory in SCHEMA_FACTORIES.values()]
