"""The :class:`Schema` — tables, foreign keys, and the join graph.

The schema is the *only required input* to DBPal's training pipeline
(paper §1).  Beyond bookkeeping, it provides the two pieces of schema
reasoning the paper relies on:

* a *join graph* over tables (nodes are tables, edges are foreign keys),
  used by the runtime post-processor to expand the ``@JOIN`` placeholder
  with the shortest join path (§5.1); and
* column lookup by name across tables, used by the FROM-clause repair
  step (§4.2).
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.errors import SchemaError
from repro.schema.column import Column
from repro.schema.table import ForeignKey, Table


class Schema:
    """A relational database schema with NL annotations.

    Parameters
    ----------
    name:
        Identifier for the schema (e.g. ``"patients"``); doubles as the
        domain name in multi-schema benchmarks.
    tables:
        The schema's tables; names must be unique.
    foreign_keys:
        Directed FK edges. Both endpoints must exist.
    """

    def __init__(
        self,
        name: str,
        tables: list[Table] | tuple[Table, ...],
        foreign_keys: list[ForeignKey] | tuple[ForeignKey, ...] = (),
    ) -> None:
        if not tables:
            raise SchemaError(f"schema {name!r} must have at least one table")
        self.name = name
        self.tables = tuple(tables)
        self._by_name = {t.name: t for t in self.tables}
        if len(self._by_name) != len(self.tables):
            raise SchemaError(f"duplicate table names in schema {name!r}")
        self.foreign_keys = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for tbl, col in ((fk.table, fk.column), (fk.ref_table, fk.ref_column)):
                if tbl not in self._by_name:
                    raise SchemaError(f"foreign key {fk} references unknown table {tbl!r}")
                if col not in self._by_name[tbl]:
                    raise SchemaError(f"foreign key {fk} references unknown column {col!r}")
        self._join_graph = self._build_join_graph()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._by_name

    def __iter__(self):
        return iter(self.tables)

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, tables={[t.name for t in self.tables]})"

    def table(self, name: str) -> Table:
        """Return the table called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def column(self, table_name: str, column_name: str) -> Column:
        """Return ``table_name.column_name``."""
        return self.table(table_name).column(column_name)

    def tables_with_column(self, column_name: str) -> tuple[Table, ...]:
        """All tables containing a column called ``column_name``.

        Used by the FROM-clause repair step: when the model emits a
        column whose table is missing from the FROM clause, the repair
        step looks the column up here (§4.2).
        """
        return tuple(t for t in self.tables if column_name in t)

    def qualified_columns(self) -> list[tuple[Table, Column]]:
        """All (table, column) pairs in schema order."""
        return [(t, c) for t in self.tables for c in t.columns]

    # ------------------------------------------------------------------
    # Join graph
    # ------------------------------------------------------------------

    def _build_join_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.table_names)
        for fk in self.foreign_keys:
            # Keep the FK on the edge so join conditions can be recovered.
            graph.add_edge(fk.table, fk.ref_table, fk=fk)
        return graph

    @property
    def join_graph(self) -> nx.Graph:
        """The undirected join graph (read-only by convention)."""
        return self._join_graph

    def join_path(self, tables: list[str] | tuple[str, ...]) -> list[ForeignKey]:
        """Shortest join path connecting all ``tables``.

        Implements the paper's post-processing rule: "In case multiple
        join paths are possible ... we select the join path that is
        minimal in its length" (§5.1).  For two tables this is a plain
        shortest path; for more, we grow a Steiner-tree-like union of
        pairwise shortest paths, which is exact for the tree-shaped
        schemas used in the paper's workloads.

        Returns the FK edges along the path (deduplicated, in discovery
        order).  Raises :class:`SchemaError` when some tables cannot be
        connected.
        """
        wanted = list(dict.fromkeys(tables))
        for name in wanted:
            if name not in self._by_name:
                raise SchemaError(f"schema {self.name!r} has no table {name!r}")
        if len(wanted) <= 1:
            return []
        edges: list[ForeignKey] = []
        seen_edges: set[frozenset[str]] = set()
        connected = {wanted[0]}
        for target in wanted[1:]:
            if target in connected:
                continue
            path = self._shortest_path_to_set(target, connected)
            for left, right in itertools.pairwise(path):
                key = frozenset((left, right))
                if key not in seen_edges:
                    seen_edges.add(key)
                    edges.append(self._join_graph.edges[left, right]["fk"])
            connected.update(path)
        return edges

    def _shortest_path_to_set(self, source: str, targets: set[str]) -> list[str]:
        """Shortest path from ``source`` to any node in ``targets``."""
        best: list[str] | None = None
        for target in sorted(targets):
            try:
                path = nx.shortest_path(self._join_graph, source, target)
            except nx.NetworkXNoPath:
                continue
            if best is None or len(path) < len(best):
                best = path
        if best is None:
            raise SchemaError(
                f"no join path connects table {source!r} to {sorted(targets)} "
                f"in schema {self.name!r}"
            )
        return best

    def join_tables(self, tables: list[str] | tuple[str, ...]) -> list[str]:
        """All tables on the join path (endpoints plus intermediates)."""
        names = list(dict.fromkeys(tables))
        for fk in self.join_path(names):
            for name in (fk.table, fk.ref_table):
                if name not in names:
                    names.append(name)
        return names
