"""Rule-based English lemmatizer.

DBPal lemmatizes both the generated training pairs and the runtime
input "to normalize the representation of individual words ...
different forms of the same word are mapped to the word's root" (paper
§2.2.3, §4.1) — e.g. *is/are/am → be*, *cars/car's → car*.

We implement a conservative suffix-stripping lemmatizer with exception
tables for irregular verbs and nouns, in the spirit of the WordNet
morphy algorithm but dependency-free.  It is deliberately conservative:
an over-aggressive lemmatizer (e.g. *during → dure*) would corrupt the
training distribution, which hurts more than missing a rare form.
"""

from __future__ import annotations

from functools import lru_cache

from repro.nlp.tokenizer import is_placeholder_token

#: Irregular verb forms -> lemma (includes the copula per the paper).
IRREGULAR_VERBS = {
    "am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
    "been": "be", "being": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "goes": "go", "went": "go", "gone": "go",
    "gave": "give", "given": "give",
    "got": "get", "gotten": "get",
    "made": "make", "took": "take", "taken": "take",
    "said": "say", "shown": "show", "showed": "show",
    "found": "find", "kept": "keep", "held": "hold",
    "paid": "pay", "sold": "sell", "bought": "buy",
    "stayed": "stay", "came": "come",
    "saw": "see", "seen": "see",
    "wrote": "write", "written": "write",
    "treated": "treat", "diagnosed": "diagnose",
}

#: Irregular noun plurals -> singular.
IRREGULAR_NOUNS = {
    "people": "person", "children": "child", "men": "man", "women": "woman",
    "feet": "foot", "teeth": "tooth", "mice": "mouse", "geese": "goose",
    "data": "datum", "criteria": "criterion", "indices": "index",
    "diagnoses": "diagnosis", "analyses": "analysis", "theses": "thesis",
    "staff": "staff", "series": "series", "species": "species",
}

#: Words that look inflected but are not; never strip these.
PROTECTED = frozenset(
    """
    during its this thus less best address business analysis diagnosis
    status always perhaps species series news plus various bus gas
    class cross process access mass loss pass express themselves hers
    ours yours theirs whose these those press stress
    """.split()
)

#: Adjectives whose -er/-est forms we fold back (used by comparatives).
GRADABLE_ADJECTIVES = frozenset(
    """
    old young tall short long small large big high low great cheap
    fast slow heavy light new late early few strong weak deep wide
    narrow rich poor sick busy close near far safe
    """.split()
)

_VOWELS = set("aeiou")


def lemmatize_word_uncached(word: str) -> str:
    """Lemma of a single lower-case word (uncached implementation).

    Kept importable so tests and perf ablations can compare the cached
    wrapper against the raw rules.
    """
    if is_placeholder_token(word) or not word.isalpha():
        # Placeholders, numbers, and punctuation pass through.
        return _strip_possessive(word)
    if word in IRREGULAR_VERBS:
        return IRREGULAR_VERBS[word]
    if word in IRREGULAR_NOUNS:
        return IRREGULAR_NOUNS[word]
    if word in PROTECTED or len(word) <= 3:
        return word

    # Superlative / comparative of known gradable adjectives.
    for suffix, min_len in (("est", 2), ("er", 2)):
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            for candidate in (stem, stem + "e", stem[:-1] if stem and stem[-1] == stem[-2:-1] else stem):
                if candidate in GRADABLE_ADJECTIVES:
                    return candidate
            # larg+est -> large
            if stem and (stem + "e") in GRADABLE_ADJECTIVES:
                return stem + "e"

    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("sses") or word.endswith("shes") or word.endswith("ches") or word.endswith("xes"):
        return word[:-2]
    if word.endswith("oes") and len(word) > 4:
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s") and not word.endswith("us") and not word.endswith("is"):
        return word[:-1]

    if word.endswith("ied") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ed") and len(word) > 4:
        return _strip_participle(word, 2)
    if word.endswith("ing") and len(word) > 5:
        return _strip_participle(word, 3)
    return word


#: Corpus synthesis lemmatizes the same small vocabulary hundreds of
#: thousands of times; the suffix rules are pure, so an unbounded cache
#: (vocabulary-sized in practice) removes them from the hot path.
lemmatize_word = lru_cache(maxsize=None)(lemmatize_word_uncached)


def _strip_participle(word: str, suffix_len: int) -> str:
    stem = word[:-suffix_len]
    # doubled final consonant: stopped -> stop, running -> run
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS and stem[-1] not in "sl":
        return stem[:-1]
    # consonant + e elision: stored -> store, hiring -> hire
    if len(stem) >= 2 and stem[-1] not in _VOWELS and stem[-2] in _VOWELS:
        candidate = stem + "e"
        if candidate.endswith(("are", "ore", "ure", "ire", "ive", "ate", "ame", "ase", "ose", "ide", "ine", "age")):
            return candidate
    return stem


def _strip_possessive(word: str) -> str:
    if word.endswith("'s"):
        return word[:-2]
    if word.endswith("'"):
        return word[:-1]
    return word


def lemmatize_tokens(tokens: list[str]) -> list[str]:
    """Lemmatize a token sequence (placeholders untouched).

    Tokens that lemmatize to nothing (a bare possessive apostrophe)
    are dropped so the output re-tokenizes stably.
    """
    out = [lemmatize_word(_strip_possessive(t)) for t in tokens]
    return [t for t in out if t]


def lemmatize(text: str) -> str:
    """Tokenize and lemmatize ``text``, returning a space-joined string."""
    from repro.nlp.tokenizer import tokenize

    return " ".join(lemmatize_tokens(tokenize(text)))
