"""A rule-based part-of-speech tagger (paper §3.2.3 extension).

The paper's future-work list: "we plan to investigate the idea of using
an off-the-shelf part-of-speech tagger to annotate each word in a given
NL query ... to apply the word removal only for certain classes of
words."  No off-the-shelf tagger is available offline, so this module
implements a compact lexicon + suffix tagger sufficient for the
database-question register the pipeline generates.

Tagset (coarse, Universal-POS-inspired): NOUN, VERB, ADJ, ADV, DET,
ADP (prepositions), PRON, CONJ, AUX, WH, NUM, PUNCT, PLACEHOLDER.
"""

from __future__ import annotations

from repro.nlp.tokenizer import is_placeholder_token

NOUN = "NOUN"
VERB = "VERB"
ADJ = "ADJ"
ADV = "ADV"
DET = "DET"
ADP = "ADP"
PRON = "PRON"
CONJ = "CONJ"
AUX = "AUX"
WH = "WH"
NUM = "NUM"
PUNCT = "PUNCT"
PLACEHOLDER = "PLACEHOLDER"

_LEXICON: dict[str, str] = {}


def _add(tag: str, words: str) -> None:
    for word in words.split():
        _LEXICON[word] = tag


_add(DET, "the a an this that these those each every all both some any no")
_add(
    ADP,
    "of in on at by with from to for over under above below between "
    "among per across near within without against during through",
)
_add(PRON, "i you he she it we they me him her us them their its his my your our")
_add(CONJ, "and or but nor so yet")
_add(AUX, "be is are am was were been being do does did have has had will would can could should may might must")
_add(WH, "what which who whom whose where when why how")
_add(
    VERB,
    "show display list find get give tell return retrieve count compute "
    "calculate select choose pick enumerate identify rank sort order "
    "stay stayed live work cost earn contain include belong exist "
    "appear occur exceed surpass want need know see make reveal bring "
    "write hand inform dig presented lay indicate demonstrate showcase",
)
_add(
    ADJ,
    "average mean total maximum minimum largest smallest highest lowest "
    "greatest least distinct different unique old young tall short long "
    "small large big high low great cheap fast slow heavy light new "
    "recent late early expensive costly inexpensive affordable elevated "
    "reduced typical usual overall combined peak bottom accumulated "
    "populous sick lengthy brief huge sizable little tiny",
)
_add(ADV, "approximately basically virtually essentially roughly somewhat only also too very most more less")

#: Suffix heuristics, first match wins (checked on unknown words).
_SUFFIX_RULES: tuple[tuple[str, str], ...] = (
    ("ly", ADV),
    ("ing", VERB),
    ("ed", VERB),
    ("tion", NOUN),
    ("ment", NOUN),
    ("ness", NOUN),
    ("ity", NOUN),
    ("ous", ADJ),
    ("ful", ADJ),
    ("ive", ADJ),
    ("ible", ADJ),
    ("able", ADJ),
    ("est", ADJ),
)


def tag_word(word: str) -> str:
    """POS tag of a single token."""
    if is_placeholder_token(word):
        return PLACEHOLDER
    if not word:
        return PUNCT
    if word[0].isdigit() or (word[0] == "-" and word[1:2].isdigit()):
        return NUM
    if not word[0].isalpha():
        return PUNCT
    lowered = word.lower()
    tag = _LEXICON.get(lowered)
    if tag is not None:
        return tag
    for suffix, suffix_tag in _SUFFIX_RULES:
        if lowered.endswith(suffix) and len(lowered) > len(suffix) + 2:
            return suffix_tag
    return NOUN


def tag_tokens(tokens: list[str]) -> list[tuple[str, str]]:
    """Tag a token sequence; returns (token, tag) pairs."""
    return [(token, tag_word(token)) for token in tokens]


def tag(text: str) -> list[tuple[str, str]]:
    """Tokenize and tag ``text``."""
    from repro.nlp.tokenizer import tokenize

    return tag_tokens(tokenize(text))


#: Word classes that are safe to drop in the missing-information
#: augmentation: function words and auxiliaries carry little content,
#: and verbs/adjectives are the paper's canonical "diagnosed with" case.
DROPPABLE_TAGS = frozenset({DET, ADP, PRON, AUX, ADV, VERB, ADJ, WH})
