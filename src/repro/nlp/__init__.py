"""NLP substrate: tokenizer, lemmatizer, paraphrase database, lexicons."""

from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.extra_paraphrases import (
    EXTRA_PARAPHRASE_GROUPS,
    combined_paraphrase_database,
)
from repro.nlp.lemmatizer import (
    lemmatize,
    lemmatize_tokens,
    lemmatize_word,
    lemmatize_word_uncached,
)
from repro.nlp.pos import DROPPABLE_TAGS, tag, tag_tokens, tag_word
from repro.nlp.lexicons import (
    AGGREGATE_PHRASES,
    COMPARISON_PHRASES,
    COUNT_QUESTION_PHRASES,
    DOMAIN_COMPARATIVES,
    DOMAIN_SUPERLATIVES,
    FROM_PHRASES,
    GROUP_PHRASES,
    SELECT_PHRASES,
    WHERE_PHRASES,
    comparative_phrases,
    superlative_phrases,
)
from repro.nlp.ppdb import PARAPHRASE_GROUPS, ParaphraseDatabase, ParaphraseEntry
from repro.nlp.tokenizer import detokenize, is_placeholder_token, tokenize
from repro.nlp.vocab import BOS, EOS, PAD, UNK, Vocab

__all__ = [
    "AGGREGATE_PHRASES",
    "BOS",
    "DROPPABLE_TAGS",
    "EXTRA_PARAPHRASE_GROUPS",
    "combined_paraphrase_database",
    "tag",
    "tag_tokens",
    "tag_word",
    "COMPARISON_PHRASES",
    "COUNT_QUESTION_PHRASES",
    "DOMAIN_COMPARATIVES",
    "DOMAIN_SUPERLATIVES",
    "EOS",
    "FROM_PHRASES",
    "GROUP_PHRASES",
    "PAD",
    "PARAPHRASE_GROUPS",
    "ParaphraseDatabase",
    "ParaphraseEntry",
    "SELECT_PHRASES",
    "UNK",
    "Vocab",
    "WHERE_PHRASES",
    "WordEmbeddings",
    "comparative_phrases",
    "detokenize",
    "is_placeholder_token",
    "lemmatize",
    "lemmatize_tokens",
    "lemmatize_word",
    "lemmatize_word_uncached",
    "superlative_phrases",
    "tokenize",
]
