"""A synthetic Paraphrase Database (PPDB stand-in).

The real PPDB [Pavlick & Callison-Burch 2016] is a 220-million-pair
paraphrase resource extracted from bilingual corpora; it is not
available offline.  This module provides a drop-in functional
equivalent exposing what DBPal actually uses (paper §3.2.1):

* n-gram lookup: given a unigram/bigram/short phrase, return candidate
  paraphrases ranked by a quality score;
* a *quality/noise mix*: real PPDB "includes some paraphrases that are
  of low quality", which is exactly the trade-off the ``size_para`` /
  ``num_para`` tuning targets.  Our database therefore combines a
  curated high-quality paraphrase lexicon with a deterministic noise
  model that injects low-quality (meaning-distorting) paraphrases at a
  configurable rate.

Substitution argument (DESIGN.md #1): DBPal treats PPDB as an opaque
``phrase -> [(paraphrase, score)]`` service; every behaviour the paper
measures — augmentation breadth, robustness gains, degradation under
aggressive paraphrasing — is a function of that interface, which this
class preserves.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: Curated paraphrase groups. All phrases within a group paraphrase one
#: another (symmetric closure), mirroring PPDB's lexical and phrasal
#: paraphrase tables. Groups are kept domain-general on purpose: the
#: database must be reusable across schemas, like the real PPDB.
PARAPHRASE_GROUPS: tuple[tuple[str, ...], ...] = (
    # verbs of showing / requesting
    ("show", "display", "list", "present", "give", "return", "indicate"),
    ("show me", "give me", "tell me", "let me see"),
    ("find", "retrieve", "locate", "look up", "get"),
    ("enumerate", "list", "identify", "itemize"),
    ("select", "choose", "pick"),
    ("count", "tally", "enumerate"),
    ("compute", "calculate", "determine", "work out"),
    # question starters
    ("what is", "what 's", "tell me"),
    ("what are", "which are", "tell me"),
    ("how many", "what number of", "how much"),
    # aggregates
    ("average", "mean", "typical"),
    ("total", "overall", "combined", "sum of"),
    ("maximum", "largest", "highest", "greatest", "top", "biggest"),
    ("minimum", "smallest", "lowest", "least"),
    ("number", "count", "amount", "quantity"),
    # comparisons
    ("greater than", "more than", "larger than", "above", "over", "exceeding"),
    ("less than", "smaller than", "fewer than", "below", "under"),
    ("equal to", "exactly", "the same as"),
    ("at least", "no less than", "not below"),
    ("at most", "no more than", "not above"),
    ("between", "in the range of", "ranging from"),
    # quantifiers / determiners
    ("all", "every", "each", "the complete set of"),
    ("any", "some"),
    ("distinct", "different", "unique"),
    # relational glue
    ("with", "having", "that have", "who have", "possessing"),
    ("whose", "with a", "that have a"),
    ("for each", "per", "grouped by", "by"),
    ("ordered by", "sorted by", "ranked by", "arranged by"),
    ("in descending order", "from highest to lowest", "decreasing"),
    ("in ascending order", "from lowest to highest", "increasing"),
    # common nouns in database questions
    ("rows", "records", "entries", "tuples"),
    ("value", "figure", "amount"),
    ("information", "details", "data"),
    # misc verbs
    ("stayed", "remained", "spent time"),
    ("live", "reside", "dwell"),
    ("work", "be employed"),
    ("cost", "be priced at"),
    ("earn", "make", "be paid"),
    ("contain", "include", "hold"),
    ("belong to", "be part of", "be in"),
    ("located in", "situated in", "found in"),
    ("older than", "above the age of", "aged over"),
    ("younger than", "below the age of", "aged under"),
    ("name", "call"),
    ("people", "persons", "individuals"),
    ("biggest", "largest", "greatest"),
    ("exceed", "surpass", "be above"),
    # adjectives
    ("long", "lengthy", "extended"),
    ("short", "brief"),
    ("big", "large", "huge", "sizable"),
    ("small", "little", "tiny"),
    ("high", "elevated"),
    ("low", "reduced"),
    ("new", "recent"),
    ("old", "aged"),
    ("expensive", "costly", "pricey"),
    ("cheap", "inexpensive", "affordable"),
)

#: Word pool used by the noise model to fabricate low-quality
#: paraphrases (the real PPDB's long tail of bad entries).
_NOISE_WORDS = (
    "approximately basically virtually essentially roughly somewhat "
    "arguably reportedly allegedly formerly subsequently meanwhile "
    "thing stuff case matter instance aspect regard concern item"
).split()


@dataclass(frozen=True)
class ParaphraseEntry:
    """One candidate paraphrase with its quality score in (0, 1]."""

    phrase: str
    score: float


class ParaphraseDatabase:
    """n-gram paraphrase lookup with a tunable quality/noise mix.

    Parameters
    ----------
    noise_rate:
        Fraction of returned candidates that are fabricated low-quality
        paraphrases (score <= ``noise_score``).  ``0.0`` gives a clean
        lexicon; the default ``0.15`` approximates PPDB's noisy tail.
    noise_score:
        Quality score assigned to fabricated paraphrases.
    seed:
        Seed for the deterministic noise model.
    """

    def __init__(
        self,
        groups: tuple[tuple[str, ...], ...] = PARAPHRASE_GROUPS,
        noise_rate: float = 0.15,
        noise_score: float = 0.2,
        seed: int = 13,
    ) -> None:
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError(f"noise_rate must be in [0, 1): {noise_rate}")
        self._noise_rate = noise_rate
        self._noise_score = noise_score
        self._seed = seed
        self._table: dict[str, list[ParaphraseEntry]] = {}
        for group in groups:
            for phrase in group:
                alternatives = [p for p in group if p != phrase]
                entries = self._table.setdefault(phrase, [])
                known = {e.phrase for e in entries}
                for position, alternative in enumerate(alternatives):
                    if alternative in known:
                        continue
                    # Earlier group members are more canonical: decay score.
                    score = max(0.5, 1.0 - 0.08 * position)
                    entries.append(ParaphraseEntry(alternative, score))
                    known.add(alternative)
        # Prebuilt n-gram index: entries are sorted once here instead of
        # on every lookup, and the longest n-gram is precomputed (the
        # paraphraser reads it for every training pair).
        for entries in self._table.values():
            entries.sort(key=lambda e: (-e.score, e.phrase))
        self._max_ngram = max(len(k.split()) for k in self._table) if self._table else 0
        #: phrase -> fully resolved (noise included) candidate tuple.
        self._lookup_cache: dict[str, tuple[ParaphraseEntry, ...]] = {}

    def __len__(self) -> int:
        return sum(len(v) for v in self._table.values())

    def __getstate__(self) -> dict:
        # The lazily grown lookup cache can be corpus-sized; drop it
        # when the database is shipped to parallel synthesis workers.
        state = dict(self.__dict__)
        state["_lookup_cache"] = {}
        return state

    @property
    def max_ngram(self) -> int:
        """Longest phrase length (in words) present in the table."""
        return self._max_ngram

    def lookup(self, phrase: str, max_candidates: int | None = None) -> list[ParaphraseEntry]:
        """Paraphrase candidates for ``phrase``, best score first.

        A deterministic per-phrase noise draw decides whether fabricated
        low-quality candidates are appended, so the same phrase always
        returns the same candidate list for a given database instance —
        which is also what makes the per-phrase cache safe.
        """
        phrase = phrase.lower().strip()
        cached = self._lookup_cache.get(phrase)
        if cached is None:
            cached = tuple(self._resolve(phrase))
            self._lookup_cache[phrase] = cached
        entries = list(cached)
        if max_candidates is not None:
            entries = entries[:max_candidates]
        return entries

    def _resolve(self, phrase: str) -> list[ParaphraseEntry]:
        """Uncached candidate resolution (curated entries + noise draw)."""
        entries = list(self._table.get(phrase, ()))
        if self._noise_rate > 0.0 and phrase:
            # crc32 (not hash()) so the draw is stable across processes.
            rng = np.random.default_rng(
                (self._seed, zlib.crc32(phrase.encode("utf-8")))
            )
            if rng.random() < self._noise_rate:
                entries.append(
                    ParaphraseEntry(self._fabricate(phrase, rng), self._noise_score)
                )
                entries.sort(key=lambda e: (-e.score, e.phrase))
        return entries

    def _fabricate(self, phrase: str, rng: np.random.Generator) -> str:
        """A low-quality paraphrase: hedge word plus/instead of the phrase."""
        filler = _NOISE_WORDS[int(rng.integers(len(_NOISE_WORDS)))]
        words = phrase.split()
        if len(words) > 1 and rng.random() < 0.5:
            # Drop one word and prepend a hedge: meaning-distorting.
            drop = int(rng.integers(len(words)))
            kept = [w for i, w in enumerate(words) if i != drop]
            return " ".join([filler, *kept])
        return f"{filler} {phrase}"

    def contains(self, phrase: str) -> bool:
        """Whether the curated lexicon has an entry for ``phrase``."""
        return phrase.lower().strip() in self._table

    def vocabulary(self) -> list[str]:
        """All curated source phrases (sorted)."""
        return sorted(self._table)
