"""A second paraphrase source (paper §3.2.3 extension).

"One possible avenue is to enhance our automatic paraphrasing using
other language sources and not only PPDB."  This module provides a
colloquial-register paraphrase table that can be merged with the main
synthetic PPDB via :func:`combined_paraphrase_database`, widening the
augmentation's lexical coverage.

The groups here are deliberately disjoint from both the main PPDB
groups and the Spider substitute's held-out ``HUMAN_STYLE`` table, so
enabling the extra source never leaks benchmark test phrasing into
training (verified by tests).
"""

from __future__ import annotations

from repro.nlp.ppdb import PARAPHRASE_GROUPS, ParaphraseDatabase

#: Colloquial/informal paraphrase groups.
EXTRA_PARAPHRASE_GROUPS: tuple[tuple[str, ...], ...] = (
    ("show me", "pull up", "bring me"),
    ("list", "run down", "spell out"),
    ("how many", "how big a number of",),
    ("average", "middle of the road",),
    ("maximum", "absolute top",),
    ("minimum", "rock bottom",),
    ("greater than", "upwards of", "north of"),
    ("less than", "short of", "south of"),
    ("all", "the whole lot of", "the entirety of"),
    ("sorted by", "lined up according to",),
    ("count", "add up",),
    ("patients", "folks in care",),
    ("expensive", "steep", "high end"),
    ("cheap", "budget", "low end"),
    ("big", "oversized",),
    ("small", "undersized",),
)


def combined_paraphrase_database(
    noise_rate: float = 0.15, seed: int = 13
) -> ParaphraseDatabase:
    """The main PPDB merged with the extra colloquial source.

    Pass the result to :class:`~repro.core.pipeline.TrainingPipeline`
    (its ``ppdb`` argument) to enable the widened augmentation.
    """
    return ParaphraseDatabase(
        groups=PARAPHRASE_GROUPS + EXTRA_PARAPHRASE_GROUPS,
        noise_rate=noise_rate,
        seed=seed,
    )
