"""Token vocabulary with special symbols for sequence models."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"

SPECIALS = (PAD, BOS, EOS, UNK)


class Vocab:
    """A bidirectional token <-> id mapping.

    Ids 0..3 are reserved for PAD/BOS/EOS/UNK; remaining tokens are
    ordered by descending frequency then alphabetically, which makes
    vocabularies deterministic for a given corpus.
    """

    def __init__(self, tokens: Iterable[str] = (), min_count: int = 1) -> None:
        counts = Counter(tokens)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        self._itos: list[str] = list(SPECIALS)
        self._itos.extend(t for t, c in ordered if c >= min_count and t not in SPECIALS)
        self._stoi = {t: i for i, t in enumerate(self._itos)}

    @classmethod
    def from_sequences(cls, sequences: Iterable[Iterable[str]], min_count: int = 1) -> "Vocab":
        """Build a vocabulary from an iterable of token sequences."""
        return cls((t for seq in sequences for t in seq), min_count=min_count)

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    @property
    def pad_id(self) -> int:
        return self._stoi[PAD]

    @property
    def bos_id(self) -> int:
        return self._stoi[BOS]

    @property
    def eos_id(self) -> int:
        return self._stoi[EOS]

    @property
    def unk_id(self) -> int:
        return self._stoi[UNK]

    def id_of(self, token: str) -> int:
        """Id of ``token`` (UNK id when out of vocabulary)."""
        return self._stoi.get(token, self._stoi[UNK])

    def token_of(self, index: int) -> str:
        """Token at ``index``."""
        return self._itos[index]

    def encode(self, tokens: Iterable[str], add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Encode tokens to ids, optionally wrapping with BOS/EOS."""
        ids = [self.id_of(t) for t in tokens]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Iterable[int], strip_special: bool = True) -> list[str]:
        """Decode ids to tokens, optionally dropping special symbols."""
        tokens = [self._itos[i] for i in ids]
        if strip_special:
            tokens = [t for t in tokens if t not in SPECIALS]
        return tokens

    @property
    def tokens(self) -> list[str]:
        """All tokens, id order (includes specials)."""
        return list(self._itos)

    def to_dict(self) -> dict:
        """Serializable representation (for checkpoints)."""
        return {"itos": self._itos}

    @classmethod
    def from_dict(cls, payload: dict) -> "Vocab":
        vocab = cls.__new__(cls)
        vocab._itos = list(payload["itos"])
        vocab._stoi = {t: i for i, t in enumerate(vocab._itos)}
        return vocab
