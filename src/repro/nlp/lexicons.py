"""Slot-fill lexicons: the "manually crafted dictionaries of synonymous
words and phrases" of paper §3.1.

These dictionaries fill the speech-variation slots of the NL templates
(*SelectPhrase*, *WherePhrase*, ...), verbalize aggregates and
comparison operators, and provide the comparative/superlative
dictionaries used by the domain-aware augmentation step (§3.2.3).
They are schema-independent and reusable across databases, exactly as
the paper requires of its seed resources.
"""

from __future__ import annotations

from repro.schema.column import KNOWN_DOMAINS
from repro.sql.ast import AggFunc, CompOp

#: Phrases that open a data-retrieval command (SelectPhrase slot).
SELECT_PHRASES = (
    "show me",
    "show",
    "what is",
    "what are",
    "list",
    "give me",
    "display",
    "return",
    "find",
    "get",
    "tell me",
    "retrieve",
)

#: Phrases introducing a filter (WherePhrase slot).
WHERE_PHRASES = (
    "with",
    "whose",
    "where",
    "that have",
    "having",
    "for which",
)

#: Phrases linking attributes to tables (FromPhrase slot).
FROM_PHRASES = (
    "of all",
    "of",
    "for all",
    "for",
    "from",
    "belonging to",
)

#: NL verbalizations per aggregate function.
AGGREGATE_PHRASES: dict[AggFunc, tuple[str, ...]] = {
    AggFunc.AVG: ("average", "mean"),
    AggFunc.SUM: ("total", "sum of", "overall"),
    AggFunc.MIN: ("minimum", "smallest", "lowest"),
    AggFunc.MAX: ("maximum", "largest", "highest"),
    AggFunc.COUNT: ("number of", "count of"),
}

#: Question starters asking for a count.
COUNT_QUESTION_PHRASES = ("how many", "what number of")

#: NL verbalizations per comparison operator (generic domain).
COMPARISON_PHRASES: dict[CompOp, tuple[str, ...]] = {
    CompOp.EQ: ("is", "equals", "equal to", "of", "is exactly"),
    CompOp.NE: ("is not", "is different from", "other than"),
    CompOp.GT: ("greater than", "more than", "larger than", "above", "over"),
    CompOp.GE: ("at least", "no less than", "greater than or equal to"),
    CompOp.LT: ("less than", "smaller than", "below", "under", "fewer than"),
    CompOp.LE: ("at most", "no more than", "less than or equal to"),
}

#: Domain-specific comparative phrases (from the shared domain table):
#: domain -> {GT: phrase, LT: phrase}, e.g. age -> older than / younger than.
DOMAIN_COMPARATIVES: dict[str, dict[CompOp, str]] = {
    domain: {CompOp.GT: greater, CompOp.LT: lesser}
    for domain, (greater, lesser) in KNOWN_DOMAINS.items()
}

#: Domain-specific superlative phrases: domain -> (MAX phrase, MIN phrase).
DOMAIN_SUPERLATIVES: dict[str, tuple[str, str]] = {
    "age": ("oldest", "youngest"),
    "height": ("tallest", "shortest"),
    "length": ("longest", "shortest"),
    "duration": ("longest", "shortest"),
    "size": ("largest", "smallest"),
    "area": ("largest", "smallest"),
    "population": ("most populous", "least populous"),
    "price": ("most expensive", "cheapest"),
    "salary": ("best paid", "worst paid"),
    "weight": ("heaviest", "lightest"),
    "speed": ("fastest", "slowest"),
    "date": ("latest", "earliest"),
    "count": ("most", "fewest"),
}

#: Generic superlatives when no domain is known.
GENERIC_SUPERLATIVES = ("highest", "lowest")

#: Group-by verbalizations (GroupPhrase slot).
GROUP_PHRASES = ("for each", "per", "grouped by", "broken down by")

#: Order-by verbalizations.
ORDER_PHRASES_ASC = ("in ascending order of", "from lowest to highest", "sorted by")
ORDER_PHRASES_DESC = ("in descending order of", "from highest to lowest", "ranked by descending")

#: Existential openers for EXISTS-style nested queries.
EXIST_PHRASES = ("that appear in", "that are present in", "that occur in")


def comparative_phrases(op: CompOp, domain: str = "") -> tuple[str, ...]:
    """All phrases verbalizing ``op``, domain-specific ones first.

    This implements the §3.2.3 substitution table: for a column whose
    domain is ``age``, ``GT`` verbalizes as "older than" in addition to
    the generic "greater than" family.
    """
    generic = COMPARISON_PHRASES.get(op, ())
    domain_map = DOMAIN_COMPARATIVES.get(domain, {})
    specific = (domain_map[op],) if op in domain_map else ()
    return specific + generic


def superlative_phrases(domain: str = "") -> tuple[str, str]:
    """(MAX, MIN) superlative phrases for a domain."""
    return DOMAIN_SUPERLATIVES.get(domain, GENERIC_SUPERLATIVES)
