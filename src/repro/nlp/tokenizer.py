"""Word tokenizer shared by the training and runtime phases.

The tokenizer must satisfy two constraints that generic NLP tokenizers
do not: the paper's placeholders (``@AGE``, ``@STATE.NAME``, ``@JOIN``)
must survive as single tokens, and tokenization must be exactly
identical at training and inference time so the model's input
distribution does not shift.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(
    r"""
    @[A-Za-z_][A-Za-z0-9_.]*      # placeholder, possibly dotted
    | \d+\.\d+                    # decimal number
    | \d+                         # integer
    | [A-Za-z_]+(?:'[A-Za-z]+)?   # word, optionally with apostrophe (car's)
    | [<>=!]=? | <>               # comparison operators (for SQL-ish text)
    | [^\sA-Za-z0-9]              # any other single symbol
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lower-cased tokens (placeholders keep case)."""
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        token = match.group(0)
        if token.startswith("@"):
            tokens.append(token.upper().replace("@", "@", 1))
        else:
            tokens.append(token.lower())
    return tokens


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into a readable string (inverse up to spacing)."""
    out: list[str] = []
    for token in tokens:
        if token in (",", ".", "?", "!", ";", ":") and out:
            out[-1] += token
        else:
            out.append(token)
    return " ".join(out)


def is_placeholder_token(token: str) -> bool:
    """Whether a token is a constant placeholder such as ``@AGE``."""
    return token.startswith("@")
