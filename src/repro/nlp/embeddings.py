"""Distributional word embeddings (GloVe stand-in).

SyntaxSQLNet "uses pre-trained GloVe word embeddings ... which already
allows the model to handle variations of individual words efficiently"
(paper §6.1).  GloVe vectors cannot be downloaded offline, so we train
count-based embeddings with the classic PPMI + truncated-SVD recipe
(Levy & Goldberg 2014 show these approximate skip-gram/GloVe factor
models).  The embeddings are fit on whatever corpus the caller supplies
— in our benchmarks, the union of generated NL across all catalog
domains — so that synonyms used by the templates land close together.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds


class WordEmbeddings:
    """PPMI + SVD embeddings over a token corpus."""

    def __init__(self, vectors: dict[str, np.ndarray], dim: int) -> None:
        self._vectors = vectors
        self.dim = dim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        sentences: Iterable[Sequence[str]],
        dim: int = 50,
        window: int = 3,
        min_count: int = 2,
        seed: int = 11,
    ) -> "WordEmbeddings":
        """Train embeddings on tokenized ``sentences``.

        Words rarer than ``min_count`` are dropped (callers should map
        them to zero vectors via :meth:`vector`).
        """
        sentences = [list(s) for s in sentences]
        counts = Counter(t for s in sentences for t in s)
        vocab = sorted(t for t, c in counts.items() if c >= min_count)
        if not vocab:
            return cls({}, dim)
        index = {t: i for i, t in enumerate(vocab)}
        size = len(vocab)

        # Symmetric co-occurrence with linearly decaying window weights.
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for sentence in sentences:
            ids = [index.get(t) for t in sentence]
            for pos, center in enumerate(ids):
                if center is None:
                    continue
                for offset in range(1, window + 1):
                    ctx_pos = pos + offset
                    if ctx_pos >= len(ids):
                        break
                    context = ids[ctx_pos]
                    if context is None:
                        continue
                    weight = 1.0 / offset
                    rows.extend((center, context))
                    cols.extend((context, center))
                    data.extend((weight, weight))
        matrix = sp.coo_matrix((data, (rows, cols)), shape=(size, size)).tocsr()

        # Positive PMI transform.
        total = matrix.sum()
        if total == 0:
            return cls({}, dim)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        col_sums = np.asarray(matrix.sum(axis=0)).ravel()
        matrix = matrix.tocoo()
        pmi = np.log(
            (matrix.data * total)
            / (row_sums[matrix.row] * col_sums[matrix.col])
        )
        keep = pmi > 0
        ppmi = sp.coo_matrix(
            (pmi[keep], (matrix.row[keep], matrix.col[keep])), shape=(size, size)
        ).tocsc()

        k = min(dim, size - 1)
        if k < 1:
            return cls({t: np.zeros(dim) for t in vocab}, dim)
        u, s, _ = svds(ppmi.astype(np.float64), k=k, random_state=seed)
        # svds returns ascending singular values; flip for convention.
        order = np.argsort(-s)
        u = u[:, order] * np.sqrt(s[order])
        if k < dim:
            u = np.pad(u, ((0, 0), (0, dim - k)))
        norms = np.linalg.norm(u, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        u = u / norms
        return cls({t: u[i].copy() for t, i in index.items()}, dim)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word in self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def vector(self, word: str) -> np.ndarray:
        """Embedding of ``word`` (zero vector when unknown)."""
        vec = self._vectors.get(word)
        if vec is None:
            return np.zeros(self.dim)
        return vec

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity (0.0 when either word is unknown)."""
        a, b = self.vector(left), self.vector(right)
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    def nearest(self, word: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most similar in-vocabulary words."""
        if word not in self._vectors:
            return []
        scored = [
            (other, self.similarity(word, other))
            for other in self._vectors
            if other != word
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def matrix_for(self, tokens: Sequence[str]) -> np.ndarray:
        """Stack embeddings for a token list into a (len, dim) matrix."""
        return np.stack([self.vector(t) for t in tokens]) if tokens else np.zeros((0, self.dim))
