"""Abstract syntax tree for the SQL subset used throughout the paper.

The subset covers what DBPal's seed templates and the evaluation
workloads need (paper §3.1, §5):

* ``SELECT [DISTINCT] items FROM tables [WHERE pred] [GROUP BY cols]
  [HAVING pred] [ORDER BY items] [LIMIT n]``
* aggregates ``COUNT/SUM/AVG/MIN/MAX`` (with ``COUNT(*)`` and
  ``DISTINCT`` args),
* comparison / BETWEEN / IN / LIKE / EXISTS predicates combined with
  AND/OR/NOT,
* uncorrelated subqueries in scalar comparisons, ``IN`` and ``EXISTS``,
* the paper's placeholders: typed constant placeholders such as
  ``@AGE`` or ``@STATE.NAME`` and the ``@JOIN`` FROM-clause placeholder
  (§5.1).

All nodes are immutable (frozen dataclasses); equality is structural,
which the normalizer and equivalence checker build on.

Nodes produced by the parser additionally carry a :class:`Span` — the
character range of the node in the original SQL text — used by the
static analyzer (:mod:`repro.analysis`) to anchor diagnostics.  Spans
are excluded from equality and hashing (``compare=False``), so two
structurally identical queries compare equal regardless of where their
tokens sat in the source; hand-built ASTs simply leave spans ``None``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

#: Sentinel table name standing for a to-be-inferred join path (§5.1).
JOIN_PLACEHOLDER = "@JOIN"


@dataclass(frozen=True)
class Span:
    """A half-open ``[start, end)`` character range in the source SQL."""

    start: int
    end: int

    def slice(self, text: str) -> str:
        """The source fragment this span covers."""
        return text[self.start : self.end]


class AggFunc(enum.Enum):
    """Aggregate functions in the SQL subset."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


class CompOp(enum.Enum):
    """Comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "CompOp":
        """The operator with its operand order reversed (a OP b == b OP' a)."""
        return _FLIPPED[self]

    def negated(self) -> "CompOp":
        """The logical complement (NOT (a OP b) == a OP' b)."""
        return _NEGATED[self]


_FLIPPED = {
    CompOp.EQ: CompOp.EQ,
    CompOp.NE: CompOp.NE,
    CompOp.LT: CompOp.GT,
    CompOp.LE: CompOp.GE,
    CompOp.GT: CompOp.LT,
    CompOp.GE: CompOp.LE,
}

_NEGATED = {
    CompOp.EQ: CompOp.NE,
    CompOp.NE: CompOp.EQ,
    CompOp.LT: CompOp.GE,
    CompOp.LE: CompOp.GT,
    CompOp.GT: CompOp.LE,
    CompOp.GE: CompOp.LT,
}


# ----------------------------------------------------------------------
# Value expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference."""

    column: str
    table: str | None = None
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star:
    """``*`` — all columns."""

    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Literal:
    """A constant value (int, float, or string)."""

    value: int | float | str
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class Placeholder:
    """An anonymized constant such as ``@AGE`` or ``@STATE.NAME`` (§3.1).

    ``name`` stores the text after ``@``; it may be dotted to qualify
    the source table.
    """

    name: str
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return "@" + self.name

    @property
    def column(self) -> str:
        """The column part of the placeholder name."""
        return self.name.rsplit(".", 1)[-1].lower()

    @property
    def table(self) -> str | None:
        """The table part of a dotted placeholder name, if present."""
        if "." in self.name:
            return self.name.split(".", 1)[0].lower()
        return None


@dataclass(frozen=True)
class Aggregate:
    """An aggregate expression such as ``AVG(age)`` or ``COUNT(*)``."""

    func: AggFunc
    arg: ColumnRef | Star
    distinct: bool = False
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        inner = ("DISTINCT " if self.distinct else "") + str(self.arg)
        return f"{self.func.value}({inner})"


#: Anything that may appear in a SELECT list.
SelectItem = Union[ColumnRef, Aggregate, Star]

#: Anything that may appear as a comparison operand.
Operand = Union[ColumnRef, Literal, Placeholder, "Subquery", Aggregate]


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left OP right``; also encodes join conditions (column = column)."""

    left: Operand
    op: CompOp
    right: Operand
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Between:
    """``col BETWEEN low AND high``."""

    column: ColumnRef
    low: Literal | Placeholder
    high: Literal | Placeholder
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class InPredicate:
    """``col IN (v1, v2, ...)`` or ``col IN (subquery)``."""

    column: ColumnRef
    values: tuple[Literal | Placeholder, ...] = ()
    subquery: "Subquery | None" = None
    negated: bool = False
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Like:
    """``col LIKE pattern``."""

    column: ColumnRef
    pattern: Literal | Placeholder
    negated: bool = False
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Exists:
    """``EXISTS (subquery)``."""

    subquery: "Subquery"
    negated: bool = False
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Predicate"


@dataclass(frozen=True)
class And:
    """Conjunction of two or more predicates."""

    operands: tuple["Predicate", ...]

    def __post_init__(self) -> None:
        assert len(self.operands) >= 2, "And requires at least two operands"


@dataclass(frozen=True)
class Or:
    """Disjunction of two or more predicates."""

    operands: tuple["Predicate", ...]

    def __post_init__(self) -> None:
        assert len(self.operands) >= 2, "Or requires at least two operands"


Predicate = Union[Comparison, Between, InPredicate, Like, Exists, Not, And, Or]


def conjoin(predicates: list["Predicate"]) -> "Predicate | None":
    """AND together a list of predicates (None for an empty list)."""
    flat: list[Predicate] = []
    for pred in predicates:
        if isinstance(pred, And):
            flat.extend(pred.operands)
        else:
            flat.append(pred)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def conjuncts(predicate: "Predicate | None") -> list["Predicate"]:
    """Flatten a predicate into its top-level AND operands."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        result: list[Predicate] = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return result
    return [predicate]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: ColumnRef | Aggregate
    desc: bool = False


@dataclass(frozen=True)
class Query:
    """A SELECT query in the supported subset."""

    select: tuple[SelectItem, ...]
    from_tables: tuple[str, ...]
    where: Predicate | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Predicate | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
    span: Span | None = field(default=None, compare=False)

    @property
    def uses_join_placeholder(self) -> bool:
        """Whether the FROM clause is the ``@JOIN`` placeholder (§5.1)."""
        return JOIN_PLACEHOLDER in self.from_tables

    # -- traversal -----------------------------------------------------

    def walk_predicates(self) -> Iterator[Predicate]:
        """Yield every predicate node in WHERE and HAVING, recursively.

        Subquery-internal predicates are *not* yielded; use
        :meth:`walk_subqueries` and recurse explicitly when needed.
        """
        stack: list[Predicate] = []
        if self.where is not None:
            stack.append(self.where)
        if self.having is not None:
            stack.append(self.having)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (And, Or)):
                stack.extend(node.operands)
            elif isinstance(node, Not):
                stack.append(node.operand)

    def walk_subqueries(self) -> Iterator["Query"]:
        """Yield every directly nested subquery."""
        for pred in self.walk_predicates():
            if isinstance(pred, Comparison):
                for side in (pred.left, pred.right):
                    if isinstance(side, Subquery):
                        yield side.query
            elif isinstance(pred, InPredicate) and pred.subquery is not None:
                yield pred.subquery.query
            elif isinstance(pred, Exists):
                yield pred.subquery.query

    @property
    def is_nested(self) -> bool:
        """Whether the query contains at least one subquery."""
        return next(self.walk_subqueries(), None) is not None

    def placeholders(self) -> list[Placeholder]:
        """All constant placeholders, in a deterministic order."""
        found: list[Placeholder] = []

        def scan_operand(operand: Operand) -> None:
            if isinstance(operand, Placeholder):
                found.append(operand)
            elif isinstance(operand, Subquery):
                found.extend(operand.query.placeholders())

        def scan_query(query: Query) -> None:
            for pred in sorted(query.walk_predicates(), key=str):
                if isinstance(pred, Comparison):
                    scan_operand(pred.left)
                    scan_operand(pred.right)
                elif isinstance(pred, Between):
                    scan_operand(pred.low)
                    scan_operand(pred.high)
                elif isinstance(pred, InPredicate):
                    for value in pred.values:
                        scan_operand(value)
                    if pred.subquery is not None:
                        scan_query(pred.subquery.query)
                elif isinstance(pred, Like):
                    scan_operand(pred.pattern)
                elif isinstance(pred, Exists):
                    scan_query(pred.subquery.query)

        scan_query(self)
        return found

    def column_refs(self) -> list[ColumnRef]:
        """Every column reference in the query (select, where, group, order)."""
        refs: list[ColumnRef] = []

        def scan_operand(operand: Operand) -> None:
            if isinstance(operand, ColumnRef):
                refs.append(operand)
            elif isinstance(operand, Aggregate) and isinstance(operand.arg, ColumnRef):
                refs.append(operand.arg)
            elif isinstance(operand, Subquery):
                refs.extend(operand.query.column_refs())

        for item in self.select:
            if not isinstance(item, Star):
                scan_operand(item)
        for pred in self.walk_predicates():
            if isinstance(pred, Comparison):
                scan_operand(pred.left)
                scan_operand(pred.right)
            elif isinstance(pred, Between):
                refs.append(pred.column)
            elif isinstance(pred, InPredicate):
                refs.append(pred.column)
                if pred.subquery is not None:
                    refs.extend(pred.subquery.query.column_refs())
            elif isinstance(pred, Like):
                refs.append(pred.column)
            elif isinstance(pred, Exists):
                refs.extend(pred.subquery.query.column_refs())
        refs.extend(self.group_by)
        for item in self.order_by:
            scan_operand(item.expr)
        return refs

    def referenced_tables(self) -> list[str]:
        """Table names mentioned by qualified column refs (not FROM)."""
        names: list[str] = []
        for ref in self.column_refs():
            if ref.table and ref.table not in names:
                names.append(ref.table)
        return names

    def aggregates(self) -> list[Aggregate]:
        """All aggregate expressions in SELECT, HAVING and ORDER BY."""
        aggs = [item for item in self.select if isinstance(item, Aggregate)]
        for pred in conjuncts(self.having):
            if isinstance(pred, Comparison):
                for side in (pred.left, pred.right):
                    if isinstance(side, Aggregate):
                        aggs.append(side)
        for item in self.order_by:
            if isinstance(item.expr, Aggregate):
                aggs.append(item.expr)
        return aggs


@dataclass(frozen=True)
class Subquery:
    """A parenthesized nested query used as an operand."""

    query: Query

    def __str__(self) -> str:
        from repro.sql.printer import to_sql  # local import avoids a cycle

        return "(" + to_sql(self.query) + ")"
