"""Spider-style query difficulty classification.

The Spider benchmark assigns each question a difficulty — *easy*,
*medium*, *hard*, *extra* (the paper calls the last one "very hard") —
"based on the complexity of the corresponding SQL query (i.e., the
number of SQL components)" (paper §6.1.1).  We implement the published
Spider heuristic adapted to our SQL subset so that Table 2's
per-difficulty breakdown can be reproduced on the Spider substitute.
"""

from __future__ import annotations

import enum

from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Or,
    Query,
    conjuncts,
)


class Difficulty(enum.Enum):
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    VERY_HARD = "very hard"


#: Display order used by reports (matches Table 2's column order).
DIFFICULTY_ORDER = (
    Difficulty.EASY,
    Difficulty.MEDIUM,
    Difficulty.HARD,
    Difficulty.VERY_HARD,
)


def _count_component1(query: Query) -> int:
    """WHERE / GROUP BY / ORDER BY / LIMIT / JOIN / OR / LIKE occurrences."""
    count = 0
    if query.where is not None:
        count += 1
    if query.group_by:
        count += 1
    if query.order_by:
        count += 1
    if query.limit is not None:
        count += 1
    concrete_tables = [t for t in query.from_tables if t != JOIN_PLACEHOLDER]
    if len(concrete_tables) > 1 or query.uses_join_placeholder:
        count += 1
    for pred in query.walk_predicates():
        if isinstance(pred, Or):
            count += 1
        elif isinstance(pred, Like):
            count += 1
    return count


def _count_component2(query: Query) -> int:
    """Nested subqueries (we support no set operations)."""
    return sum(1 for _ in query.walk_subqueries())


def _count_others(query: Query) -> int:
    """Spider's 'other' complexity counters."""
    count = 0
    if len(query.aggregates()) > 1:
        count += 1
    if len(query.select) > 1:
        count += 1
    where_conditions = [
        pred
        for pred in conjuncts(query.where)
        if isinstance(pred, (Comparison, Like, InPredicate, Exists))
        and not _is_join_condition(pred)
    ]
    if len(where_conditions) > 1:
        count += 1
    if len(query.group_by) > 1:
        count += 1
    return count


def _is_join_condition(pred) -> bool:
    from repro.sql.ast import ColumnRef

    return (
        isinstance(pred, Comparison)
        and isinstance(pred.left, ColumnRef)
        and isinstance(pred.right, ColumnRef)
    )


def classify(query: Query) -> Difficulty:
    """Assign the Spider difficulty level to ``query``."""
    comp1 = _count_component1(query)
    comp2 = _count_component2(query)
    others = _count_others(query)
    if comp1 <= 1 and others == 0 and comp2 == 0:
        return Difficulty.EASY
    if comp2 == 0 and ((others <= 2 and comp1 <= 1) or (others < 2 and comp1 <= 2)):
        return Difficulty.MEDIUM
    if (
        (comp2 == 0 and others > 2 and comp1 <= 2)
        or (comp2 == 0 and 2 < comp1 <= 3 and others <= 2)
        or (comp2 <= 1 and comp1 <= 1 and others == 0)
    ):
        return Difficulty.HARD
    return Difficulty.VERY_HARD
