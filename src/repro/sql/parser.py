"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    query      := SELECT [DISTINCT] items FROM tables [WHERE or_pred]
                  [GROUP BY colrefs] [HAVING or_pred]
                  [ORDER BY order_items] [LIMIT number]
    items      := item (',' item)*
    item       := '*' | aggregate | colref
    aggregate  := FUNC '(' [DISTINCT] ('*' | colref) ')'
    tables     := name (',' name)*         -- a name may be @JOIN
    or_pred    := and_pred (OR and_pred)*
    and_pred   := unary_pred (AND unary_pred)*
    unary_pred := NOT unary_pred | '(' or_pred ')' | atom
    atom       := operand OP operand
                | colref [NOT] BETWEEN operand AND operand
                | colref [NOT] IN '(' (query | operand (',' operand)*) ')'
                | colref [NOT] LIKE operand
                | [NOT] EXISTS '(' query ')'
    operand    := literal | placeholder | aggregate | colref
                | '(' query ')'

The parser builds the frozen AST of :mod:`repro.sql.ast`.  It is the
inverse of :func:`repro.sql.printer.to_sql` up to normalization of
keyword case and redundant parentheses.
"""

from __future__ import annotations

from repro.errors import SqlParseError
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    CompOp,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Placeholder,
    Predicate,
    Query,
    Span,
    Star,
    Subquery,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGG_NAMES = {f.value.lower() for f in AggFunc}


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers --------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check(self, ttype: TokenType, value: str | None = None) -> bool:
        return self._current.matches(ttype, value)

    def _accept(self, ttype: TokenType, value: str | None = None) -> Token | None:
        if self._check(ttype, value):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, value: str | None = None) -> Token:
        token = self._accept(ttype, value)
        if token is None:
            got = self._current
            want = value or ttype.value
            raise SqlParseError(
                f"expected {want!r} but found {got.value!r} at position "
                f"{got.position} in {self._text!r}"
            )
        return token

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenType.KEYWORD, word) is not None

    def _span_from(self, start_index: int) -> Span:
        """Span covering tokens ``start_index`` .. the last one consumed."""
        start = self._tokens[start_index]
        last = self._tokens[max(start_index, self._index - 1)]
        return Span(start.position, last.end)

    # -- grammar --------------------------------------------------------

    def parse_query(self) -> Query:
        start = self._index
        self._expect(TokenType.KEYWORD, "select")
        distinct = self._keyword("distinct")
        select = self._parse_select_items()
        self._expect(TokenType.KEYWORD, "from")
        from_tables = self._parse_tables()
        where = None
        if self._keyword("where"):
            where = self._parse_or()
        group_by: tuple[ColumnRef, ...] = ()
        if self._keyword("group"):
            self._expect(TokenType.KEYWORD, "by")
            group_by = self._parse_column_list()
        having = None
        if self._keyword("having"):
            having = self._parse_or()
        order_by: tuple[OrderItem, ...] = ()
        if self._keyword("order"):
            self._expect(TokenType.KEYWORD, "by")
            order_by = self._parse_order_items()
        limit = None
        if self._keyword("limit"):
            limit = int(self._expect(TokenType.NUMBER).value)
        return Query(
            select=select,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            span=self._span_from(start),
        )

    def _parse_select_items(self):
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self):
        start = self._index
        if self._accept(TokenType.STAR):
            return Star(span=self._span_from(start))
        if self._current.type is TokenType.KEYWORD and self._current.value in _AGG_NAMES:
            return self._parse_aggregate()
        return self._parse_column_ref()

    def _parse_aggregate(self) -> Aggregate:
        start = self._index
        func = AggFunc(self._advance().value.upper())
        self._expect(TokenType.PUNCT, "(")
        distinct = self._keyword("distinct")
        if self._check(TokenType.STAR):
            inner = self._index
            self._advance()
            arg: ColumnRef | Star = Star(span=self._span_from(inner))
        else:
            arg = self._parse_column_ref()
        self._expect(TokenType.PUNCT, ")")
        return Aggregate(func, arg, distinct, span=self._span_from(start))

    def _parse_column_ref(self) -> ColumnRef:
        start = self._index
        first = self._expect(TokenType.IDENT).value
        if self._accept(TokenType.PUNCT, "."):
            second = self._expect(TokenType.IDENT).value
            return ColumnRef(second, table=first, span=self._span_from(start))
        return ColumnRef(first, span=self._span_from(start))

    def _parse_column_list(self) -> tuple[ColumnRef, ...]:
        cols = [self._parse_column_ref()]
        while self._accept(TokenType.PUNCT, ","):
            cols.append(self._parse_column_ref())
        return tuple(cols)

    def _parse_tables(self) -> tuple[str, ...]:
        tables = [self._parse_table_name()]
        while self._accept(TokenType.PUNCT, ","):
            tables.append(self._parse_table_name())
        return tuple(tables)

    def _parse_table_name(self) -> str:
        placeholder = self._accept(TokenType.PLACEHOLDER)
        if placeholder is not None:
            return "@" + placeholder.value
        return self._expect(TokenType.IDENT).value

    def _parse_order_items(self) -> tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        if self._current.type is TokenType.KEYWORD and self._current.value in _AGG_NAMES:
            expr: ColumnRef | Aggregate = self._parse_aggregate()
        else:
            expr = self._parse_column_ref()
        desc = False
        if self._keyword("desc"):
            desc = True
        else:
            self._keyword("asc")
        return OrderItem(expr, desc)

    # -- predicates ------------------------------------------------------

    def _parse_or(self) -> Predicate:
        operands = [self._parse_and()]
        while self._keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Predicate:
        operands = [self._parse_unary()]
        while self._keyword("and"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_unary(self) -> Predicate:
        if self._check(TokenType.KEYWORD, "not"):
            # NOT EXISTS is handled in the atom for a tidier AST.
            next_token = self._tokens[self._index + 1]
            if not next_token.matches(TokenType.KEYWORD, "exists"):
                self._advance()
                return Not(self._parse_unary())
        if self._check(TokenType.PUNCT, "("):
            # Either a parenthesized predicate or a scalar subquery
            # comparison; look ahead for SELECT.
            next_token = self._tokens[self._index + 1]
            if not next_token.matches(TokenType.KEYWORD, "select"):
                self._advance()
                inner = self._parse_or()
                self._expect(TokenType.PUNCT, ")")
                return inner
        return self._parse_atom()

    def _parse_atom(self) -> Predicate:
        start = self._index
        negated = self._keyword("not")
        if self._keyword("exists"):
            self._expect(TokenType.PUNCT, "(")
            sub = self.parse_query()
            self._expect(TokenType.PUNCT, ")")
            return Exists(Subquery(sub), negated=negated, span=self._span_from(start))
        if negated:
            raise SqlParseError(
                f"NOT must be followed by EXISTS or a predicate in {self._text!r}"
            )
        left = self._parse_operand()
        if self._check(TokenType.KEYWORD, "not") or self._check(TokenType.KEYWORD, "between") \
                or self._check(TokenType.KEYWORD, "in") or self._check(TokenType.KEYWORD, "like"):
            if not isinstance(left, ColumnRef):
                raise SqlParseError(
                    f"BETWEEN/IN/LIKE require a column on the left in {self._text!r}"
                )
            negated = self._keyword("not")
            if self._keyword("between"):
                low = self._parse_operand()
                self._expect(TokenType.KEYWORD, "and")
                high = self._parse_operand()
                between = Between(left, low, high, span=self._span_from(start))
                return Not(between) if negated else between
            if self._keyword("in"):
                return self._parse_in_tail(left, negated, start)
            if self._keyword("like"):
                pattern = self._parse_operand()
                return Like(left, pattern, negated=negated, span=self._span_from(start))
            raise SqlParseError(f"dangling NOT in {self._text!r}")
        op_token = self._expect(TokenType.OP)
        op = CompOp(op_token.value)
        right = self._parse_operand()
        return Comparison(left, op, right, span=self._span_from(start))

    def _parse_in_tail(
        self, column: ColumnRef, negated: bool, start: int
    ) -> InPredicate:
        self._expect(TokenType.PUNCT, "(")
        if self._check(TokenType.KEYWORD, "select"):
            sub = self.parse_query()
            self._expect(TokenType.PUNCT, ")")
            return InPredicate(
                column,
                subquery=Subquery(sub),
                negated=negated,
                span=self._span_from(start),
            )
        values = [self._parse_operand()]
        while self._accept(TokenType.PUNCT, ","):
            values.append(self._parse_operand())
        self._expect(TokenType.PUNCT, ")")
        return InPredicate(
            column,
            values=tuple(values),
            negated=negated,
            span=self._span_from(start),
        )

    def _parse_operand(self):
        token = self._current
        span = Span(token.position, token.end)
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text), span=span)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, span=span)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            return Placeholder(token.value, span=span)
        if token.type is TokenType.KEYWORD and token.value in _AGG_NAMES:
            return self._parse_aggregate()
        if token.matches(TokenType.PUNCT, "("):
            self._advance()
            sub = self.parse_query()
            self._expect(TokenType.PUNCT, ")")
            return Subquery(sub)
        if token.type is TokenType.IDENT:
            return self._parse_column_ref()
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.position} "
            f"in {self._text!r}"
        )

    def finish(self) -> None:
        if not self._check(TokenType.EOF):
            token = self._current
            raise SqlParseError(
                f"trailing input {token.value!r} at position {token.position} "
                f"in {self._text!r}"
            )


def parse(sql: str) -> Query:
    """Parse ``sql`` into a :class:`~repro.sql.ast.Query`.

    Raises :class:`~repro.errors.SqlParseError` (or
    :class:`~repro.errors.SqlLexError`) on invalid input.
    """
    parser = _Parser(tokenize(sql), sql)
    query = parser.parse_query()
    parser.finish()
    return query


def try_parse(sql: str) -> Query | None:
    """Parse ``sql`` or return None when it is not valid in the subset.

    Model outputs are frequently malformed; the runtime post-processor
    uses this to distinguish repairable from unrepairable translations.
    """
    from repro.errors import SqlError

    try:
        return parse(sql)
    except SqlError:
        return None
