"""Query-pattern signatures for the pattern-coverage analysis (Table 4).

A *pattern* abstracts a query down to its SQL shape: identifiers become
``T``/``C``, constants become ``V``, but aggregate functions, predicate
kinds, clause structure and nesting are preserved.  Two queries share a
pattern iff a user could obtain one from the other by renaming schema
elements and changing constants.

The paper uses this notion to split Spider test queries into four
buckets — pattern seen in *both* training sources, only in *DBPal*'s
synthesized data, only in the *Spider* training set, or in *neither*
(§6.3.1, Table 4).
"""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    Placeholder,
    Predicate,
    Query,
    Star,
    Subquery,
)
from repro.sql.normalize import normalize


def pattern_signature(query: Query) -> str:
    """Canonical pattern string for ``query``."""
    return _query_sig(normalize(query))


def _query_sig(query: Query) -> str:
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(",".join(sorted(_item_sig(i) for i in query.select)))
    if query.uses_join_placeholder or len(query.from_tables) > 1:
        parts.append("FROM JOIN")
    else:
        parts.append("FROM T")
    if query.where is not None:
        parts.append("WHERE " + _pred_sig(query.where))
    if query.group_by:
        parts.append(f"GROUPBY[{len(query.group_by)}]")
    if query.having is not None:
        parts.append("HAVING " + _pred_sig(query.having))
    if query.order_by:
        directions = "/".join(
            ("AGG" if isinstance(o.expr, Aggregate) else "C") + ("-DESC" if o.desc else "")
            for o in query.order_by
        )
        parts.append(f"ORDERBY[{directions}]")
    if query.limit is not None:
        parts.append("LIMIT")
    return " ".join(parts)


def _item_sig(item) -> str:
    if isinstance(item, Star):
        return "*"
    if isinstance(item, ColumnRef):
        return "C"
    if isinstance(item, Aggregate):
        arg = "*" if isinstance(item.arg, Star) else "C"
        distinct = "DISTINCT " if item.distinct else ""
        return f"{item.func.value}({distinct}{arg})"
    raise TypeError(f"unsupported select item: {item!r}")


def _operand_sig(operand) -> str:
    if isinstance(operand, ColumnRef):
        return "C"
    if isinstance(operand, (Literal, Placeholder)):
        return "V"
    if isinstance(operand, Aggregate):
        return _item_sig(operand)
    if isinstance(operand, Subquery):
        return "(" + _query_sig(operand.query) + ")"
    raise TypeError(f"unsupported operand: {operand!r}")


def _pred_sig(pred: Predicate) -> str:
    if isinstance(pred, Comparison):
        left = _operand_sig(pred.left)
        right = _operand_sig(pred.right)
        if left == "C" and right == "C":
            return "C JOIN C"  # join conditions are all alike
        op = "=" if pred.op.value in ("=", "<>") else "CMP"
        return f"{left} {op} {right}"
    if isinstance(pred, Between):
        return "C BETWEEN V AND V"
    if isinstance(pred, InPredicate):
        neg = "NOT " if pred.negated else ""
        if pred.subquery is not None:
            return f"C {neg}IN ({_query_sig(pred.subquery.query)})"
        return f"C {neg}IN [V]"
    if isinstance(pred, Like):
        neg = "NOT " if pred.negated else ""
        return f"C {neg}LIKE V"
    if isinstance(pred, Exists):
        neg = "NOT " if pred.negated else ""
        return f"{neg}EXISTS ({_query_sig(pred.subquery.query)})"
    if isinstance(pred, Not):
        return f"NOT ({_pred_sig(pred.operand)})"
    if isinstance(pred, And):
        return " AND ".join(sorted(_pred_sig(p) for p in pred.operands))
    if isinstance(pred, Or):
        return "(" + " OR ".join(sorted(_pred_sig(p) for p in pred.operands)) + ")"
    raise TypeError(f"unsupported predicate: {pred!r}")


def pattern_set(queries) -> set[str]:
    """Signatures of an iterable of queries (ASTs or SQL strings)."""
    from repro.sql.parser import parse

    signatures: set[str] = set()
    for query in queries:
        if isinstance(query, str):
            query = parse(query)
        signatures.add(pattern_signature(query))
    return signatures
