"""SQL dialect registry: the per-backend surface-syntax knobs.

The printer (:mod:`repro.sql.printer`) renders one AST into many SQL
surfaces; everything that varies between engines is captured here as a
:class:`Dialect` value — identifier quoting, string-literal escaping,
LIMIT placement, and the spelling table for date/string functions —
so adding a backend means registering a dialect, not forking the
printer.

Two dialects ship:

* ``default`` — the canonical dialect of the reproduction.  Its output
  is the repo-wide exact-match surface (training pairs, model output,
  benchmark gold queries), so it must stay byte-stable.
* ``sqlite``  — what :class:`repro.adapters.SqliteAdapter` feeds to a
  real ``sqlite3`` engine.

Both spell the supported subset identically except for quoting edge
cases; the registry still earns its keep because emission differences
(``TOP n`` vs ``LIMIT n``, ``GETDATE()`` vs ``DATE('now')``) are data,
demonstrated by the test suite registering a T-SQL-flavoured dialect
without touching the printer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import DialectError
from repro.sql.lexer import KEYWORDS

#: Identifiers matching this render bare; anything else must be quoted.
_PLAIN_IDENTIFIER = re.compile(r"[a-z_][a-z0-9_]*$")

#: How a dialect places the row-limit clause.
LIMIT_SUFFIX = "limit"  # ... ORDER BY x LIMIT n
LIMIT_TOP = "top"  # SELECT TOP n ... (T-SQL style)


@dataclass(frozen=True)
class Dialect:
    """One SQL surface syntax.

    ``function_spellings`` maps canonical function names (our AST's
    aggregate names plus the date/string helpers a backend may need) to
    the dialect's spelling; names not present pass through unchanged.
    """

    name: str
    identifier_quote: str = '"'
    limit_style: str = LIMIT_SUFFIX
    #: Words that must be quoted when used as identifiers.  Defaults to
    #: the lexer's keyword set so printed SQL always re-parses.
    reserved_words: frozenset[str] = KEYWORDS
    function_spellings: Mapping[str, str] = field(default_factory=dict)

    def quote_identifier(self, name: str) -> str:
        """Always-quoted form of ``name`` (quote char doubled inside)."""
        quote = self.identifier_quote
        return quote + name.replace(quote, quote * 2) + quote

    def identifier(self, name: str) -> str:
        """``name`` as this dialect renders it — bare when unambiguous,
        quoted when it collides with a reserved word or contains
        characters the lexer would not read back as one identifier."""
        if name.lower() in self.reserved_words or not _PLAIN_IDENTIFIER.match(name):
            return self.quote_identifier(name)
        return name

    def string_literal(self, value: str) -> str:
        """``value`` as a single-quoted SQL string literal.

        Single quotes are doubled; backslashes are *not* escape
        characters in standard SQL (nor in sqlite), so they pass
        through verbatim and round-trip the lexer unchanged.
        """
        return "'" + value.replace("'", "''") + "'"

    def function(self, name: str) -> str:
        """The dialect's spelling of canonical function ``name``."""
        return self.function_spellings.get(name, name)


#: Date/string helper spellings a real backend needs beyond the AST's
#: aggregate subset.  Keys are the canonical names; emitters translate
#: through :meth:`Dialect.function` so new backends only add a table.
_SQLITE_FUNCTIONS = {
    "CURRENT_DATE": "DATE('now')",
    "SUBSTRING": "SUBSTR",
    "LENGTH": "LENGTH",
    "LOWER": "LOWER",
    "UPPER": "UPPER",
    "YEAR": "CAST(STRFTIME('%Y', ?) AS INTEGER)",
}

DEFAULT_DIALECT = Dialect(name="default")

SQLITE_DIALECT = Dialect(
    name="sqlite",
    function_spellings=_SQLITE_FUNCTIONS,
)

#: The registry.  Mutated only through :func:`register_dialect`.
DIALECTS: dict[str, Dialect] = {
    DEFAULT_DIALECT.name: DEFAULT_DIALECT,
    SQLITE_DIALECT.name: SQLITE_DIALECT,
}


def register_dialect(dialect: Dialect, replace: bool = False) -> Dialect:
    """Add ``dialect`` to the registry (``replace`` to overwrite)."""
    if dialect.name in DIALECTS and not replace:
        raise DialectError(f"dialect {dialect.name!r} is already registered")
    DIALECTS[dialect.name] = dialect
    return dialect


def get_dialect(dialect: "str | Dialect") -> Dialect:
    """Resolve a dialect name (or pass a :class:`Dialect` through)."""
    if isinstance(dialect, Dialect):
        return dialect
    try:
        return DIALECTS[dialect]
    except KeyError:
        raise DialectError(
            f"unknown SQL dialect {dialect!r}; registered: {sorted(DIALECTS)}"
        ) from None
