"""Semantic equivalence checking for SQL queries.

The Patients benchmark "tests instead for semantic equivalence" (paper
§6.2.1); the paper manually enumerates equivalent answers and points to
Cosette as the general tool.  Our stand-in combines two sound-in-
practice checks:

1. **Canonical-form equality** — normalize both ASTs
   (:mod:`repro.sql.normalize`) and compare structurally.  This proves
   equivalence for commutativity, comparison flips, double negation,
   single-value ``IN``, and redundant qualification.
2. **Execution equivalence** — execute both queries against one or more
   sample databases and compare result multisets (order-sensitive only
   when the queries order their output).  Agreement on all probes is
   accepted as equivalence; any disagreement is a proof of
   *non*-equivalence.

Check 2 is a randomized decision procedure: equal outputs on sample
data do not *prove* equivalence in general, but with adversarial probe
data generated from the query constants, it matches the manual
"enumerated equivalent answers" protocol of the paper.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ExecutionError, ReproError
from repro.sql.ast import Query
from repro.sql.normalize import normalize


def structurally_equivalent(left: Query, right: Query) -> bool:
    """Whether the two queries normalize to the same AST."""
    return normalize(left) == normalize(right)


class EquivalenceChecker:
    """Decides semantic equivalence using canonical forms and execution.

    Parameters
    ----------
    databases:
        Probe arms: ``repro.db.Database`` instances (wrapped in cached
        executor sessions), pre-built sessions, or
        :class:`repro.adapters.BackendAdapter` instances — so execution
        match can be scored on a real engine (e.g. the sqlite backend)
        as well as the reference one.  More probes means a sharper
        execution check.  When empty, only the structural check runs.
    recorder:
        Optional :class:`~repro.perf.PerfRecorder` shared by every
        probe session; the eval harness passes one so its summary can
        report per-stage executor timings.
    cache_size:
        Per-database result-cache capacity.  Probe queries run through
        the planned executor (:class:`repro.db.planner.ExecutorSession`)
        with results cached on canonical SQL, so a gold query repeated
        across an eval report executes once per database, not once per
        prediction.
    """

    def __init__(
        self, databases: Iterable = (), recorder=None, cache_size: int = 256
    ) -> None:
        self._databases = list(databases)
        self._cache_size = cache_size
        self._sessions: list | None = None
        if recorder is None:
            from repro.perf.instrumentation import PerfRecorder

            recorder = PerfRecorder()
        self.recorder = recorder

    def _probe_sessions(self) -> list:
        """Build one cached executor session per probe database."""
        if self._sessions is None:
            from repro.adapters.base import BackendAdapter  # lazy imports:
            from repro.db.planner import ExecutorSession  # db depends on sql

            self._sessions = [
                database
                if isinstance(database, (ExecutorSession, BackendAdapter))
                else ExecutorSession(
                    database,
                    cache_size=self._cache_size,
                    recorder=self.recorder,
                )
                for database in self._databases
            ]
        return self._sessions

    def equivalent(self, left: Query, right: Query) -> bool:
        """Whether ``left`` and ``right`` are semantically equivalent."""
        if structurally_equivalent(left, right):
            return True
        if not self._databases:
            return False

        order_sensitive = bool(left.order_by) and bool(right.order_by)
        agreed = False
        for session in self._probe_sessions():
            try:
                left_rows = session.execute(left)
                right_rows = session.execute(right)
            except (ExecutionError, ReproError):
                # A query outside the executable subset (or referencing
                # other schemas) cannot be certified by execution.
                return False
            if not _results_match(left_rows, right_rows, order_sensitive):
                return False
            agreed = True
        return agreed

    def verdict(self, left: Query, right: Query, schema=None) -> str:
        """Three-verdict form of :meth:`equivalent` (PR 10 contract).

        ``EQUIVALENT`` requires a canonical-form proof
        (:mod:`repro.sql.canonical`); probe agreement alone yields
        ``UNKNOWN`` (never upgraded), and a probe disagreement yields
        ``DISTINCT``.  The boolean :meth:`equivalent` keeps its looser
        execution-agreement acceptance for the Patients protocol.
        """
        from repro.analysis.equivalence import DISTINCT, EQUIVALENT, UNKNOWN
        from repro.sql.canonical import canonicalize

        if canonicalize(left, schema) == canonicalize(right, schema):
            return EQUIVALENT
        order_sensitive = bool(left.order_by) and bool(right.order_by)
        for session in self._probe_sessions():
            try:
                left_rows = session.execute(left)
                right_rows = session.execute(right)
            except (ExecutionError, ReproError):
                continue
            if not _results_match(left_rows, right_rows, order_sensitive):
                return DISTINCT
        return UNKNOWN

    def perf_report(self) -> dict:
        """Executor stage timings + cache counters over all probes."""
        sessions = self._sessions or []
        # Adapter probes have no result cache; count them as zero.
        hits = sum(getattr(s, "cache_hits", 0) for s in sessions)
        misses = sum(getattr(s, "cache_misses", 0) for s in sessions)
        total = hits + misses
        return {
            "stages": self.recorder.report(),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": (hits / total) if total else 0.0,
        }


def _results_match(left_rows, right_rows, order_sensitive: bool) -> bool:
    left_values = [tuple(row.values()) for row in left_rows]
    right_values = [tuple(row.values()) for row in right_rows]
    if order_sensitive:
        return left_values == right_values
    return sorted(left_values, key=repr) == sorted(right_values, key=repr)
