"""Generic AST edit helpers for targeted query repair.

The repair pipeline (:mod:`repro.serving.repair`) fixes near-miss model
output by rewriting small parts of an otherwise-sound query: rename a
misspelled column, re-qualify an ambiguous reference, move an aggregate
conjunct from WHERE to HAVING, extend GROUP BY.  Because every AST node
is a frozen dataclass, each helper rebuilds the affected spine with
:func:`dataclasses.replace` and shares every untouched subtree — edits
are cheap and the input query is never mutated.

All helpers accept and return :class:`~repro.sql.ast.Query`; they apply
recursively through subqueries unless documented otherwise.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable

from repro.sql.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Not,
    Or,
    Placeholder,
    Predicate,
    Query,
    Star,
    Subquery,
    conjoin,
    conjuncts,
)

#: Rewrites one column reference (return the input to leave it alone).
RefFn = Callable[[ColumnRef], ColumnRef]
#: Rewrites one placeholder (return the input to leave it alone).
PlaceholderFn = Callable[[Placeholder], Placeholder]


# ----------------------------------------------------------------------
# Structural map over every ColumnRef / Placeholder in a query
# ----------------------------------------------------------------------


def map_column_refs(query: Query, fn: RefFn) -> Query:
    """Apply ``fn`` to every column reference, everywhere in ``query``.

    Covers SELECT items, aggregate arguments, all predicate positions,
    GROUP BY, ORDER BY, and subqueries.  Identity results share the
    original subtree, so an all-identity map returns an equal query.
    """
    return _map_query(query, fn, lambda p: p)


def map_placeholders(query: Query, fn: PlaceholderFn) -> Query:
    """Apply ``fn`` to every constant placeholder in ``query``."""
    return _map_query(query, lambda r: r, fn)


def _map_query(query: Query, ref_fn: RefFn, ph_fn: PlaceholderFn) -> Query:
    select = tuple(
        item if isinstance(item, Star) else _map_operand(item, ref_fn, ph_fn)
        for item in query.select
    )
    where = _map_pred(query.where, ref_fn, ph_fn) if query.where else None
    having = _map_pred(query.having, ref_fn, ph_fn) if query.having else None
    group_by = tuple(ref_fn(ref) for ref in query.group_by)
    order_by = tuple(
        dc_replace(item, expr=_map_operand(item.expr, ref_fn, ph_fn))
        for item in query.order_by
    )
    return dc_replace(
        query,
        select=select,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
    )


def _map_operand(operand, ref_fn: RefFn, ph_fn: PlaceholderFn):
    if isinstance(operand, ColumnRef):
        return ref_fn(operand)
    if isinstance(operand, Placeholder):
        return ph_fn(operand)
    if isinstance(operand, Aggregate):
        if isinstance(operand.arg, ColumnRef):
            return dc_replace(operand, arg=ref_fn(operand.arg))
        return operand
    if isinstance(operand, Subquery):
        return Subquery(_map_query(operand.query, ref_fn, ph_fn))
    return operand


def _map_pred(pred: Predicate, ref_fn: RefFn, ph_fn: PlaceholderFn) -> Predicate:
    if isinstance(pred, Comparison):
        return dc_replace(
            pred,
            left=_map_operand(pred.left, ref_fn, ph_fn),
            right=_map_operand(pred.right, ref_fn, ph_fn),
        )
    if isinstance(pred, Between):
        return dc_replace(
            pred,
            column=ref_fn(pred.column),
            low=_map_operand(pred.low, ref_fn, ph_fn),
            high=_map_operand(pred.high, ref_fn, ph_fn),
        )
    if isinstance(pred, InPredicate):
        return dc_replace(
            pred,
            column=ref_fn(pred.column),
            values=tuple(_map_operand(v, ref_fn, ph_fn) for v in pred.values),
            subquery=(
                Subquery(_map_query(pred.subquery.query, ref_fn, ph_fn))
                if pred.subquery is not None
                else None
            ),
        )
    if isinstance(pred, Like):
        return dc_replace(
            pred,
            column=ref_fn(pred.column),
            pattern=_map_operand(pred.pattern, ref_fn, ph_fn),
        )
    if isinstance(pred, Exists):
        return dc_replace(
            pred, subquery=Subquery(_map_query(pred.subquery.query, ref_fn, ph_fn))
        )
    if isinstance(pred, Not):
        return Not(_map_pred(pred.operand, ref_fn, ph_fn))
    if isinstance(pred, And):
        return And(tuple(_map_pred(p, ref_fn, ph_fn) for p in pred.operands))
    if isinstance(pred, Or):
        return Or(tuple(_map_pred(p, ref_fn, ph_fn) for p in pred.operands))
    return pred


# ----------------------------------------------------------------------
# Targeted renames
# ----------------------------------------------------------------------


def rename_column(
    query: Query,
    old: str,
    new_column: str,
    new_table: str | None = None,
    old_table: str | None = None,
) -> Query:
    """Rename every reference to column ``old`` to ``new_column``.

    ``old_table`` (when given) restricts the rename to references with
    that exact qualifier; ``new_table`` sets the qualifier of the
    rewritten reference (``None`` keeps the original qualifier).
    Placeholders whose column segment equals ``old`` are renamed too,
    so ``@NMAE`` follows its column to ``@NAME``.
    """

    def fix_ref(ref: ColumnRef) -> ColumnRef:
        if ref.column != old:
            return ref
        if old_table is not None and ref.table != old_table:
            return ref
        table = new_table if new_table is not None else ref.table
        return ColumnRef(new_column, table=table)

    def fix_placeholder(ph: Placeholder) -> Placeholder:
        if ph.column != old.lower():
            return ph
        head, _, tail = ph.name.rpartition(".")
        del tail
        new_name = (head + "." if head else "") + new_column.upper()
        return Placeholder(new_name)

    return _map_query(query, fix_ref, fix_placeholder)


def rename_table(query: Query, old: str, new: str) -> Query:
    """Rename table ``old`` to ``new`` in FROM, qualifiers, placeholders."""

    def fix_ref(ref: ColumnRef) -> ColumnRef:
        if ref.table != old:
            return ref
        return ColumnRef(ref.column, table=new)

    def fix_placeholder(ph: Placeholder) -> Placeholder:
        if ph.table != old.lower():
            return ph
        return Placeholder(new.upper() + "." + ph.name.split(".", 1)[1])

    renamed = _map_query(query, fix_ref, fix_placeholder)
    from_tables = tuple(new if t == old else t for t in renamed.from_tables)
    return dc_replace(renamed, from_tables=from_tables)


def qualify_column(query: Query, column: str, table: str) -> Query:
    """Add a table qualifier to every unqualified ``column`` reference."""

    def fix_ref(ref: ColumnRef) -> ColumnRef:
        if ref.column != column or ref.table is not None:
            return ref
        return ColumnRef(column, table=table)

    return _map_query(query, fix_ref, lambda p: p)


def set_from(query: Query, tables: tuple[str, ...]) -> Query:
    """Replace the FROM clause (this level only, no recursion)."""
    return dc_replace(query, from_tables=tables)


# ----------------------------------------------------------------------
# Grouping / aggregate clause surgery
# ----------------------------------------------------------------------


def _contains_aggregate(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return isinstance(pred.left, Aggregate) or isinstance(pred.right, Aggregate)
    if isinstance(pred, (And, Or)):
        return any(_contains_aggregate(p) for p in pred.operands)
    if isinstance(pred, Not):
        return _contains_aggregate(pred.operand)
    return False


def move_aggregate_conjuncts_to_having(query: Query) -> Query:
    """Move every top-level WHERE conjunct containing an aggregate to HAVING.

    The L107 repair: ``WHERE AVG(age) > 30`` becomes
    ``HAVING AVG(age) > 30``; non-aggregate conjuncts stay in WHERE.
    """
    keep: list[Predicate] = []
    moved: list[Predicate] = []
    for conjunct in conjuncts(query.where):
        (moved if _contains_aggregate(conjunct) else keep).append(conjunct)
    if not moved:
        return query
    having = conjoin(conjuncts(query.having) + moved)
    return dc_replace(query, where=conjoin(keep), having=having)


def move_having_to_where(query: Query) -> Query:
    """Fold an aggregate-free HAVING into WHERE (one L109 repair)."""
    if query.having is None or _contains_aggregate(query.having):
        return query
    where = conjoin(conjuncts(query.where) + conjuncts(query.having))
    return dc_replace(query, where=where, having=None)


def add_group_by(query: Query, refs: tuple[ColumnRef, ...]) -> Query:
    """Append ``refs`` to GROUP BY (skipping keys already present)."""
    present = {(r.table, r.column) for r in query.group_by}
    extra = tuple(
        ColumnRef(r.column, table=r.table)
        for r in refs
        if (r.table, r.column) not in present
    )
    if not extra:
        return query
    return dc_replace(query, group_by=query.group_by + extra)


def replace_aggregate_func(query: Query, old: Aggregate, new: Aggregate) -> Query:
    """Replace one aggregate expression with another, everywhere it appears."""

    def fix_item(item):
        return new if item == old else item

    select = tuple(fix_item(item) for item in query.select)
    order_by = tuple(
        dc_replace(item, expr=fix_item(item.expr)) for item in query.order_by
    )

    def fix_pred(pred: Predicate) -> Predicate:
        if isinstance(pred, Comparison):
            return dc_replace(
                pred, left=fix_item(pred.left), right=fix_item(pred.right)
            )
        if isinstance(pred, (And, Or)):
            rebuilt = tuple(fix_pred(p) for p in pred.operands)
            return type(pred)(rebuilt)
        if isinstance(pred, Not):
            return Not(fix_pred(pred.operand))
        return pred

    having = fix_pred(query.having) if query.having is not None else None
    where = fix_pred(query.where) if query.where is not None else None
    return dc_replace(
        query, select=select, where=where, having=having, order_by=order_by
    )
