"""Render SQL ASTs back to canonical SQL text.

The printer is the single source of truth for SQL surface syntax in the
reproduction: generated training pairs, model outputs, and benchmark
gold queries are all rendered through :func:`to_sql`, so exact-match
comparison over printed text is well-defined.
"""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Placeholder,
    Predicate,
    Query,
    Star,
    Subquery,
)


def to_sql(query: Query) -> str:
    """Render ``query`` as a single-line SQL string."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item(i) for i in query.select))
    parts.append("FROM")
    parts.append(", ".join(query.from_tables))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(_pred(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(str(c) for c in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(_pred(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order(o) for o in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def predicate_to_sql(pred: Predicate) -> str:
    """Render one predicate (used by the planner's EXPLAIN output)."""
    return _pred(pred)


def _item(item) -> str:
    if isinstance(item, (ColumnRef, Star, Aggregate)):
        return str(item)
    raise TypeError(f"unsupported select item: {item!r}")


def _operand(operand) -> str:
    if isinstance(operand, Subquery):
        return "(" + to_sql(operand.query) + ")"
    if isinstance(operand, (ColumnRef, Literal, Placeholder, Aggregate)):
        return str(operand)
    raise TypeError(f"unsupported operand: {operand!r}")


def _pred(pred: Predicate, parent: str = "") -> str:
    if isinstance(pred, Comparison):
        return f"{_operand(pred.left)} {pred.op.value} {_operand(pred.right)}"
    if isinstance(pred, Between):
        return f"{pred.column} BETWEEN {_operand(pred.low)} AND {_operand(pred.high)}"
    if isinstance(pred, InPredicate):
        neg = "NOT " if pred.negated else ""
        if pred.subquery is not None:
            return f"{pred.column} {neg}IN ({to_sql(pred.subquery.query)})"
        values = ", ".join(_operand(v) for v in pred.values)
        return f"{pred.column} {neg}IN ({values})"
    if isinstance(pred, Like):
        neg = "NOT " if pred.negated else ""
        return f"{pred.column} {neg}LIKE {_operand(pred.pattern)}"
    if isinstance(pred, Exists):
        neg = "NOT " if pred.negated else ""
        return f"{neg}EXISTS ({to_sql(pred.subquery.query)})"
    if isinstance(pred, Not):
        return f"NOT ({_pred(pred.operand)})"
    if isinstance(pred, And):
        rendered = " AND ".join(_pred(p, parent="and") for p in pred.operands)
        return f"({rendered})" if parent == "or" else rendered
    if isinstance(pred, Or):
        rendered = " OR ".join(_pred(p, parent="or") for p in pred.operands)
        # OR binds weaker than AND, so parenthesize inside an AND.
        return f"({rendered})" if parent == "and" else rendered
    raise TypeError(f"unsupported predicate: {pred!r}")


def _order(item: OrderItem) -> str:
    direction = " DESC" if item.desc else ""
    return f"{item.expr}{direction}"
