"""Render SQL ASTs back to SQL text, parameterized by dialect.

The printer is the single source of truth for SQL surface syntax in the
reproduction: generated training pairs, model outputs, and benchmark
gold queries are all rendered through :func:`to_sql` in the ``default``
dialect, so exact-match comparison over printed text is well-defined.
Backend adapters (:mod:`repro.adapters`) render through the same
machinery with a different :class:`~repro.sql.dialects.Dialect` — and
may subclass :class:`SqlPrinter` to hook emission (e.g. the sqlite
adapter's NULL-collapsing executable emitter overrides :meth:`atom`).

Identifiers that collide with reserved words or contain characters the
lexer would not read back as a single identifier are double-quoted, so
``parse(to_sql(q)) == q`` holds for any printable query, not just the
catalog's well-behaved names.
"""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Placeholder,
    Predicate,
    Query,
    Star,
)
from repro.sql.ast import Subquery as SubqueryNode
from repro.sql.dialects import LIMIT_SUFFIX, LIMIT_TOP, Dialect, get_dialect


class SqlPrinter:
    """Dialect-aware AST-to-text emitter.

    Every syntactic construct is a method, so a backend can subclass and
    override just the piece its engine disagrees on.  The instance is
    stateless between calls and safe to reuse.
    """

    def __init__(self, dialect: str | Dialect = "default") -> None:
        self.dialect = get_dialect(dialect)

    # -- queries -------------------------------------------------------

    def query(self, query: Query) -> str:
        """Render ``query`` as a single-line SQL string."""
        parts = ["SELECT"]
        if query.limit is not None and self.dialect.limit_style == LIMIT_TOP:
            parts.append(f"TOP {query.limit}")
        if query.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.item(i) for i in query.select))
        parts.append("FROM")
        parts.append(", ".join(self.table(t) for t in query.from_tables))
        if query.where is not None:
            parts.append("WHERE")
            parts.append(self.predicate(query.where))
        if query.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.column_ref(c) for c in query.group_by))
        if query.having is not None:
            parts.append("HAVING")
            parts.append(self.predicate(query.having))
        if query.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(self.order(o) for o in query.order_by))
        if query.limit is not None and self.dialect.limit_style == LIMIT_SUFFIX:
            parts.append(f"LIMIT {query.limit}")
        return " ".join(parts)

    # -- names and values ----------------------------------------------

    def table(self, name: str) -> str:
        if name.startswith("@"):  # the @JOIN FROM placeholder (§5.1)
            return name
        return self.dialect.identifier(name)

    def column_ref(self, ref: ColumnRef) -> str:
        column = self.dialect.identifier(ref.column)
        if ref.table:
            return f"{self.dialect.identifier(ref.table)}.{column}"
        return column

    def literal(self, lit: Literal) -> str:
        if isinstance(lit.value, str):
            return self.dialect.string_literal(lit.value)
        return str(lit.value)

    def aggregate(self, agg: Aggregate) -> str:
        arg = "*" if isinstance(agg.arg, Star) else self.column_ref(agg.arg)
        inner = ("DISTINCT " if agg.distinct else "") + arg
        return f"{self.dialect.function(agg.func.value)}({inner})"

    def item(self, item) -> str:
        if isinstance(item, Star):
            return "*"
        if isinstance(item, ColumnRef):
            return self.column_ref(item)
        if isinstance(item, Aggregate):
            return self.aggregate(item)
        raise TypeError(f"unsupported select item: {item!r}")

    def operand(self, operand) -> str:
        if isinstance(operand, SubqueryNode):
            return "(" + self.query(operand.query) + ")"
        if isinstance(operand, ColumnRef):
            return self.column_ref(operand)
        if isinstance(operand, Literal):
            return self.literal(operand)
        if isinstance(operand, Placeholder):
            return str(operand)
        if isinstance(operand, Aggregate):
            return self.aggregate(operand)
        raise TypeError(f"unsupported operand: {operand!r}")

    # -- predicates ----------------------------------------------------

    def atom(self, rendered: str) -> str:
        """Hook applied to every atomic predicate's rendered text.

        The identity here; the sqlite executable emitter overrides it to
        collapse NULL to false the way the reference engine does.
        """
        return rendered

    def predicate(self, pred: Predicate, parent: str = "") -> str:
        if isinstance(pred, Comparison):
            left, right = self.operand(pred.left), self.operand(pred.right)
            return self.atom(f"{left} {pred.op.value} {right}")
        if isinstance(pred, Between):
            column = self.column_ref(pred.column)
            low, high = self.operand(pred.low), self.operand(pred.high)
            return self.atom(f"{column} BETWEEN {low} AND {high}")
        if isinstance(pred, InPredicate):
            column = self.column_ref(pred.column)
            neg = "NOT " if pred.negated else ""
            if pred.subquery is not None:
                inner = self.query(pred.subquery.query)
            else:
                inner = ", ".join(self.operand(v) for v in pred.values)
            return self.atom(f"{column} {neg}IN ({inner})")
        if isinstance(pred, Like):
            column = self.column_ref(pred.column)
            neg = "NOT " if pred.negated else ""
            return self.atom(f"{column} {neg}LIKE {self.operand(pred.pattern)}")
        if isinstance(pred, Exists):
            neg = "NOT " if pred.negated else ""
            return self.atom(f"{neg}EXISTS ({self.query(pred.subquery.query)})")
        if isinstance(pred, Not):
            return f"NOT ({self.predicate(pred.operand)})"
        if isinstance(pred, And):
            rendered = " AND ".join(
                self.predicate(p, parent="and") for p in pred.operands
            )
            return f"({rendered})" if parent == "or" else rendered
        if isinstance(pred, Or):
            rendered = " OR ".join(
                self.predicate(p, parent="or") for p in pred.operands
            )
            # OR binds weaker than AND, so parenthesize inside an AND.
            return f"({rendered})" if parent == "and" else rendered
        raise TypeError(f"unsupported predicate: {pred!r}")

    def order(self, item: OrderItem) -> str:
        expr = (
            self.aggregate(item.expr)
            if isinstance(item.expr, Aggregate)
            else self.column_ref(item.expr)
        )
        return f"{expr} DESC" if item.desc else expr


#: Shared default-dialect printer; its output is the canonical surface.
_DEFAULT_PRINTER = SqlPrinter("default")


def to_sql(query: Query, dialect: str | Dialect = "default") -> str:
    """Render ``query`` as a single-line SQL string in ``dialect``."""
    if dialect == "default":
        return _DEFAULT_PRINTER.query(query)
    return SqlPrinter(dialect).query(query)


def predicate_to_sql(pred: Predicate, dialect: str | Dialect = "default") -> str:
    """Render one predicate (used by the planner's EXPLAIN output)."""
    if dialect == "default":
        return _DEFAULT_PRINTER.predicate(pred)
    return SqlPrinter(dialect).predicate(pred)
