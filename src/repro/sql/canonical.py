"""Canonical forms for SQL ASTs — one static pass, four consumers.

:func:`repro.sql.normalize.normalize` makes *syntactic* noise
(commutative order, comparison direction, double negation) disappear;
this module goes further and rewrites queries into a **canonical form**
in which a larger class of result-equivalent spellings collapse to one
AST.  The canonical form backs the serving cache's coalescing index,
semantic corpus dedupe, the ``semantic_match`` eval column, and the
repair loop's oscillation guard — so its soundness contract is strict:

    every rewrite must be **result-invariant** on the reference
    executor (:mod:`repro.db`).  Two queries may share a canonical form
    only if they produce the same result values on *every* database
    over the schema.

Rewrites applied on top of :func:`normalize` (each is justified
against the executor's documented semantics in
:mod:`repro.db.expressions`):

1. **Qualifier completion.**  In a multi-table query an unqualified
   column ref is qualified with its owning table when exactly one FROM
   table owns the column — precisely the executor's own name
   resolution, which errors on any other case.  (Single-table queries
   keep ``normalize``'s opposite convention: qualifiers are dropped.)
2. **BETWEEN / chained-comparison normal form.**  ``col BETWEEN lo AND
   hi`` becomes ``col >= lo AND col <= hi`` — the executor evaluates
   BETWEEN as exactly this conjunction (inclusive bounds, NULL→False),
   so the spellings are one query.
3. **IN-list normal form.**  ``col = a OR col = b [OR col IN (...)]``
   over literal/placeholder values merges into a single sorted,
   deduplicated ``col IN (a, b, ...)``; the executor's membership test
   agrees with a disjunction of its ``=`` comparisons on every value
   type it supports (NULL→False, cross-type→False).  Value lists are
   deduplicated; single-value lists collapse back to ``=`` (via
   ``normalize``).
4. **Placeholder normalization.**  A typed constant placeholder is
   renamed to the dotted upper-case ``TABLE.COLUMN`` of the column it
   is compared against (the anonymization map's own convention), when
   that column resolves uniquely — so ``@AGE`` and ``@PATIENT.AGE``
   unify wherever they denote the same constant slot.  Renames are
   applied only when they keep the query's placeholder set injective:
   two *distinct* source placeholders are never merged into one name.
5. **GROUP BY key ordering.**  GROUP BY keys are sorted by printed
   form: the grouping partition is a *set* of keys, and the executor
   emits groups in first-appearance scan order, which permuting the
   key tuple cannot change.
6. SELECT order, DISTINCT, ORDER BY and LIMIT are preserved verbatim —
   they are part of the result.

There are no table aliases in this SQL subset, so alias normalization
is the identity.  The differential fuzz suite
(``tests/test_canonical_soundness.py``) enforces the contract over all
catalog schemas; any rewrite that cannot survive it must be removed,
never special-cased.
"""

from __future__ import annotations

import hashlib

from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Placeholder,
    Predicate,
    Query,
    Star,
    Subquery,
)
from repro.sql.normalize import normalize
from repro.sql.printer import to_sql


def canonicalize(query: Query, schema=None) -> Query:
    """Return the canonical form of ``query`` (optionally schema-aware).

    Without a schema only the schema-independent rewrites run
    (BETWEEN/IN normal forms, ordering); with one, qualifier completion
    and placeholder normalization run too.  Idempotent:
    ``canonicalize(canonicalize(q)) == canonicalize(q)``.
    """
    q = normalize(query)
    q = _canonical_pass(q, schema)
    # Re-normalize: the rewrites introduce conjuncts and IN lists that
    # need flattening/sorting, and may re-expose single-value INs.
    return normalize(q)


def canonical_text(query: Query, schema=None) -> str:
    """Printed canonical form — the unit of semantic comparison."""
    return to_sql(canonicalize(query, schema))


def canonical_key(query: Query, schema=None) -> str:
    """Stable digest of ``(canonical form, schema name)``.

    Two queries share a key iff they share a canonical form over the
    same schema; the digest is safe to persist (blake2b, not ``hash``).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update((schema.name if schema is not None else "").encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_text(query, schema).encode("utf-8"))
    return digest.hexdigest()


def canonical_key_for_sql(sql: str, schema=None) -> str | None:
    """``canonical_key`` over raw SQL text; ``None`` when unparseable.

    The serving cache uses this at put-time on raw model output, which
    may be arbitrarily malformed — parse failures must not raise.
    """
    from repro.errors import ReproError
    from repro.sql.parser import parse

    try:
        return canonical_key(parse(sql), schema)
    except (ReproError, ValueError):
        return None


# ----------------------------------------------------------------------
# The canonical pass proper
# ----------------------------------------------------------------------


def _canonical_pass(query: Query, schema) -> Query:
    concrete = [t for t in query.from_tables if t != JOIN_PLACEHOLDER]
    schema_scope = (
        schema is not None
        and len(concrete) == len(query.from_tables)
        and all(t in schema for t in concrete)
    )

    def qualify(ref: ColumnRef) -> ColumnRef:
        if (
            schema_scope
            and len(concrete) > 1
            and ref.table is None
        ):
            owners = [t for t in concrete if ref.column in schema.table(t)]
            if len(owners) == 1:
                return ColumnRef(ref.column, owners[0])
        return ref

    def qualify_item(item):
        if isinstance(item, ColumnRef):
            return qualify(item)
        if isinstance(item, Aggregate) and isinstance(item.arg, ColumnRef):
            return Aggregate(item.func, qualify(item.arg), item.distinct)
        return item

    def qualify_operand(operand):
        if isinstance(operand, ColumnRef):
            return qualify(operand)
        if isinstance(operand, Aggregate):
            return qualify_item(operand)
        if isinstance(operand, Subquery):
            return Subquery(_canonical_pass(operand.query, schema))
        return operand

    # ---- placeholder rename map (pass 4) --------------------------------
    renames = _placeholder_renames(query, schema, concrete, schema_scope, qualify)

    def operand_with_renames(operand):
        operand = qualify_operand(operand)
        if isinstance(operand, Placeholder) and operand.name in renames:
            return Placeholder(renames[operand.name])
        return operand

    def rewrite(pred: Predicate) -> Predicate:
        if isinstance(pred, Comparison):
            return Comparison(
                operand_with_renames(pred.left),
                pred.op,
                operand_with_renames(pred.right),
            )
        if isinstance(pred, Between):
            column = qualify(pred.column)
            return And(
                (
                    Comparison(column, CompOp.GE, operand_with_renames(pred.low)),
                    Comparison(column, CompOp.LE, operand_with_renames(pred.high)),
                )
            )
        if isinstance(pred, InPredicate):
            sub = (
                Subquery(_canonical_pass(pred.subquery.query, schema))
                if pred.subquery
                else None
            )
            values = _dedupe_values(
                operand_with_renames(v) for v in pred.values
            )
            return InPredicate(qualify(pred.column), values, sub, pred.negated)
        if isinstance(pred, Like):
            return Like(
                qualify(pred.column),
                operand_with_renames(pred.pattern),
                pred.negated,
            )
        if isinstance(pred, Exists):
            return Exists(
                Subquery(_canonical_pass(pred.subquery.query, schema)),
                pred.negated,
            )
        if isinstance(pred, Not):
            return Not(rewrite(pred.operand))
        if isinstance(pred, And):
            return And(tuple(rewrite(p) for p in pred.operands))
        if isinstance(pred, Or):
            return _merge_disjunction(tuple(rewrite(p) for p in pred.operands))
        raise TypeError(f"unsupported predicate: {pred!r}")

    return Query(
        select=tuple(qualify_item(item) for item in query.select),
        from_tables=query.from_tables,
        where=rewrite(query.where) if query.where is not None else None,
        group_by=tuple(
            sorted((qualify(c) for c in query.group_by), key=str)
        ),
        having=rewrite(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(qualify_item(o.expr), o.desc) for o in query.order_by
        ),
        limit=query.limit,
        distinct=query.distinct,
    )


def _dedupe_values(values) -> tuple:
    seen: set[str] = set()
    unique = []
    for value in values:
        key = str(value)
        if key not in seen:
            seen.add(key)
            unique.append(value)
    return tuple(unique)


def _merge_disjunction(operands: tuple[Predicate, ...]) -> Predicate:
    """Merge ``col = v`` / ``col IN (...)`` disjuncts per column (pass 3)."""
    mergeable: dict[str, list] = {}  # printed column -> [colref, values]
    rest: list[Predicate] = []
    order: list[str] = []
    for pred in operands:
        target = _in_merge_target(pred)
        if target is None:
            rest.append(pred)
            continue
        column, values = target
        key = str(column)
        if key not in mergeable:
            mergeable[key] = [column, []]
            order.append(key)
        mergeable[key][1].extend(values)
    merged: list[Predicate] = []
    for key in order:
        column, values = mergeable[key]
        values = _dedupe_values(values)
        if len(values) == 1:
            merged.append(Comparison(column, CompOp.EQ, values[0]))
        else:
            merged.append(InPredicate(column, values))
    flat = merged + rest
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def _in_merge_target(pred: Predicate):
    """``(column, values)`` when ``pred`` is a mergeable membership test."""
    if (
        isinstance(pred, Comparison)
        and pred.op is CompOp.EQ
        and isinstance(pred.left, ColumnRef)
        and isinstance(pred.right, (Literal, Placeholder))
    ):
        return pred.left, [pred.right]
    if (
        isinstance(pred, InPredicate)
        and not pred.negated
        and pred.subquery is None
        and pred.values
    ):
        return pred.column, list(pred.values)
    return None


def _placeholder_renames(
    query: Query, schema, concrete, schema_scope: bool, qualify
) -> dict[str, str]:
    """Injective source-name → ``TABLE.COLUMN`` rename map (pass 4)."""
    if not schema_scope:
        return {}

    proposals: dict[str, str] = {}

    def resolve_table(ref: ColumnRef) -> str | None:
        ref = qualify(ref)
        if ref.table is not None:
            return ref.table
        if len(concrete) == 1 and ref.column in schema.table(concrete[0]):
            return concrete[0]
        return None

    def propose(placeholder, ref: ColumnRef) -> None:
        # Only normalize placeholders the anonymization map named after
        # the compared column (``@AGE`` / ``@PATIENTS.AGE`` against
        # ``age``); an unrelated name denotes a different constant slot
        # and must never be re-keyed onto this column.
        if placeholder.column != ref.column.lower():
            return
        table = resolve_table(ref)
        if table is None:
            return
        if placeholder.table is not None and placeholder.table != table.lower():
            return
        target = f"{table.upper()}.{ref.column.upper()}"
        existing = proposals.get(placeholder.name)
        if existing is not None and existing != target:
            # Conflicting contexts: leave the placeholder alone.
            proposals[placeholder.name] = placeholder.name
        else:
            proposals[placeholder.name] = target

    def scan(pred: Predicate) -> None:
        if isinstance(pred, Comparison):
            left, right = pred.left, pred.right
            if isinstance(left, ColumnRef) and isinstance(right, Placeholder):
                propose(right, left)
            elif isinstance(right, ColumnRef) and isinstance(left, Placeholder):
                propose(left, right)
        elif isinstance(pred, Between):
            for side in (pred.low, pred.high):
                if isinstance(side, Placeholder):
                    propose(side, pred.column)
        elif isinstance(pred, InPredicate):
            for value in pred.values:
                if isinstance(value, Placeholder):
                    propose(value, pred.column)
        elif isinstance(pred, Like):
            if isinstance(pred.pattern, Placeholder):
                propose(pred.pattern, pred.column)
        elif isinstance(pred, Not):
            scan(pred.operand)
        elif isinstance(pred, (And, Or)):
            for operand in pred.operands:
                scan(operand)

    for clause in (query.where, query.having):
        if clause is not None:
            scan(clause)

    # Enforce injectivity over the full placeholder-name population:
    # a rename that would collide with another source name (renamed or
    # not) is dropped, so two distinct constant slots never merge.
    population = {p.name for p in query.placeholders()}
    mapping = {name: proposals.get(name, name) for name in population}
    targets: dict[str, list[str]] = {}
    for source, target in mapping.items():
        targets.setdefault(target, []).append(source)
    renames: dict[str, str] = {}
    for source, target in mapping.items():
        if target != source and len(targets[target]) == 1:
            renames[source] = target
    return renames
