"""Tokenizer for the SQL subset.

Produces a flat list of :class:`Token` objects.  Keywords are
case-insensitive; bare identifiers are lower-cased, while
double-quoted identifiers (``"order"``, with ``""`` escaping an
embedded quote) are taken verbatim and never promoted to keywords —
this is how the printer round-trips reserved-word names.  Placeholders
follow the paper's notation: ``@NAME`` or ``@TABLE.NAME`` (and the
special ``@JOIN`` FROM placeholder).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlLexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PLACEHOLDER = "placeholder"
    OP = "op"
    PUNCT = "punct"
    STAR = "star"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by having order limit distinct and or not
    between in like exists as asc desc count sum avg min max is null
    """.split()
)

#: Multi-character operators first so maximal munch works.
OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">")

PUNCTUATION = frozenset("(),.")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int
    #: Offset one past the token's last source character (so
    #: ``sql[position:end]`` is the raw lexeme).  Hand-built tokens may
    #: leave the default; the lexer always fills it in.
    end: int = -1

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        if self.type is not ttype:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlLexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    length = len(sql)
    while pos < length:
        char = sql[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "'":
            end = pos + 1
            chunks: list[str] = []
            while True:
                if end >= length:
                    raise SqlLexError("unterminated string literal", pos)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), pos, end + 1))
            pos = end + 1
            continue
        if char == '"':
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlLexError("unterminated quoted identifier", pos)
                if sql[end] == '"':
                    if end + 1 < length and sql[end + 1] == '"':
                        chunks.append('"')
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            name = "".join(chunks)
            if not name:
                raise SqlLexError("empty quoted identifier", pos)
            tokens.append(Token(TokenType.IDENT, name, pos, end + 1))
            pos = end + 1
            continue
        if char == "@":
            end = pos + 1
            while end < length and (sql[end].isalnum() or sql[end] in "_."):
                end += 1
            name = sql[pos + 1 : end]
            if not name:
                raise SqlLexError("empty placeholder", pos)
            tokens.append(Token(TokenType.PLACEHOLDER, name, pos, end))
            pos = end
            continue
        if char.isdigit() or (char == "-" and pos + 1 < length and sql[pos + 1].isdigit()):
            end = pos + 1
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                # A dot must be followed by a digit to be part of the number
                # (so `1.name` lexes as NUMBER DOT IDENT).
                if sql[end] == ".":
                    if end + 1 >= length or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[pos:end], pos, end))
            pos = end
            continue
        if char.isalpha() or char == "_":
            end = pos + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[pos:end].lower()
            ttype = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(ttype, word, pos, end))
            pos = end
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", pos, pos + 1))
            pos += 1
            continue
        matched_op = None
        for op in OPERATORS:
            if sql.startswith(op, pos):
                matched_op = op
                break
        if matched_op is not None:
            # Normalize != to the standard <>.
            value = "<>" if matched_op == "!=" else matched_op
            tokens.append(Token(TokenType.OP, value, pos, pos + len(matched_op)))
            pos += len(matched_op)
            continue
        if char in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, pos, pos + 1))
            pos += 1
            continue
        raise SqlLexError(f"unexpected character {char!r}", pos)
    tokens.append(Token(TokenType.EOF, "", length, length))
    return tokens
