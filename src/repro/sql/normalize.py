"""Canonicalization of SQL ASTs.

Normalization makes structural equality meaningful: two queries that
differ only in commutative operand order, comparison direction,
redundant NOT, or redundant table qualification normalize to the same
AST.  The exact-match metric and the first stage of the semantic
equivalence checker both compare normalized forms.

Rules applied (documented so benchmark semantics are auditable):

1. ``a OP b`` with the column on the right is flipped (``18 < age``
   becomes ``age > 18``).
2. ``NOT`` over a comparison folds into the negated operator; ``NOT
   (NOT p)`` cancels; ``NOT BETWEEN``/``NOT IN``/``NOT LIKE``/``NOT
   EXISTS`` fold into the predicate's ``negated`` flag.
3. AND/OR operand lists are flattened and sorted by printed form.
4. ``IN`` value lists are sorted.
5. Table qualifiers on column refs are dropped when the query reads
   from a single concrete table (they are redundant there).
6. SELECT items and GROUP BY keys keep their order (projection order is
   part of the answer), but duplicate SELECT items are collapsed.
7. ``LIMIT``/``ORDER BY`` are preserved verbatim.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    Predicate,
    Query,
    Star,
    Subquery,
)
from repro.sql.printer import to_sql


def normalize(query: Query) -> Query:
    """Return the canonical form of ``query``."""
    single_table = None
    concrete = [t for t in query.from_tables if t != JOIN_PLACEHOLDER]
    if len(query.from_tables) == 1 and len(concrete) == 1:
        single_table = concrete[0]

    def norm_ref(ref: ColumnRef) -> ColumnRef:
        if single_table is not None and ref.table == single_table:
            return ColumnRef(ref.column)
        return ref

    def norm_operand(operand):
        if isinstance(operand, ColumnRef):
            return norm_ref(operand)
        if isinstance(operand, Subquery):
            return Subquery(normalize(operand.query))
        if isinstance(operand, Literal) and isinstance(operand.value, float):
            # 18.0 and 18 are the same constant.
            if operand.value.is_integer():
                return Literal(int(operand.value))
        return operand

    def norm_select_item(item):
        if isinstance(item, ColumnRef):
            return norm_ref(item)
        if isinstance(item, Star):
            return item
        return replace(item, arg=norm_ref(item.arg) if isinstance(item.arg, ColumnRef) else item.arg)

    def norm_pred(pred: Predicate) -> Predicate:
        if isinstance(pred, Comparison):
            left = norm_operand(pred.left)
            right = norm_operand(pred.right)
            left_is_col = isinstance(left, ColumnRef)
            right_is_col = isinstance(right, ColumnRef)
            if right_is_col and not left_is_col:
                left, right = right, left
                pred = Comparison(left, pred.op.flipped(), right)
            elif left_is_col and right_is_col and str(right) < str(left):
                # Join conditions: order the two columns deterministically.
                pred = Comparison(right, pred.op.flipped(), left)
            else:
                pred = Comparison(left, pred.op, right)
            return pred
        if isinstance(pred, Between):
            return Between(norm_ref(pred.column), norm_operand(pred.low), norm_operand(pred.high))
        if isinstance(pred, InPredicate):
            sub = Subquery(normalize(pred.subquery.query)) if pred.subquery else None
            values = tuple(sorted((norm_operand(v) for v in pred.values), key=str))
            if len(values) == 1 and sub is None and not pred.negated:
                # x IN (v) is x = v.
                return Comparison(norm_ref(pred.column), CompOp.EQ, values[0])
            return InPredicate(norm_ref(pred.column), values, sub, pred.negated)
        if isinstance(pred, Like):
            return Like(norm_ref(pred.column), norm_operand(pred.pattern), pred.negated)
        if isinstance(pred, Exists):
            return Exists(Subquery(normalize(pred.subquery.query)), pred.negated)
        if isinstance(pred, Not):
            inner = norm_pred(pred.operand)
            if isinstance(inner, Comparison):
                return Comparison(inner.left, inner.op.negated(), inner.right)
            if isinstance(inner, Not):
                return inner.operand
            if isinstance(inner, InPredicate):
                return replace(inner, negated=not inner.negated)
            if isinstance(inner, Like):
                return replace(inner, negated=not inner.negated)
            if isinstance(inner, Exists):
                return replace(inner, negated=not inner.negated)
            return Not(inner)
        if isinstance(pred, And):
            flat: list[Predicate] = []
            for operand in pred.operands:
                normed = norm_pred(operand)
                if isinstance(normed, And):
                    flat.extend(normed.operands)
                else:
                    flat.append(normed)
            flat = _sorted_unique(flat)
            return flat[0] if len(flat) == 1 else And(tuple(flat))
        if isinstance(pred, Or):
            flat = []
            for operand in pred.operands:
                normed = norm_pred(operand)
                if isinstance(normed, Or):
                    flat.extend(normed.operands)
                else:
                    flat.append(normed)
            flat = _sorted_unique(flat)
            return flat[0] if len(flat) == 1 else Or(tuple(flat))
        raise TypeError(f"unsupported predicate: {pred!r}")

    select: list = []
    for item in query.select:
        normed = norm_select_item(item)
        if normed not in select:
            select.append(normed)

    return Query(
        select=tuple(select),
        from_tables=tuple(sorted(query.from_tables)),
        where=norm_pred(query.where) if query.where is not None else None,
        group_by=tuple(norm_ref(c) for c in query.group_by),
        having=norm_pred(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(norm_select_item(o.expr), o.desc) for o in query.order_by
        ),
        limit=query.limit,
        distinct=query.distinct,
    )


def _sorted_unique(preds: list[Predicate]) -> list[Predicate]:
    seen: set[str] = set()
    unique: list[Predicate] = []
    for pred in sorted(preds, key=_pred_key):
        key = _pred_key(pred)
        if key not in seen:
            seen.add(key)
            unique.append(pred)
    return unique


def _pred_key(pred: Predicate) -> str:
    from repro.sql.printer import predicate_to_sql  # reuse the printer

    return predicate_to_sql(pred)


def canonical_sql(query: Query) -> str:
    """Printed canonical form, the unit of exact-match comparison."""
    return to_sql(normalize(query))
