"""Consistent-hash ring routing cache keys onto serving shards.

The sharded serving tier keys its :class:`~repro.serving.cache.
TranslationCache` entries on the *anonymized* question (the model
input), so for cache hit rates to survive scale-out every key must live
on exactly one shard — and keep living there when the shard set
changes.  A consistent-hash ring gives both properties:

* **shard-exclusive keys** — ``route(key)`` is a pure function of the
  key and the current node set, so concurrent requests for one key
  always land on one shard and its cache entry is never duplicated;
* **bounded remap on resize** — each node owns many small arcs of the
  ring (*virtual nodes*), so removing a node re-routes only the keys
  that lived on its arcs (≈ 1/N of the population) onto the survivors,
  and adding a node steals only ≈ 1/(N+1) — the other shards' caches
  stay warm.

Hashing uses :func:`hashlib.blake2b`, which is stable across processes
and interpreter restarts (unlike builtin ``hash()`` under
``PYTHONHASHSEED``), so the front door, tests, and any future external
router all agree on placement.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ServingError

#: Virtual nodes per physical node.  More vnodes → smoother key
#: distribution (at 96, a 4-shard ring keeps every shard within ~2x of
#: the uniform share on realistic key populations) at the cost of a
#: slightly larger sorted ring; routing stays O(log(nodes * vnodes)).
DEFAULT_VNODES = 96


def _point(label: str) -> int:
    """Stable 64-bit ring position for ``label``."""
    return int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over an arbitrary set of string node names.

    Parameters
    ----------
    nodes:
        Initial node names (e.g. ``"shard-0"``).
    vnodes:
        Virtual nodes per physical node.

    The ring is not thread-safe by itself; the front door confines all
    mutation to its event-loop thread.
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ServingError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted ring positions
        self._owners: list[str] = []  # _owners[i] owns _points[i]
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual nodes into the ring."""
        if node in self._nodes:
            raise ServingError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for index in range(self.vnodes):
            point = _point(f"{node}#{index}")
            at = bisect.bisect_left(self._points, point)
            # blake2b collisions across distinct labels are not a
            # practical concern; ties resolve by insertion order.
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        """Remove ``node``; only its keys remap (onto the survivors)."""
        if node not in self._nodes:
            raise ServingError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, key: str) -> str:
        """The unique node owning ``key`` (first vnode clockwise)."""
        if not self._nodes:
            raise ServingError("cannot route on an empty ring")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):  # wrap around
            at = 0
        return self._owners[at]

    def distribution(self, keys: Sequence[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (0 for idle nodes)."""
        counts: Counter[str] = Counter({node: 0 for node in self._nodes})
        for key in keys:
            counts[self.route(key)] += 1
        return dict(sorted(counts.items()))

    def stats(self) -> dict:
        """JSON-ready ring description."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
