"""Serving-layer knobs, one frozen dataclass.

Mirrors :class:`repro.core.config.GenerationConfig` in spirit: every
operational parameter of the online query service lives here with a
production-ish default, validated on construction, and convertible to a
plain dict for CLI flags and JSON reports.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ServingError


@dataclass(frozen=True)
class ServingConfig:
    """All knobs of the concurrent query-serving layer.

    Batching
    --------
    workers:
        Micro-batch worker threads draining the admission queue.
    max_batch_size:
        Upper bound on requests coalesced into one
        :meth:`~repro.neural.base.TranslationModel.translate_batch` call.
    batch_window:
        Seconds a worker waits to fill a batch after its first request
        arrives (the latency/throughput trade-off knob).
    queue_capacity:
        Admission-queue bound; requests beyond it are shed with a
        structured ``queue_full`` rejection. ``0`` means unbounded.

    Robustness
    ----------
    request_timeout:
        Seconds a request waits for its translation before giving up
        with a structured ``timeout`` response.
    rate_limit:
        Sustained requests/second admitted by the token bucket
        (``0`` disables rate limiting).
    burst:
        Token-bucket capacity: how many requests may arrive back-to-back
        before the sustained rate applies.
    failure_threshold:
        Consecutive model failures that open the circuit breaker.
    cooldown:
        Seconds the breaker stays open before letting one probe through.

    Caching
    -------
    cache_capacity:
        LRU entries in the translation cache (``0`` disables caching).
    cache_ttl:
        Seconds an entry stays fresh (``<= 0`` means never expires).
    serve_stale_on_degrade:
        Whether expired cache entries may be served while the model is
        unavailable (graceful degradation).
    preprocess_cache_capacity:
        LRU entries memoizing the pre-processor on the *raw* question
        string (``0`` disables).  Sound because preprocessing is
        deterministic over a fixed database; it removes the
        anonymization cost for repeated identical questions, which
        dominate real traffic.
    """

    workers: int = 2
    max_batch_size: int = 8
    batch_window: float = 0.004
    queue_capacity: int = 256
    request_timeout: float = 10.0
    rate_limit: float = 0.0
    burst: int = 16
    failure_threshold: int = 5
    cooldown: float = 30.0
    cache_capacity: int = 2048
    cache_ttl: float = 300.0
    serve_stale_on_degrade: bool = True
    preprocess_cache_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if self.batch_window < 0:
            raise ServingError("batch_window must be >= 0")
        if self.queue_capacity < 0:
            raise ServingError("queue_capacity must be >= 0")
        if self.request_timeout <= 0:
            raise ServingError("request_timeout must be > 0")
        if self.rate_limit < 0:
            raise ServingError("rate_limit must be >= 0")
        if self.burst < 1:
            raise ServingError("burst must be >= 1")
        if self.failure_threshold < 1:
            raise ServingError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ServingError("cooldown must be >= 0")
        if self.cache_capacity < 0:
            raise ServingError("cache_capacity must be >= 0")
        if self.preprocess_cache_capacity < 0:
            raise ServingError("preprocess_cache_capacity must be >= 0")

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-ready, same field order as declared)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
