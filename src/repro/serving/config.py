"""Serving-layer knobs, one frozen dataclass.

Mirrors :class:`repro.core.config.GenerationConfig` in spirit: every
operational parameter of the online query service lives here with a
production-ish default, validated on construction, and convertible to a
plain dict for CLI flags and JSON reports.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ServingError


@dataclass(frozen=True)
class ServingConfig:
    """All knobs of the concurrent query-serving layer.

    Batching
    --------
    workers:
        Micro-batch worker threads draining the admission queue.
    max_batch_size:
        Upper bound on requests coalesced into one
        :meth:`~repro.neural.base.TranslationModel.translate_batch` call.
    batch_window:
        Seconds a worker waits to fill a batch after its first request
        arrives (the latency/throughput trade-off knob).
    queue_capacity:
        Admission-queue bound; requests beyond it are shed with a
        structured ``queue_full`` rejection. ``0`` means unbounded.

    Robustness
    ----------
    request_timeout:
        Seconds a request waits for its translation before giving up
        with a structured ``timeout`` response.
    rate_limit:
        Sustained requests/second admitted by the token bucket
        (``0`` disables rate limiting).
    burst:
        Token-bucket capacity: how many requests may arrive back-to-back
        before the sustained rate applies.
    failure_threshold:
        Consecutive model failures that open the circuit breaker.
    cooldown:
        Seconds the breaker stays open before letting one probe through.

    Caching
    -------
    cache_capacity:
        LRU entries in the translation cache (``0`` disables caching).
    cache_ttl:
        Seconds an entry stays fresh (``<= 0`` means never expires).
    serve_stale_on_degrade:
        Whether expired cache entries may be served while the model is
        unavailable (graceful degradation).
    preprocess_cache_capacity:
        LRU entries memoizing the pre-processor on the *raw* question
        string (``0`` disables).  Sound because preprocessing is
        deterministic over a fixed database; it removes the
        anonymization cost for repeated identical questions, which
        dominate real traffic.
    canonical_cache:
        Whether the translation cache runs its canonical coalescing
        tier (PR 10): model outputs are indexed by canonical SQL key so
        paraphrases that compile to one query share storage and are
        counted (``cache.canonical_hits``).  Served payloads are
        bit-identical either way; the flag only controls the index and
        its counters.

    Repair (see :mod:`repro.serving.repair`)
    ----------------------------------------
    repair_attempts:
        Repair→re-lint cycles allowed per candidate (``0`` disables the
        execute–verify–repair loop entirely; responses are then
        byte-identical to a service built without it).
    repair_deadline:
        Wall-clock budget in seconds for one whole repair run (lint +
        repair + execution re-rank); the loop degrades when it expires.
    repair_execute_timeout:
        Seconds one execution-verification step may take before its
        verdict is demoted to ``timeout``.
    repair_max_rows:
        Row cap per execution-verification query.
    """

    workers: int = 2
    max_batch_size: int = 8
    batch_window: float = 0.004
    queue_capacity: int = 256
    request_timeout: float = 10.0
    rate_limit: float = 0.0
    burst: int = 16
    failure_threshold: int = 5
    cooldown: float = 30.0
    cache_capacity: int = 2048
    cache_ttl: float = 300.0
    serve_stale_on_degrade: bool = True
    preprocess_cache_capacity: int = 4096
    canonical_cache: bool = True
    repair_attempts: int = 2
    repair_deadline: float = 0.25
    repair_execute_timeout: float = 0.1
    repair_max_rows: int = 100

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if self.batch_window < 0:
            raise ServingError("batch_window must be >= 0")
        if self.queue_capacity < 0:
            raise ServingError("queue_capacity must be >= 0")
        if self.request_timeout <= 0:
            raise ServingError("request_timeout must be > 0")
        if self.rate_limit < 0:
            raise ServingError("rate_limit must be >= 0")
        if self.burst < 1:
            raise ServingError("burst must be >= 1")
        if self.failure_threshold < 1:
            raise ServingError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ServingError("cooldown must be >= 0")
        if self.cache_capacity < 0:
            raise ServingError("cache_capacity must be >= 0")
        if self.preprocess_cache_capacity < 0:
            raise ServingError("preprocess_cache_capacity must be >= 0")
        if self.repair_attempts < 0:
            raise ServingError("repair_attempts must be >= 0")
        if self.repair_deadline <= 0:
            raise ServingError("repair_deadline must be > 0")
        if self.repair_execute_timeout <= 0:
            raise ServingError("repair_execute_timeout must be > 0")
        if self.repair_max_rows < 1:
            raise ServingError("repair_max_rows must be >= 1")

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-ready, same field order as declared)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ShardedConfig:
    """Knobs of the multi-process sharded serving tier.

    Topology
    --------
    replicas:
        Shared-nothing shard processes, each hosting a full
        :class:`~repro.serving.service.TranslationService` replica.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring (see
        :mod:`repro.serving.hashring`).

    Supervision
    -----------
    max_respawns:
        Times a crashing shard is restarted before it is quarantined
        (removed from the ring; its keys remap onto survivors).
    max_request_attempts:
        Times one request may be re-dispatched after shard deaths
        before it fails with ``worker_died``.
    boot_timeout:
        Seconds to wait for a shard's ready handshake before treating
        the spawn as failed.

    Flow control
    ------------
    dispatch_threads:
        Front-door executor threads running preprocessing before ring
        routing (preprocessing is CPU-bound Python; these also keep a
        slow question from stalling the event loop).
    max_inflight_per_shard:
        Outstanding requests allowed per shard pipe before new arrivals
        are shed with ``queue_full`` (mirrors the single-process
        admission queue bound).
    drain_timeout:
        Seconds ``stop()`` waits for in-flight requests to finish
        before shards are terminated anyway.
    grace:
        Seconds a stopping shard gets between ``stop`` message and
        ``terminate()``.
    """

    replicas: int = 2
    vnodes: int = 96
    max_respawns: int = 3
    max_request_attempts: int = 3
    boot_timeout: float = 60.0
    dispatch_threads: int = 8
    max_inflight_per_shard: int = 512
    drain_timeout: float = 10.0
    grace: float = 2.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ServingError("replicas must be >= 1")
        if self.vnodes < 1:
            raise ServingError("vnodes must be >= 1")
        if self.max_respawns < 0:
            raise ServingError("max_respawns must be >= 0")
        if self.max_request_attempts < 1:
            raise ServingError("max_request_attempts must be >= 1")
        if self.boot_timeout <= 0:
            raise ServingError("boot_timeout must be > 0")
        if self.dispatch_threads < 1:
            raise ServingError("dispatch_threads must be >= 1")
        if self.max_inflight_per_shard < 1:
            raise ServingError("max_inflight_per_shard must be >= 1")
        if self.drain_timeout < 0:
            raise ServingError("drain_timeout must be >= 0")
        if self.grace < 0:
            raise ServingError("grace must be >= 0")

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-ready, same field order as declared)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
