"""Admission control primitives: token-bucket rate limiter + circuit breaker.

Both are small, lock-protected state machines with an injectable clock
so tests can drive time explicitly instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/sec, up to ``burst`` stored.

    ``rate <= 0`` disables limiting (every acquire succeeds).
    """

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if self.rate <= 0:
            return True
        now = self._clock()
        with self._lock:
            elapsed = now - self._updated
            self._updated = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False


#: Circuit-breaker states (plain strings so snapshots are JSON-ready).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe after cooldown.

    * ``closed``    — calls flow; ``failure_threshold`` consecutive
      failures open the breaker;
    * ``open``      — calls are refused until ``cooldown`` seconds pass;
    * ``half_open`` — exactly one probe call is allowed; success closes
      the breaker, failure re-opens it (restarting the cooldown).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened_count = 0  # times the breaker tripped (for metrics)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        While open, the first caller after the cooldown elapses gets a
        half-open probe slot; everyone else is refused until the probe
        reports back.
        """
        now = self._clock()
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN and (now - self._opened_at) >= self.cooldown:
                self._state = HALF_OPEN
                self._probe_in_flight = False
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if tripped:
                if self._state != OPEN:
                    self.opened_count += 1
                self._state = OPEN
                self._opened_at = self._clock()
                self._failures = 0
                self._probe_in_flight = False

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened_count": self.opened_count,
            }
