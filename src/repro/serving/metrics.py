"""Serving observability: counters, latency percentiles, batch histogram.

A :class:`MetricsRegistry` is the single sink every serving component
reports into.  It is deliberately boring — a lock, some counters, a
bounded latency window — because it sits on the hot path of every
request.  ``snapshot()`` produces the JSON-ready report surfaced by
``repro serve --stats`` and written into ``BENCH_serving.json``; every
derived rate in it is zero-guarded so an idle service snapshots cleanly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Callable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
    if q <= 0:
        rank = 0
    return ordered[rank]


class MetricsRegistry:
    """Thread-safe accumulator of serving metrics.

    Parameters
    ----------
    latency_window:
        How many recent request latencies feed the percentile
        estimates (a ring buffer: old samples age out under load).
    clock:
        Monotonic time source for the QPS denominator.
    """

    def __init__(
        self,
        latency_window: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._counters: Counter[str] = Counter()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._batch_sizes: Counter[int] = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def record_request(self, status: str, source: str, seconds: float) -> None:
        """Fold one finished request into the registry."""
        with self._lock:
            self._counters["requests_total"] += 1
            self._counters[f"status.{status}"] += 1
            self._counters[f"source.{source}"] += 1
            self._latencies.append(seconds)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._counters["batches_total"] += 1
            self._batch_sizes[size] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready report; safe to call at any moment, even idle."""
        with self._lock:
            elapsed = self._clock() - self._started
            total = self._counters.get("requests_total", 0)
            latencies = list(self._latencies)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            counters = dict(sorted(self._counters.items()))
        batched = sum(size * n for size, n in batch_sizes.items())
        batches = sum(batch_sizes.values())
        hits = counters.get("cache.hits", 0)
        lookups = hits + counters.get("cache.misses", 0)
        return {
            "uptime_seconds": round(elapsed, 3),
            "requests_total": total,
            "qps": round(total / elapsed, 3) if elapsed > 0 else 0.0,
            "latency": {
                "samples": len(latencies),
                "p50": round(percentile(latencies, 50), 6),
                "p95": round(percentile(latencies, 95), 6),
                "p99": round(percentile(latencies, 99), 6),
                "max": round(max(latencies), 6) if latencies else 0.0,
            },
            "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "batch_size_histogram": {str(k): v for k, v in batch_sizes.items()},
            "mean_batch_size": round(batched / batches, 3) if batches else 0.0,
            "counters": counters,
        }

    def format_table(self, title: str = "serving stats") -> str:
        """Fixed-width terminal rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [
            f"{title}:",
            f"  requests      {snap['requests_total']}",
            f"  qps           {snap['qps']:.1f}",
            f"  latency p50   {snap['latency']['p50'] * 1000:.2f} ms",
            f"  latency p95   {snap['latency']['p95'] * 1000:.2f} ms",
            f"  latency p99   {snap['latency']['p99'] * 1000:.2f} ms",
            f"  cache hitrate {snap['cache_hit_rate']:.1%}",
            f"  mean batch    {snap['mean_batch_size']:.2f}",
        ]
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<24s}{value}")
        return "\n".join(lines)
