"""Serving observability: counters, latency percentiles, batch histogram.

A :class:`MetricsRegistry` is the single sink every serving component
reports into.  It is deliberately boring — a lock, some counters, a
bounded latency window — because it sits on the hot path of every
request.  ``snapshot()`` produces the JSON-ready report surfaced by
``repro serve --stats`` and written into ``BENCH_serving.json``; every
derived rate in it is zero-guarded so an idle service snapshots cleanly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Callable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
    if q <= 0:
        rank = 0
    return ordered[rank]


class MetricsRegistry:
    """Thread-safe accumulator of serving metrics.

    Parameters
    ----------
    latency_window:
        How many recent request latencies feed the percentile
        estimates (a ring buffer: old samples age out under load).
    clock:
        Monotonic time source for the QPS denominator.
    """

    def __init__(
        self,
        latency_window: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._counters: Counter[str] = Counter()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._batch_sizes: Counter[int] = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def record_request(self, status: str, source: str, seconds: float) -> None:
        """Fold one finished request into the registry."""
        with self._lock:
            self._counters["requests_total"] += 1
            self._counters[f"status.{status}"] += 1
            self._counters[f"source.{source}"] += 1
            self._latencies.append(seconds)

    def record_batch(self, size: int) -> None:
        """Fold one micro-batch into the registry.

        ``batches_total`` counts batches, ``model.batched_inputs``
        counts the requests inside them — keeping both makes the
        batch-size histogram reconcile against ``model.calls`` (see
        ``TranslationService.stats()["accounting"]``).
        """
        with self._lock:
            self._counters["batches_total"] += 1
            self._counters["model.batched_inputs"] += size
            self._batch_sizes[size] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, include_samples: bool = False) -> dict:
        """JSON-ready report; safe to call at any moment, even idle.

        ``include_samples=True`` attaches the raw latency window under
        ``latency_samples`` so an aggregator can compute *merged*
        percentiles across registries (averaging per-shard p99s would
        be wrong; pooling the samples is exact up to window aging).
        """
        with self._lock:
            elapsed = self._clock() - self._started
            total = self._counters.get("requests_total", 0)
            latencies = list(self._latencies)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            counters = dict(sorted(self._counters.items()))
        batched = sum(size * n for size, n in batch_sizes.items())
        batches = sum(batch_sizes.values())
        hits = counters.get("cache.hits", 0)
        lookups = hits + counters.get("cache.misses", 0)
        snap = {
            "uptime_seconds": round(elapsed, 3),
            "requests_total": total,
            "qps": round(total / elapsed, 3) if elapsed > 0 else 0.0,
            "latency": {
                "samples": len(latencies),
                "p50": round(percentile(latencies, 50), 6),
                "p95": round(percentile(latencies, 95), 6),
                "p99": round(percentile(latencies, 99), 6),
                "max": round(max(latencies), 6) if latencies else 0.0,
            },
            "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "batch_size_histogram": {str(k): v for k, v in batch_sizes.items()},
            "mean_batch_size": round(batched / batches, 3) if batches else 0.0,
            "counters": counters,
        }
        if include_samples:
            snap["latency_samples"] = [round(s, 6) for s in latencies]
        return snap

    def latency_samples(self) -> list[float]:
        """Copy of the current latency window (for merged percentiles)."""
        with self._lock:
            return list(self._latencies)

    def format_table(self, title: str = "serving stats") -> str:
        """Fixed-width terminal rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [
            f"{title}:",
            f"  requests      {snap['requests_total']}",
            f"  qps           {snap['qps']:.1f}",
            f"  latency p50   {snap['latency']['p50'] * 1000:.2f} ms",
            f"  latency p95   {snap['latency']['p95'] * 1000:.2f} ms",
            f"  latency p99   {snap['latency']['p99'] * 1000:.2f} ms",
            f"  cache hitrate {snap['cache_hit_rate']:.1%}",
            f"  mean batch    {snap['mean_batch_size']:.2f}",
        ]
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<24s}{value}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cross-shard aggregation
# ----------------------------------------------------------------------

def merge_shard_stats(shard_stats: Sequence[dict], elapsed: float) -> dict:
    """Merge per-shard ``TranslationService.stats()`` snapshots into one
    cluster view.

    * **counters** are summed;
    * **latency quantiles** are recomputed over the *pooled* raw sample
      windows (each shard must snapshot with ``include_samples=True``) —
      pooling is exact, averaging per-shard percentiles would not be;
    * **batch histograms** are added bucket-wise;
    * **cache** counters are summed and the aggregate hit rate is
      recomputed from the sums (this is the number the shard-exclusive
      routing is supposed to keep at the single-process level);
    * **repair** per-shard counters are summed (they ride the counter
      merge) and additionally rolled up into a ``repair`` section with a
      cluster-wide repair rate, present whenever any shard reports the
      loop enabled;
    * **stages** sum ``busy_seconds``/``calls``/``items`` across shards
      and take the max ``wall_seconds`` (per-process clocks do not
      share an epoch, so spans cannot be unioned across processes);
    * ``qps`` uses the front door's ``elapsed`` as the one shared
      denominator.

    Shards that failed to report (dead/respawning) are simply absent;
    the caller records how many answered under ``shards_reporting``.
    """
    counters: Counter[str] = Counter()
    samples: list[float] = []
    batch_sizes: Counter[str] = Counter()
    cache_totals: Counter[str] = Counter()
    stages: dict[str, dict[str, float]] = {}
    cache_seen = False
    repair_seen = False
    for snap in shard_stats:
        if snap.get("repair"):
            repair_seen = True
        counters.update(snap.get("counters", {}))
        samples.extend(snap.get("latency_samples", []))
        batch_sizes.update(snap.get("batch_size_histogram", {}))
        cache = snap.get("cache")
        if cache:
            cache_seen = True
            for field in ("size", "capacity", "hits", "misses",
                          "stale_hits", "evictions",
                          "canonical_probes", "canonical_hits",
                          "canonical_variants", "canonical_new",
                          "canonical_skipped", "canonical_index_size"):
                cache_totals[field] += cache.get(field, 0)
        for name, stats in snap.get("stages", {}).items():
            merged = stages.setdefault(
                name,
                {"busy_seconds": 0.0, "wall_seconds": 0.0,
                 "calls": 0, "items": 0},
            )
            merged["busy_seconds"] += stats.get(
                "busy_seconds", stats.get("seconds", 0.0)
            )
            merged["wall_seconds"] = max(
                merged["wall_seconds"], stats.get("wall_seconds", 0.0)
            )
            merged["calls"] += stats.get("calls", 0)
            merged["items"] += stats.get("items", 0)
    total = counters.get("requests_total", 0)
    hits = counters.get("cache.hits", 0)
    lookups = hits + counters.get("cache.misses", 0)
    batched = sum(int(size) * n for size, n in batch_sizes.items())
    batches = sum(batch_sizes.values())
    merged_cache = None
    if cache_seen:
        obj_lookups = (
            cache_totals["hits"] + cache_totals["misses"]
            + cache_totals["stale_hits"]
        )
        merged_cache = dict(cache_totals)
        merged_cache["hit_rate"] = (
            round(cache_totals["hits"] / obj_lookups, 4) if obj_lookups else 0.0
        )
    merged_repair = None
    if repair_seen:
        requests = counters.get("repair.requests", 0)
        merged_repair = {
            "requests": requests,
            "clean": counters.get("repair.clean", 0),
            "attempted": counters.get("repair.attempted", 0),
            "repaired": counters.get("repair.repaired", 0),
            "abandoned": counters.get("repair.abandoned", 0),
            "budget_exhausted": counters.get("repair.budget_exhausted", 0),
            "verified": counters.get("repair.verified", 0),
            "repair_rate": (
                round(counters.get("repair.repaired", 0) / requests, 4)
                if requests
                else 0.0
            ),
        }
    return {
        "shards_reporting": len(shard_stats),
        "uptime_seconds": round(elapsed, 3),
        "requests_total": total,
        "qps": round(total / elapsed, 3) if elapsed > 0 else 0.0,
        "latency": {
            "samples": len(samples),
            "p50": round(percentile(samples, 50), 6),
            "p95": round(percentile(samples, 95), 6),
            "p99": round(percentile(samples, 99), 6),
            "max": round(max(samples), 6) if samples else 0.0,
        },
        "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "cache": merged_cache,
        "repair": merged_repair,
        "batch_size_histogram": {
            str(k): v for k, v in sorted(batch_sizes.items(), key=lambda i: int(i[0]))
        },
        "mean_batch_size": round(batched / batches, 3) if batches else 0.0,
        "counters": dict(sorted(counters.items())),
        "stages": {
            name: {
                "busy_seconds": round(stats["busy_seconds"], 6),
                "wall_seconds": round(stats["wall_seconds"], 6),
                "calls": stats["calls"],
                "items": stats["items"],
            }
            for name, stats in stages.items()
        },
    }
