"""Asyncio front door over N shared-nothing serving shards.

:class:`ShardedService` scales :class:`~repro.serving.service.
TranslationService` horizontally: it forks ``replicas`` shard processes
(each a complete service replica — own model, cache, batcher, breaker;
see :mod:`repro.serving.shard`) and routes every request over a
consistent-hash ring keyed on the **anonymized question** — the same
string the per-shard :class:`~repro.serving.cache.TranslationCache`
keys on.  Routing on the cache key is what keeps scale-out from
diluting the cache: each key lives on exactly one shard, so the
aggregate hit rate matches a single process within the noise of
single-flight races, and the union of shard caches holds zero
duplicate entries (audited by :meth:`cache_keys`).

One event loop (in a dedicated daemon thread) owns all shard state:
pipes are registered with ``loop.add_reader``, and every mutation of
the ring, the shard table, or a shard's pending map happens on the
loop thread — callers reach it through ``call_soon_threadsafe``.  The
dispatch executor runs preprocessing (CPU-bound, and the routing key
depends on it) off the loop so a slow question never stalls I/O.

Supervision mirrors the synthesis tier's shard supervisor
(:mod:`repro.core.parallel`): a shard whose pipe hits EOF is declared
dead, its in-flight requests are **re-dispatched** (each request gets
``max_request_attempts`` lives before failing with the stable
``worker_died`` code), and the shard is respawned up to
``max_respawns`` times before being **quarantined** — removed from the
ring, so only its keys remap onto the survivors (bounded by the
consistent-hash property).

Rolling checkpoint reload (:meth:`rolling_reload`) walks the shards
*sequentially*: each shard builds the new model in a background thread
and swaps it atomically while its siblings — and its own recv loop —
keep serving, so a fleet-wide model upgrade completes with zero failed
responses.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable

from repro.errors import ServingError, TranslationError
from repro.perf.instrumentation import PerfRecorder
from repro.serving.config import ServingConfig, ShardedConfig
from repro.serving.hashring import HashRing
from repro.serving.limits import TokenBucket
from repro.serving.metrics import MetricsRegistry, merge_shard_stats
from repro.serving.service import (
    ERROR,
    REJECTED,
    SOURCE_NONE,
    ServiceFailure,
    ServingResponse,
)
from repro.serving.shard import ShardSpec, shard_main

#: Seconds between drain-progress checks while stopping.
_DRAIN_POLL = 0.05
#: Seconds to wait for a shard's stats reply before reporting without it.
_STATS_TIMEOUT = 5.0


@dataclass
class _Pending:
    """One accepted request, from dispatch until its future resolves."""

    request_id: int
    nl: str
    key: str
    timeout: float | None
    future: Future
    started: float
    attempts: int = 0


@dataclass
class _Shard:
    """Loop-thread-owned state of one shard process."""

    name: str
    process: multiprocessing.Process
    conn: object
    pending: dict[int, _Pending] = field(default_factory=dict)
    respawns: int = 0
    quarantined: bool = False
    ready: Future = field(default_factory=Future)
    stopped: bool = False
    waiters: dict[int, Future] = field(default_factory=dict)  # stats/reload/...


class ShardedService:
    """N shard processes behind a consistent-hash-routing async front door.

    Parameters
    ----------
    spec:
        How each shard builds its replica (module-level factory +
        picklable args) and the per-shard :class:`ServingConfig`.  The
        front door enforces the token bucket itself, so shards run
        with ``rate_limit=0`` regardless of what the spec says.
    config:
        Topology and supervision knobs (:class:`ShardedConfig`).

    The public surface mirrors :class:`TranslationService` —
    ``translate`` / ``submit`` / ``query`` / ``stats`` / context
    manager — so callers and the CLI treat 1 process and N processes
    uniformly.
    """

    def __init__(
        self, spec: ShardSpec, config: ShardedConfig | None = None
    ) -> None:
        self.config = config or ShardedConfig()
        # Shards never rate-limit: admission is a front-door concern
        # (a per-shard bucket would make the effective rate depend on
        # the key distribution).
        self.spec = spec.with_config(replace(spec.config, rate_limit=0.0))
        self.serving_config = spec.config
        self.metrics = MetricsRegistry()
        self.recorder = PerfRecorder()
        self._bucket = TokenBucket(spec.config.rate_limit, spec.config.burst)
        self._recorder_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._wire_ids = itertools.count(1)
        self._msg_ids = itertools.count(1)
        self._shard_seq = itertools.count(0)
        self._ring = HashRing(vnodes=self.config.vnodes)
        self._shards: dict[str, _Shard] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._dispatch: ThreadPoolExecutor | None = None
        self._nlidb = None
        self._preprocess = None
        self._running = False
        self._stopping = False
        self._started = 0.0
        self._lifecycle_lock = threading.Lock()
        # Accepted-but-unfinished requests (admitted by submit(), not
        # yet resolved by _finish()): the drain-on-stop condition.
        # Counts requests still in the dispatch executor too, which
        # shard.pending alone would miss.
        self._accepted = 0
        self._accepted_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "ShardedService":
        with self._lifecycle_lock:
            if self._running:
                return self
            # The front door needs its own preprocessor: the routing key
            # *is* the anonymized question.  One extra replica build in
            # the parent also gives ``query()`` a database to execute on.
            self._nlidb = self.spec.build()
            self._preprocess = lru_cache(maxsize=4096)(
                self._nlidb.preprocessor.preprocess
            )
            self._dispatch = ThreadPoolExecutor(
                max_workers=self.config.dispatch_threads,
                thread_name_prefix="repro-front-door",
            )
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-front-door-loop",
                daemon=True,
            )
            self._loop_thread.start()
            self._started = time.monotonic()
            shards = [self._spawn_shard() for _ in range(self.config.replicas)]
            self._call(self._register_shards, shards)
            self._running = True
        try:
            for shard in shards:
                outcome = shard.ready.result(timeout=self.config.boot_timeout)
                if outcome is not True:
                    raise ServingError(
                        f"shard {shard.name} failed to boot: {outcome}"
                    )
        except Exception:
            self.stop()
            raise
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Drain in-flight requests, then stop every shard and the loop."""
        with self._lifecycle_lock:
            if self._loop is None:
                return
            self._running = False
            drain = self.config.drain_timeout if timeout is None else timeout
            self._call(self._set_stopping)
            deadline = time.monotonic() + drain
            while time.monotonic() < deadline:
                with self._accepted_lock:
                    drained = self._accepted == 0
                if drained:
                    break
                time.sleep(_DRAIN_POLL)
            self._call(self._send_stop_all)
            grace_deadline = time.monotonic() + self.config.grace
            processes = [s.process for s in self._shards.values()]
            while time.monotonic() < grace_deadline:
                if not any(p.is_alive() for p in processes):
                    break
                time.sleep(_DRAIN_POLL)
            self._call(self._teardown_shards)
            if self._dispatch is not None:
                self._dispatch.shutdown(wait=True)
                self._dispatch = None
            loop = self._loop
            self._loop = None
            loop.call_soon_threadsafe(loop.stop)
            self._loop_thread.join(timeout=5.0)
            loop.close()
            self._loop_thread = None

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Public API (mirrors TranslationService)
    # ------------------------------------------------------------------

    def translate(self, nl: str, timeout: float | None = None) -> ServingResponse:
        return self.submit(nl, timeout).result()

    def submit(self, nl: str, timeout: float | None = None) -> Future:
        """Route one question to its shard; resolves to a ServingResponse."""
        if not self._running:
            raise ServingError("sharded service is not running")
        request_id = next(self._ids)
        started = time.monotonic()
        future: Future = Future()
        with self._accepted_lock:
            self._accepted += 1
        if not self._bucket.try_acquire():
            self._finish(
                ServingResponse(
                    request_id,
                    nl,
                    status=REJECTED,
                    source=SOURCE_NONE,
                    failure=ServiceFailure("rate_limited", "admission rate exceeded"),
                ),
                future,
                started,
            )
            return future
        pending = _Pending(request_id, nl, key="", timeout=timeout,
                           future=future, started=started)
        self._dispatch.submit(self._preprocess_and_route, pending)
        return future

    def query(self, nl: str, max_rows: int | None = None):
        """Translate via the cluster, then execute (raises on failure)."""
        response = self.translate(nl)
        if response.result is None or not response.result.ok:
            detail = response.failure.message if response.failure else "no SQL produced"
            raise TranslationError(f"could not serve {nl!r}: {detail}")
        from repro.db.executor import execute

        return execute(response.result.query, self._nlidb.database, max_rows=max_rows)

    def rolling_reload(self, loader: Callable, *args, **kwargs) -> list[dict]:
        """Swap every shard's model, one shard at a time, zero downtime.

        ``loader(*args, **kwargs)`` must be a module-level callable
        returning a :class:`~repro.neural.base.TranslationModel`; it
        runs inside each shard.  Shards are walked sequentially so at
        most one is busy building at any moment; requests keep flowing
        to all of them throughout (the build happens off the shard's
        recv loop).  Returns one ``{"shard", "generation"}`` record per
        reloaded shard; raises if any shard's reload fails.
        """
        if not self._running:
            raise ServingError("sharded service is not running")
        results = []
        for name in list(self._call(self._live_shard_names)):
            waiter = self._call(
                self._send_control, name, "reload", (loader, args, kwargs)
            )
            if waiter is None:
                continue  # shard died between listing and send; respawn handles it
            outcome = waiter.result(timeout=self.config.boot_timeout)
            if isinstance(outcome, Exception):
                raise ServingError(f"reload failed on {name}: {outcome}")
            results.append({"shard": name, "generation": outcome})
            self.metrics.increment("supervisor.reloads")
        return results

    def shard_pids(self) -> dict[str, int]:
        """PID per live shard (fault-injection tests kill these)."""
        return self._call(
            lambda: {
                name: shard.process.pid
                for name, shard in self._shards.items()
                if not shard.quarantined and not shard.stopped
            }
        )

    def cache_keys(self) -> dict[str, list[str]]:
        """Resident cache keys per shard (the shard-exclusivity audit)."""
        if not self._running:
            raise ServingError("sharded service is not running")
        waiters = {}
        for name in self._call(self._live_shard_names):
            waiter = self._call(self._send_control, name, "cache_keys", None)
            if waiter is not None:
                waiters[name] = waiter
        return {
            name: waiter.result(timeout=_STATS_TIMEOUT)
            for name, waiter in waiters.items()
        }

    def stats(self) -> dict:
        """Front-door, per-shard, and merged cluster metrics in one view."""
        elapsed = time.monotonic() - self._started if self._started else 0.0
        shard_snaps: dict[str, dict] = {}
        if self._running:
            waiters = {}
            for name in self._call(self._live_shard_names):
                waiter = self._call(self._send_control, name, "stats", None)
                if waiter is not None:
                    waiters[name] = waiter
            for name, waiter in waiters.items():
                try:
                    shard_snaps[name] = waiter.result(timeout=_STATS_TIMEOUT)
                except Exception:  # noqa: BLE001 — shard died mid-query
                    continue
        front = self.metrics.snapshot()
        with self._recorder_lock:
            front["stages"] = self.recorder.report()
        supervisor = {
            "respawns": self.metrics.counter("supervisor.respawns"),
            "quarantined": self.metrics.counter("supervisor.quarantined"),
            "redispatched": self.metrics.counter("supervisor.redispatched"),
            "failed_requests": self.metrics.counter("supervisor.failed_requests"),
        }
        from repro.serving.service import TranslationService

        return {
            "replicas": self.config.replicas,
            "front": front,
            "cluster": merge_shard_stats(list(shard_snaps.values()), elapsed),
            "shards": shard_snaps,
            "ring": self._call(self._ring_stats) if self._running else self._ring.stats(),
            "supervisor": supervisor,
            "stages_legend": dict(TranslationService.STAGES_LEGEND),
            "config": {
                "sharded": self.config.to_dict(),
                "serving": self.serving_config.to_dict(),
            },
        }

    # ------------------------------------------------------------------
    # Dispatch path (executor threads → loop thread)
    # ------------------------------------------------------------------

    def _preprocess_and_route(self, pending: _Pending) -> None:
        try:
            t0 = time.monotonic()
            pre = self._preprocess(pending.nl)
            with self._recorder_lock:
                self.recorder.add("preprocess", time.monotonic() - t0)
        except Exception as exc:  # noqa: BLE001 — malformed input
            self._finish(
                ServingResponse(
                    pending.request_id,
                    pending.nl,
                    status=ERROR,
                    source=SOURCE_NONE,
                    failure=ServiceFailure(
                        "untranslatable",
                        f"preprocessing failed: {exc}",
                        retryable=False,
                    ),
                ),
                pending.future,
                pending.started,
            )
            return
        pending.key = pre.model_input
        loop = self._loop
        if loop is None:
            self._fail(pending, "worker_died", "service stopped during dispatch")
            return
        loop.call_soon_threadsafe(self._route_and_send, pending)

    def _route_and_send(self, pending: _Pending) -> None:
        """Loop thread: place ``pending`` on its shard (or shed/fail it).

        Draining (``_stopping``) does not short-circuit here: a request
        accepted before stop() still gets routed and served — only
        *new* submissions are refused (submit() checks ``running``).
        """
        if len(self._ring) == 0:
            self._fail(
                pending, "worker_died",
                "no shards available (all quarantined)",
            )
            return
        name = self._ring.route(pending.key)
        shard = self._shards[name]
        if len(shard.pending) >= self.config.max_inflight_per_shard:
            self.metrics.increment("shed.queue_full")
            self._finish(
                ServingResponse(
                    pending.request_id,
                    pending.nl,
                    status=REJECTED,
                    source=SOURCE_NONE,
                    failure=ServiceFailure(
                        "queue_full", f"shard {name} is at max in-flight"
                    ),
                ),
                pending.future,
                pending.started,
            )
            return
        pending.attempts += 1
        wid = next(self._wire_ids)
        shard.pending[wid] = pending
        try:
            shard.conn.send(("translate", wid, pending.nl, pending.timeout))
        except (BrokenPipeError, OSError):
            shard.pending.pop(wid, None)
            self._on_shard_death(shard, redispatch=[pending])

    def _finish(self, response: ServingResponse, future: Future, started: float) -> None:
        """Restamp latency end-to-end, record, resolve the caller's future."""
        response.latency = time.monotonic() - started
        self.metrics.record_request(response.status, response.source, response.latency)
        with self._accepted_lock:
            self._accepted -= 1
        if not future.done():
            future.set_result(response)

    def _fail(self, pending: _Pending, code: str, message: str) -> None:
        self.metrics.increment("supervisor.failed_requests")
        self._finish(
            ServingResponse(
                pending.request_id,
                pending.nl,
                status=ERROR,
                source=SOURCE_NONE,
                failure=ServiceFailure(code, message),
            ),
            pending.future,
            pending.started,
        )

    # ------------------------------------------------------------------
    # Loop-thread helpers (all shard/ring state is confined here)
    # ------------------------------------------------------------------

    def _call(self, fn, *args):
        """Run ``fn`` on the loop thread and wait for its result."""
        loop = self._loop
        if loop is None:
            raise ServingError("sharded service is not running")
        waiter: Future = Future()

        def runner() -> None:
            try:
                waiter.set_result(fn(*args))
            except Exception as exc:  # noqa: BLE001
                waiter.set_exception(exc)

        loop.call_soon_threadsafe(runner)
        return waiter.result(timeout=30.0)

    def _set_stopping(self) -> None:
        self._stopping = True

    def _live_shard_names(self) -> list[str]:
        return [n for n, s in self._shards.items()
                if not s.quarantined and not s.stopped]

    def _ring_stats(self) -> dict:
        stats = self._ring.stats()
        stats["quarantined"] = sorted(
            n for n, s in self._shards.items() if s.quarantined
        )
        return stats

    def _send_control(self, name: str, kind: str, extra) -> Future | None:
        """Send a control message; returns the reply waiter (or None)."""
        shard = self._shards.get(name)
        if shard is None or shard.quarantined or shard.stopped:
            return None
        mid = next(self._msg_ids)
        waiter: Future = Future()
        shard.waiters[mid] = waiter
        if kind == "reload":
            loader, args, kwargs = extra
            message = ("reload", mid, loader, args, kwargs)
        else:
            message = (kind, mid)
        try:
            shard.conn.send(message)
        except (BrokenPipeError, OSError):
            shard.waiters.pop(mid, None)
            self._on_shard_death(shard)
            return None
        return waiter

    def _spawn_shard(self) -> _Shard:
        """Fork one shard process (callable from any thread pre-registration)."""
        name = f"shard-{next(self._shard_seq)}"
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=shard_main,
            args=(child_conn, name, self.spec),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Shard(name=name, process=process, conn=parent_conn)

    def _register_shards(self, shards: list[_Shard]) -> None:
        for shard in shards:
            self._shards[shard.name] = shard
            self._ring.add(shard.name)
            self._loop.add_reader(
                shard.conn.fileno(), self._on_readable, shard
            )

    def _on_readable(self, shard: _Shard) -> None:
        try:
            while shard.conn.poll():
                self._on_message(shard, shard.conn.recv())
        except (EOFError, OSError):
            self._on_shard_death(shard)

    def _on_message(self, shard: _Shard, message: tuple) -> None:
        kind = message[0]
        if kind == "response":
            _, wid, response = message
            pending = shard.pending.pop(wid, None)
            if pending is None:
                return  # re-dispatched after a presumed death; drop dup
            response.request_id = pending.request_id
            self._finish(response, pending.future, pending.started)
        elif kind == "response_error":
            _, wid, detail = message
            pending = shard.pending.pop(wid, None)
            if pending is not None:
                self._fail(pending, "worker_died", detail)
        elif kind in ("stats", "cache_keys", "reloaded"):
            _, mid, payload = message
            waiter = shard.waiters.pop(mid, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(payload)
        elif kind == "reload_error":
            _, mid, detail = message
            waiter = shard.waiters.pop(mid, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(ServingError(detail))
        elif kind == "ready":
            if not shard.ready.done():
                shard.ready.set_result(True)
        elif kind == "boot_error":
            if not shard.ready.done():
                shard.ready.set_result(message[1])
            else:
                # A respawn failed to boot: counts as another death.
                self._on_shard_death(shard)
        elif kind == "stopped":
            shard.stopped = True

    def _on_shard_death(self, shard: _Shard, redispatch: list | None = None) -> None:
        """Loop thread: detect, respawn-or-quarantine, re-dispatch."""
        if shard.stopped or self._shards.get(shard.name) is not shard:
            return  # orderly stop, or already replaced
        if not shard.ready.done():
            # Died before the ready handshake: surface it to start().
            shard.ready.set_result(f"shard {shard.name} process died during boot")
        try:
            self._loop.remove_reader(shard.conn.fileno())
        except (ValueError, OSError):
            pass
        try:
            shard.conn.close()
        except OSError:
            pass
        outstanding = list(shard.pending.values()) + list(redispatch or ())
        shard.pending.clear()
        for waiter in shard.waiters.values():
            if not waiter.done():
                waiter.set_exception(ServingError(f"shard {shard.name} died"))
        shard.waiters.clear()
        if self._stopping:
            for pending in outstanding:
                self._fail(pending, "worker_died", f"shard {shard.name} died")
            return
        if shard.respawns >= self.config.max_respawns:
            shard.quarantined = True
            self._shards[shard.name] = shard
            if shard.name in self._ring:
                self._ring.remove(shard.name)
            self.metrics.increment("supervisor.quarantined")
        else:
            self.metrics.increment("supervisor.respawns")
            fresh = self._spawn_shard_as(shard.name, shard.respawns + 1)
            self._shards[shard.name] = fresh
            self._loop.add_reader(
                fresh.conn.fileno(), self._on_readable, fresh
            )
        # Re-dispatch the dead shard's in-flight requests.  On respawn
        # they land back on the same (fresh) shard; after quarantine
        # the ring has already remapped their keys onto survivors.
        for pending in outstanding:
            if pending.attempts >= self.config.max_request_attempts:
                self._fail(
                    pending, "worker_died",
                    f"shard {shard.name} died {pending.attempts} times"
                    " while serving this request",
                )
            else:
                self.metrics.increment("supervisor.redispatched")
                self._route_and_send(pending)

    def _spawn_shard_as(self, name: str, respawns: int) -> _Shard:
        """Respawn under an existing ring name, preserving the respawn count."""
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=shard_main,
            args=(child_conn, name, self.spec),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Shard(
            name=name, process=process, conn=parent_conn, respawns=respawns
        )

    def _send_stop_all(self) -> None:
        for shard in self._shards.values():
            if shard.quarantined or shard.stopped:
                continue
            try:
                shard.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass

    def _teardown_shards(self) -> None:
        for shard in self._shards.values():
            try:
                self._loop.remove_reader(shard.conn.fileno())
            except (ValueError, OSError):
                pass
            for pending in shard.pending.values():
                self._fail(pending, "worker_died", "service stopped")
            shard.pending.clear()
            for waiter in shard.waiters.values():
                if not waiter.done():
                    waiter.set_exception(ServingError("service stopped"))
            shard.waiters.clear()
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=2.0)
