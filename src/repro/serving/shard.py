"""Shard-side of the horizontally sharded serving tier.

A *shard* is one OS process hosting a complete
:class:`~repro.serving.service.TranslationService` replica — its own
model, translation cache, micro-batcher, breaker, and metrics.  Shards
share nothing; the front door (:mod:`repro.serving.front_door`) owns
the consistent-hash ring and talks to each shard over a duplex
:func:`multiprocessing.Pipe` with small tuple messages:

=====================  =============================================
parent → shard          meaning
=====================  =============================================
``("translate", wid,    serve one question; reply ``("response",
nl, timeout)``          wid, ServingResponse)`` when done
``("stats", mid)``      reply ``("stats", mid, snapshot)`` where the
                        snapshot carries raw latency samples so the
                        parent can compute *merged* percentiles
``("cache_keys",        reply ``("cache_keys", mid, [key, ...])`` —
mid)``                  the shard-exclusivity audit surface
``("reload", mid,       build ``loader(*args, **kwargs)`` in a
loader, args,           background thread, atomically swap it in via
kwargs)``               :meth:`TranslationService.reload_model`, and
                        reply ``("reloaded", mid, generation)``; the
                        recv loop keeps serving throughout
``("stop",)``           drain the local service, reply
                        ``("stopped",)``, exit 0
=====================  =============================================

Responses are sent from service executor threads (translation) and the
reload thread as well as the recv loop, so every ``conn.send`` goes
through one lock — :class:`multiprocessing.connection.Connection` is
not safe for concurrent writers.

The child ignores ``SIGINT``: on Ctrl-C the whole foreground process
group receives the signal, and shard shutdown must stay parent-driven
(``stop`` message, then ``SIGTERM`` after the grace period) so the
drain is orderly.  A shard that dies any other way is detected by the
parent as EOF on the pipe and respawned.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection
from typing import Callable

from repro.runtime.interface import DBPal
from repro.serving.config import ServingConfig


@dataclass(frozen=True)
class ShardSpec:
    """Recipe for building one shard's service replica.

    ``factory(*args, **kwargs)`` must return a fitted
    :class:`~repro.runtime.interface.DBPal`.  It runs *inside the child
    process* (each shard builds its own replica post-fork — nothing is
    shared), so it must be a module-level callable with picklable
    arguments.
    """

    factory: Callable[..., DBPal]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    config: ServingConfig = field(default_factory=ServingConfig)

    def build(self) -> DBPal:
        return self.factory(*self.args, **self.kwargs)

    def with_config(self, config: ServingConfig) -> "ShardSpec":
        return replace(self, config=config)


def shard_main(conn: Connection, shard_id: str, spec: ShardSpec) -> None:
    """Child-process entry point: serve until ``stop`` or parent death."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # parent is gone; nothing left to tell it

    try:
        nlidb = spec.build()
        from repro.serving.service import TranslationService

        service = TranslationService(nlidb, spec.config)
        service.start()
    except Exception as exc:  # noqa: BLE001 — report, don't traceback-spam
        send(("boot_error", f"{type(exc).__name__}: {exc}"))
        return
    generation = 0
    send(("ready", shard_id))

    def on_done(wid: int, future) -> None:
        try:
            response = future.result()
        except Exception as exc:  # noqa: BLE001 — defensive; submit never raises
            send(("response_error", wid, f"{type(exc).__name__}: {exc}"))
            return
        send(("response", wid, response))

    def do_reload(mid: int, loader, args, kwargs) -> None:
        nonlocal generation
        try:
            model = loader(*args, **kwargs)
            service.reload_model(model)
        except Exception as exc:  # noqa: BLE001
            send(("reload_error", mid, f"{type(exc).__name__}: {exc}"))
            return
        generation += 1
        send(("reloaded", mid, generation))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died; die with it
            kind = message[0]
            if kind == "translate":
                _, wid, nl, timeout = message
                future = service.submit(nl, timeout)
                future.add_done_callback(lambda f, wid=wid: on_done(wid, f))
            elif kind == "stats":
                snap = service.stats()
                snap["latency_samples"] = [
                    round(s, 6) for s in service.metrics.latency_samples()
                ]
                snap["generation"] = generation
                send(("stats", message[1], snap))
            elif kind == "cache_keys":
                keys = service.cache.keys() if service.cache is not None else []
                send(("cache_keys", message[1], keys))
            elif kind == "reload":
                _, mid, loader, args, kwargs = message
                # Background thread: the recv loop must keep dispatching
                # translations while the new model is being built — that
                # is the whole point of a *rolling* reload.
                threading.Thread(
                    target=do_reload,
                    args=(mid, loader, args, kwargs),
                    name=f"repro-shard-{shard_id}-reload",
                    daemon=True,
                ).start()
            elif kind == "stop":
                break
    finally:
        service.stop()
        send(("stopped",))
