"""Concurrent query-serving layer over the DBPal runtime.

PR 1 made the *offline* pipeline fast; this package makes the *online*
path production-shaped: an admission queue and worker pool micro-batch
concurrent questions into one ``translate_batch`` call, an
anonymization-keyed TTL+LRU cache with single-flight coalescing
deduplicates the model work, and a token bucket + circuit breaker +
fallback chain keep the service answering (degraded, never crashed)
while the model misbehaves.  See DESIGN.md §"Serving layer".
"""

from repro.serving.batcher import BatchRequest, MicroBatcher
from repro.serving.cache import CacheHit, TranslationCache
from repro.serving.config import ServingConfig
from repro.serving.fallback import KeywordFallback
from repro.serving.limits import CircuitBreaker, TokenBucket
from repro.serving.metrics import MetricsRegistry, percentile
from repro.serving.service import (
    ServiceFailure,
    ServingResponse,
    TranslationService,
)

__all__ = [
    "BatchRequest",
    "CacheHit",
    "CircuitBreaker",
    "KeywordFallback",
    "MetricsRegistry",
    "MicroBatcher",
    "ServiceFailure",
    "ServingConfig",
    "ServingResponse",
    "TokenBucket",
    "TranslationCache",
    "TranslationService",
    "percentile",
]
