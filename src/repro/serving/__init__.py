"""Concurrent query-serving layer over the DBPal runtime.

PR 1 made the *offline* pipeline fast; this package makes the *online*
path production-shaped: an admission queue and worker pool micro-batch
concurrent questions into one ``translate_batch`` call, an
anonymization-keyed TTL+LRU cache with single-flight coalescing
deduplicates the model work, and a token bucket + circuit breaker +
fallback chain keep the service answering (degraded, never crashed)
while the model misbehaves.  See DESIGN.md §"Serving layer".

The sharded tier scales that service horizontally: ``ShardedService``
forks N shared-nothing replicas and routes requests over a
consistent-hash ring keyed on the anonymized question, so each cache
key lives on exactly one shard.  See DESIGN.md §"Sharded serving tier".
"""

from repro.serving.batcher import BatchRequest, MicroBatcher
from repro.serving.cache import CacheHit, TranslationCache
from repro.serving.config import ServingConfig, ShardedConfig
from repro.serving.fallback import KeywordFallback
from repro.serving.front_door import ShardedService
from repro.serving.hashring import HashRing
from repro.serving.limits import CircuitBreaker, TokenBucket
from repro.serving.metrics import MetricsRegistry, merge_shard_stats, percentile
from repro.serving.repair import (
    QueryRepairer,
    RepairBudget,
    RepairPipeline,
    RepairReport,
    RepairTrace,
)
from repro.serving.service import (
    ServiceFailure,
    ServingResponse,
    TranslationService,
)
from repro.serving.shard import ShardSpec

__all__ = [
    "BatchRequest",
    "CacheHit",
    "CircuitBreaker",
    "HashRing",
    "KeywordFallback",
    "MetricsRegistry",
    "MicroBatcher",
    "QueryRepairer",
    "RepairBudget",
    "RepairPipeline",
    "RepairReport",
    "RepairTrace",
    "ServiceFailure",
    "ServingConfig",
    "ServingResponse",
    "ShardSpec",
    "ShardedConfig",
    "ShardedService",
    "TokenBucket",
    "TranslationCache",
    "TranslationService",
    "merge_shard_stats",
    "percentile",
]
