"""Admission queue + worker pool with micro-batching.

Requests enter a bounded queue; worker threads drain it in *micro
batches*: after the first request of a batch arrives, a worker keeps
gathering until either ``max_batch_size`` requests are in hand or
``batch_window`` seconds have passed, then hands the whole batch to the
processing callback (which calls
:meth:`~repro.neural.base.TranslationModel.translate_batch` once).

The batcher is deliberately policy-free: caching, single-flight
coalescing, circuit breaking, and fallbacks all live in
:mod:`repro.serving.service`; this module only moves requests from the
queue into batches without losing any, including during shutdown.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServingError

#: Worker shutdown sentinel (one per worker is enqueued by ``stop``).
_STOP = object()


@dataclass
class BatchRequest:
    """One queued translation request.

    ``future`` resolves to whatever the processing callback decides —
    the batcher itself only guarantees it resolves (an exception is set
    if the callback dies), so frontend waiters can never hang forever.
    """

    key: str
    model_input: str
    future: Future = field(default_factory=Future)


class MicroBatcher:
    """Bounded admission queue drained by micro-batching workers."""

    def __init__(
        self,
        process_batch: Callable[[list[BatchRequest]], None],
        workers: int = 2,
        max_batch_size: int = 8,
        batch_window: float = 0.004,
        queue_capacity: int = 256,
    ) -> None:
        self._process_batch = process_batch
        self._workers_n = workers
        self._max_batch = max_batch_size
        self._window = batch_window
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        with self._lock:
            if self._running:
                return
            self._running = True
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serving-{i}",
                    daemon=True,
                )
                for i in range(self._workers_n)
            ]
            for thread in self._threads:
                thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain and join the workers (queued requests still complete)."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: BatchRequest) -> bool:
        """Enqueue one request; ``False`` means the queue is full (shed)."""
        if not self._running:
            raise ServingError("batcher is not running (call start() first)")
        try:
            self._queue.put_nowait(request)
            return True
        except queue.Full:
            return False

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _gather_batch(self) -> list[BatchRequest] | None:
        """Block for one request, then fill a batch within the window.

        Returns ``None`` when a stop sentinel arrives with no batch in
        progress; a sentinel arriving mid-gather is re-queued so sibling
        workers also wind down.
        """
        first = self._queue.get()
        if first is _STOP:
            return None
        batch = [first]
        deadline = time.monotonic() + self._window
        while len(batch) < self._max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._gather_batch()
            if batch is None:
                return
            try:
                self._process_batch(batch)
            except BaseException as exc:  # noqa: BLE001 — never hang waiters
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
