"""Budgeted execute–verify–repair pipeline for the serving tier.

A trained NL2SQL model still emits near-miss queries: a misspelled
column, a FROM clause the join graph cannot connect, an aggregate in
WHERE, a placeholder that never got a constant.  This module turns the
serving tier's first guess into a verified answer in three stages:

1. **verify** — run the candidate through the semantic analyzer
   (:func:`repro.analysis.analyze_query`); ``L1xx`` codes name the
   broken clause, :class:`~repro.analysis.diagnostics.FixHint` names the
   broken identifier;
2. **repair** — apply targeted AST edits keyed on the diagnostic code
   (:mod:`repro.sql.edits`): unknown column → nearest schema synonym
   via the value index / NL annotations, missing join path → FK-path
   inference over the schema join graph, aggregate/grouping misuse →
   clause rewrite, unbound placeholder → constant re-binding from the
   anonymization map — then re-lint and iterate;
3. **re-rank** — execute surviving lint-clean candidates against the
   sampled database through the :class:`~repro.adapters.BackendAdapter`
   protocol, preferring candidates that execute cleanly and return
   non-degenerate results.

The whole loop runs under a :class:`RepairBudget` (attempts, wall-clock
deadline, per-stage execute timeout) that charges every lint/repair/
execute step.  Degradation order: repaired → best-unverified → the
caller's existing stale-cache/keyword-fallback chain.  ``run`` **never
raises**: every outcome — including budget-exhausted and fault-injected
runs — is a :class:`RepairReport` carrying a structured per-step
:class:`RepairTrace`.

Stage timeouts are cooperative, not pre-emptive: an execute step that
overruns ``execute_timeout`` is not killed, its verdict is demoted to
``timeout`` and the loop degrades — honest semantics for in-thread
work, and exactly reproducible through the :data:`~repro.core.faults.
SLOW_EXECUTE` fault hook, which charges *virtual* seconds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, FixHint, Severity
from repro.analysis.sql_semantics import analyze_query
from repro.core.faults import (
    ADAPTER_CRASH,
    NO_REPAIR_FAULTS,
    REPAIR_OSCILLATE,
    SLOW_EXECUTE,
    RepairFaultPlan,
)
from repro.db.index import ValueIndex
from repro.db.similarity import jaccard_trigram
from repro.errors import (
    E_REPAIR_BUDGET,
    E_REPAIR_EXEC,
    E_REPAIR_OSCILLATION,
    E_REPAIR_UNFIXABLE,
    SchemaError,
    ServingError,
)
from repro.schema.schema import Schema
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    InPredicate,
    Like,
    Literal,
    Predicate,
    Query,
    conjoin,
    conjuncts,
)
from repro.sql.edits import (
    add_group_by,
    map_column_refs,
    map_placeholders,
    move_aggregate_conjuncts_to_having,
    move_having_to_where,
    qualify_column,
    rename_column,
    rename_table,
    replace_aggregate_func,
)
from repro.sql.printer import to_sql

#: Repair outcomes (terminal, exactly one per run).
CLEAN = "clean"  # first guess lint-clean; no repair needed
REPAIRED = "repaired"  # a repaired candidate is being served
ABANDONED = "abandoned"  # no strategy / oscillation / execution refuted
EXHAUSTED = "budget_exhausted"  # attempts or deadline ran out first

#: Execution verdicts for one candidate.
EXEC_OK = "ok"  # executed cleanly, non-degenerate rows
EXEC_EMPTY = "empty"  # executed cleanly but degenerate (no rows)
EXEC_TIMEOUT = "timeout"  # ran past the per-stage execute timeout
EXEC_ERROR = "error"  # raised (including injected adapter crashes)

#: Verdict preference for re-ranking (lower is better).
_VERDICT_RANK = {EXEC_OK: 0, EXEC_EMPTY: 1, EXEC_TIMEOUT: 2, EXEC_ERROR: 3}

#: Minimum trigram similarity for a rename candidate.
_SIMILARITY_FLOOR = 0.3
#: Second-best candidates within this margin spawn an alternate variant.
_ALTERNATE_MARGIN = 0.15


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RepairBudget:
    """Hard resource bounds for one repair run.

    ``max_attempts`` bounds repair→re-lint cycles, ``deadline`` bounds
    the whole run's wall-clock, ``execute_timeout`` disqualifies any
    single execution step that overruns it, ``max_candidates`` bounds
    the re-rank pool, and ``max_rows`` caps rows pulled per execution.
    """

    max_attempts: int = 2
    deadline: float = 0.25
    execute_timeout: float = 0.1
    max_candidates: int = 2
    max_rows: int = 100

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ServingError("max_attempts must be >= 0")
        if self.deadline <= 0:
            raise ServingError("deadline must be > 0")
        if self.execute_timeout <= 0:
            raise ServingError("execute_timeout must be > 0")
        if self.max_candidates < 1:
            raise ServingError("max_candidates must be >= 1")
        if self.max_rows < 1:
            raise ServingError("max_rows must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 0

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "deadline": self.deadline,
            "execute_timeout": self.execute_timeout,
            "max_candidates": self.max_candidates,
            "max_rows": self.max_rows,
        }


class _BudgetClock:
    """Per-run charge meter: real seconds + fault-injected virtual ones."""

    def __init__(self, budget: RepairBudget, clock) -> None:
        self.budget = budget
        self._clock = clock
        self.spent = 0.0
        self.attempts_used = 0

    def charge(self, seconds: float) -> None:
        self.spent += max(0.0, seconds)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.budget.deadline

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.budget.max_attempts,
            "deadline": self.budget.deadline,
            "attempts_used": self.attempts_used,
            "spent_seconds": round(self.spent, 6),
            "exhausted": self.exhausted,
        }


# ----------------------------------------------------------------------
# Trace
# ----------------------------------------------------------------------


@dataclass
class RepairStep:
    """One charged step of a repair run (lint, repair, or execute)."""

    stage: str  # verify | repair | execute
    action: str
    detail: str = ""
    codes: tuple[str, ...] = ()
    seconds: float = 0.0

    def to_dict(self) -> dict:
        record: dict = {
            "stage": self.stage,
            "action": self.action,
            "seconds": round(self.seconds, 6),
        }
        if self.detail:
            record["detail"] = self.detail
        if self.codes:
            record["codes"] = list(self.codes)
        return record


@dataclass
class RepairTrace:
    """Structured per-step account of one repair run.

    Attached (as a plain dict) to every :class:`ServingResponse` the
    pipeline touched, surfaced in ``stats()`` and ``--stats-json``.
    """

    outcome: str = CLEAN
    verified: bool = False  # an execution verdict backs the answer
    error_code: str | None = None  # E_REPAIR_* when not clean/repaired
    reason: str = ""
    codes_tried: list[str] = field(default_factory=list)
    edits: list[dict] = field(default_factory=list)
    executions: list[dict] = field(default_factory=list)
    steps: list[RepairStep] = field(default_factory=list)
    budget: dict = field(default_factory=dict)

    def step(
        self,
        stage: str,
        action: str,
        detail: str = "",
        codes: tuple[str, ...] = (),
        seconds: float = 0.0,
    ) -> None:
        self.steps.append(RepairStep(stage, action, detail, codes, seconds))
        for code in codes:
            if code not in self.codes_tried:
                self.codes_tried.append(code)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "verified": self.verified,
            "error_code": self.error_code,
            "reason": self.reason,
            "codes_tried": list(self.codes_tried),
            "edits": list(self.edits),
            "executions": list(self.executions),
            "steps": [s.to_dict() for s in self.steps],
            "budget": dict(self.budget),
        }


@dataclass
class RepairReport:
    """Terminal result of one pipeline run."""

    query: Query
    sql: str
    outcome: str
    verified: bool
    trace: RepairTrace

    @property
    def accepted(self) -> bool:
        """Whether the caller should serve ``query`` in place of its input."""
        return self.outcome == REPAIRED


@dataclass(frozen=True)
class RepairEdit:
    """One applied AST edit, keyed on the diagnostic it answers."""

    code: str
    action: str
    detail: str

    def to_dict(self) -> dict:
        return {"code": self.code, "action": self.action, "detail": self.detail}


# ----------------------------------------------------------------------
# Stage 2: targeted AST repairs keyed on diagnostic codes
# ----------------------------------------------------------------------


class QueryRepairer:
    """Proposes AST-level fixes for ``L1xx`` diagnostics.

    ``propose`` returns candidate rewrites best-first: the primary
    candidate applies the top-scored fix for every repairable
    diagnostic; when the best identifier match is closely contested, a
    single alternate candidate takes the runner-up for the contested
    edit so the execution re-rank — not string similarity alone — gets
    to pick the winner.
    """

    def __init__(self, schema: Schema, value_index: ValueIndex | None = None) -> None:
        self.schema = schema
        self.value_index = value_index

    # -- candidate scoring ---------------------------------------------

    @staticmethod
    def _edit_ratio(a: str, b: str) -> float:
        """Normalized Levenshtein similarity; catches short transpositions
        (``nmae`` → ``name``) that trigram overlap scores at zero."""
        a, b = a.lower(), b.lower()
        if a == b:
            return 1.0
        if not a or not b:
            return 0.0
        previous = list(range(len(b) + 1))
        for i, ca in enumerate(a, start=1):
            row = [i]
            for j, cb in enumerate(b, start=1):
                row.append(
                    min(
                        previous[j] + 1,
                        row[j - 1] + 1,
                        previous[j - 1] + (ca != cb),
                    )
                )
            previous = row
        return 1.0 - previous[-1] / max(len(a), len(b))

    @classmethod
    def _phrase_score(cls, needle: str, name: str, phrases) -> float:
        target = needle.replace("_", " ")
        score = max(jaccard_trigram(needle, name), cls._edit_ratio(needle, name))
        for phrase in phrases:
            score = max(score, jaccard_trigram(target, phrase))
        return score

    def _table_candidates(self, name: str) -> list[tuple[float, str]]:
        scored = [
            (self._phrase_score(name, t.name, t.nl_phrases), t.name)
            for t in self.schema.tables
        ]
        return sorted(
            (s for s in scored if s[0] >= _SIMILARITY_FLOOR), reverse=True
        )

    def _column_candidates(
        self, name: str, tables, boost: set[tuple[str, str]] = frozenset()
    ) -> list[tuple[float, str, str]]:
        scored = []
        for table in tables:
            for column in table.columns:
                score = self._phrase_score(name, column.name, column.nl_phrases)
                if (table.name, column.name) in boost:
                    score = max(score, 0.99)
                if score >= _SIMILARITY_FLOOR:
                    scored.append((score, table.name, column.name))
        return sorted(scored, reverse=True)

    def _value_boost(self, query: Query, column: str) -> set[tuple[str, str]]:
        """Columns the value index attributes the column's literals to.

        When the broken column is compared against a constant, the
        constant itself often identifies the intended column — "find the
        column that actually contains 'Alice'" beats any name-similarity
        guess.
        """
        if self.value_index is None:
            return set()
        literals: list = []
        for pred in query.walk_predicates():
            if isinstance(pred, Comparison):
                sides = (pred.left, pred.right)
                if any(
                    isinstance(s, ColumnRef) and s.column == column for s in sides
                ):
                    literals.extend(
                        s.value for s in sides if isinstance(s, Literal)
                    )
            elif isinstance(pred, (Between, InPredicate, Like)):
                if pred.column.column != column:
                    continue
                if isinstance(pred, Between):
                    values = (pred.low, pred.high)
                elif isinstance(pred, InPredicate):
                    values = pred.values
                else:
                    values = (pred.pattern,)
                literals.extend(v.value for v in values if isinstance(v, Literal))
        boost: set[tuple[str, str]] = set()
        for value in literals:
            for hit in self.value_index.lookup(str(value)):
                boost.add((hit.table, hit.column))
        return boost

    # -- scope helpers --------------------------------------------------

    def _scope_tables(self, query: Query):
        names = [t for t in query.from_tables if t in self.schema]
        if query.uses_join_placeholder:
            for t in query.referenced_tables():
                if t in self.schema and t not in names:
                    names.append(t)
        return [self.schema.table(n) for n in names]

    def _ensure_table(self, query: Query, table: str) -> Query:
        """Extend FROM so ``table`` is in scope (join closure + FK conds)."""
        if table in query.from_tables or query.uses_join_placeholder:
            return query
        wanted = [t for t in query.from_tables if t in self.schema] + [table]
        try:
            closure = self.schema.join_tables(wanted)
        except SchemaError:
            return query
        conditions: list[Predicate] = [
            Comparison(
                ColumnRef(fk.column, table=fk.table),
                CompOp.EQ,
                ColumnRef(fk.ref_column, table=fk.ref_table),
            )
            for fk in self.schema.join_path(closure)
        ]
        where = conjoin(conjuncts(query.where) + conditions)
        from dataclasses import replace as dc_replace

        return dc_replace(query, from_tables=tuple(closure), where=where)

    # -- proposal -------------------------------------------------------

    def propose(
        self, query: Query, diagnostics: list[Diagnostic]
    ) -> list[tuple[Query, list[RepairEdit]]]:
        """Candidate rewrites for ``diagnostics``, best first (may be empty)."""
        primary = query
        primary_edits: list[RepairEdit] = []
        seen_fixes: set = set()
        for diag in diagnostics:
            if diag.severity is not Severity.ERROR:
                continue
            fix_key = (diag.code, diag.fix)
            if fix_key in seen_fixes:
                continue
            seen_fixes.add(fix_key)
            applied = self._apply(primary, diag, diag.fix, use_alternate=False)
            if applied is None:
                continue
            primary, edit, _contested = applied
            primary_edits.append(edit)
        alternate, alternate_edits = self._alternate(query, diagnostics)
        candidates = []
        if primary_edits:
            candidates.append((primary, primary_edits))
        if alternate is not None and alternate_edits:
            candidates.append((alternate, alternate_edits))
        return candidates

    def _alternate(
        self, query: Query, diagnostics: list[Diagnostic]
    ) -> tuple[Query | None, list[RepairEdit]]:
        """One variant taking the runner-up for the first contested edit."""
        current = query
        edits: list[RepairEdit] = []
        used_alternate = False
        seen_fixes: set = set()
        for diag in diagnostics:
            if diag.severity is not Severity.ERROR:
                continue
            fix_key = (diag.code, diag.fix)
            if fix_key in seen_fixes:
                continue
            seen_fixes.add(fix_key)
            applied = self._apply(
                current, diag, diag.fix, use_alternate=not used_alternate
            )
            if applied is None:
                continue
            current, edit, contested = applied
            if contested and not used_alternate:
                used_alternate = True
            edits.append(edit)
        if not used_alternate:
            return None, []
        return current, edits

    def _apply(
        self, query: Query, diag: Diagnostic, fix: FixHint | None, use_alternate: bool
    ) -> tuple[Query, RepairEdit, bool] | None:
        """Apply one fix; returns (new_query, edit, was_contested) or None."""
        if fix is None:
            return None
        kind = fix.kind
        if kind == "unknown_table":
            ranked = self._table_candidates(fix.subject)
            pick, contested = self._pick(ranked, use_alternate)
            if pick is None:
                return None
            new_table = pick[-1]
            return (
                rename_table(query, fix.subject, new_table),
                RepairEdit(diag.code, "rename_table", f"{fix.subject} -> {new_table}"),
                contested,
            )
        if kind == "unknown_column":
            scope = self._scope_tables(query)
            if fix.table and fix.table in self.schema:
                tables = [self.schema.table(fix.table)]
            else:
                tables = scope or list(self.schema.tables)
            boost = self._value_boost(query, fix.subject)
            ranked = self._column_candidates(fix.subject, tables, boost)
            pick, contested = self._pick(ranked, use_alternate)
            if pick is None:
                return None
            _score, table, column = pick
            in_scope = any(t.name == table for t in scope)
            repaired = rename_column(
                query,
                fix.subject,
                column,
                new_table=None if in_scope and not fix.table else table,
                old_table=fix.table or None,
            )
            if not in_scope:
                repaired = self._ensure_table(repaired, table)
            return (
                repaired,
                RepairEdit(
                    diag.code, "rename_column", f"{fix.subject} -> {table}.{column}"
                ),
                contested,
            )
        if kind == "ambiguous_column":
            options = list(fix.alternatives)
            if not options:
                return None
            index = 1 if use_alternate and len(options) > 1 else 0
            table = options[index]
            return (
                qualify_column(query, fix.subject, table),
                RepairEdit(
                    diag.code, "qualify_column", f"{fix.subject} -> {table}.{fix.subject}"
                ),
                len(options) > 1,
            )
        if kind == "table_not_in_scope":
            if fix.table not in self.schema:
                return None
            repaired = self._ensure_table(query, fix.table)
            if repaired == query:
                return None
            return (
                repaired,
                RepairEdit(diag.code, "extend_from", f"join in {fix.table}"),
                False,
            )
        if kind == "join_path":
            return self._repair_join_path(query, diag)
        if kind == "aggregate_in_where":
            repaired = move_aggregate_conjuncts_to_having(query)
            if repaired == query:
                return None
            repaired = self._default_group_by(repaired)
            return (
                repaired,
                RepairEdit(diag.code, "where_to_having", "moved aggregate conjunct"),
                False,
            )
        if kind == "having_without_group_by":
            repaired = move_having_to_where(query)
            action = "having_to_where"
            if repaired == query:
                repaired = self._default_group_by(query)
                action = "add_group_by"
            if repaired == query:
                return None
            return (
                repaired,
                RepairEdit(diag.code, action, "rebalanced grouping clauses"),
                False,
            )
        if kind == "ungrouped_select_item":
            ref = ColumnRef(fix.subject, table=fix.table or None)
            repaired = add_group_by(query, (ref,))
            if repaired == query:
                return None
            return (
                repaired,
                RepairEdit(diag.code, "add_group_by", str(ref)),
                False,
            )
        if kind == "aggregate_nonnumeric":
            for agg in query.aggregates():
                if (
                    agg.func in (AggFunc.SUM, AggFunc.AVG)
                    and isinstance(agg.arg, ColumnRef)
                    and agg.arg.column == fix.subject
                ):
                    new = Aggregate(AggFunc.COUNT, agg.arg, distinct=agg.distinct)
                    return (
                        replace_aggregate_func(query, agg, new),
                        RepairEdit(diag.code, "sum_to_count", f"{agg} -> {new}"),
                        False,
                    )
            return None
        if kind == "unknown_placeholder":
            return self._repair_placeholder(query, diag, fix, use_alternate)
        if kind == "ordering_on_text":
            repaired = self._ordering_to_equality(query, fix.subject)
            if repaired == query:
                return None
            return (
                repaired,
                RepairEdit(diag.code, "ordering_to_equality", fix.subject),
                False,
            )
        return None

    @staticmethod
    def _pick(ranked: list, use_alternate: bool):
        """Best (or contested runner-up) candidate from a scored list."""
        if not ranked:
            return None, False
        contested = (
            len(ranked) > 1 and ranked[0][0] - ranked[1][0] <= _ALTERNATE_MARGIN
        )
        if use_alternate and contested:
            return ranked[1], contested
        return ranked[0], contested

    def _default_group_by(self, query: Query) -> Query:
        if query.group_by:
            return query
        plain = tuple(
            item for item in query.select if isinstance(item, ColumnRef)
        )
        if not plain:
            return query
        return add_group_by(query, plain)

    def _repair_join_path(self, query: Query, diag: Diagnostic):
        """L110: keep only tables real references need, re-close over FKs."""
        needed: list[str] = []
        for ref in query.column_refs():
            if ref.table and ref.table in self.schema and ref.table not in needed:
                needed.append(ref.table)
        for ph in query.placeholders():
            table = ph.table
            if table and table in self.schema and table not in needed:
                needed.append(table)
        for column in {r.column for r in query.column_refs() if r.table is None}:
            if any(column in self.schema.table(t) for t in needed):
                continue
            owners = self.schema.tables_with_column(column)
            if owners and owners[0].name not in needed:
                needed.append(owners[0].name)
        if not needed:
            return None
        try:
            closure = self.schema.join_tables(needed)
        except SchemaError:
            return None
        conditions: list[Predicate] = [
            Comparison(
                ColumnRef(fk.column, table=fk.table),
                CompOp.EQ,
                ColumnRef(fk.ref_column, table=fk.ref_table),
            )
            for fk in self.schema.join_path(closure)
        ]
        kept = [
            c
            for c in conjuncts(query.where)
            if not self._is_foreign_join_condition(c, set(closure))
        ]
        from dataclasses import replace as dc_replace

        repaired = dc_replace(
            query,
            from_tables=tuple(closure),
            where=conjoin(kept + conditions),
        )
        if repaired == query:
            return None
        return (
            repaired,
            RepairEdit(diag.code, "infer_join_path", " JOIN ".join(closure)),
            False,
        )

    @staticmethod
    def _is_foreign_join_condition(pred: Predicate, tables: set[str]) -> bool:
        """A col=col condition naming a table outside the new closure."""
        if not isinstance(pred, Comparison) or pred.op is not CompOp.EQ:
            return False
        if not (
            isinstance(pred.left, ColumnRef) and isinstance(pred.right, ColumnRef)
        ):
            return False
        named = {
            side.table
            for side in (pred.left, pred.right)
            if side.table is not None
        }
        return bool(named) and not named.issubset(tables)

    def _repair_placeholder(
        self, query: Query, diag: Diagnostic, fix: FixHint, use_alternate: bool
    ):
        old_name = fix.subject
        column_part = old_name.rsplit(".", 1)[-1].lower()
        scope = self._scope_tables(query) or list(self.schema.tables)
        ranked = self._column_candidates(column_part, scope)
        pick, contested = self._pick(ranked, use_alternate)
        if pick is None:
            return None
        _score, table, column = pick
        dotted = "." in old_name
        new_name = f"{table.upper()}.{column.upper()}" if dotted else column.upper()

        def fix_placeholder(ph):
            from repro.sql.ast import Placeholder

            if ph.name != old_name:
                return ph
            return Placeholder(new_name)

        repaired = map_placeholders(query, fix_placeholder)
        if repaired == query:
            return None
        return (
            repaired,
            RepairEdit(diag.code, "rename_placeholder", f"@{old_name} -> @{new_name}"),
            contested,
        )

    def _ordering_to_equality(self, query: Query, column: str) -> Query:
        ordering = {CompOp.LT, CompOp.LE, CompOp.GT, CompOp.GE}

        def fix_pred(pred):
            if (
                isinstance(pred, Comparison)
                and pred.op in ordering
                and (
                    (isinstance(pred.left, ColumnRef) and pred.left.column == column)
                    or (
                        isinstance(pred.right, ColumnRef)
                        and pred.right.column == column
                    )
                )
            ):
                from dataclasses import replace as dc_replace

                return dc_replace(pred, op=CompOp.EQ)
            return pred

        from dataclasses import replace as dc_replace

        where = query.where
        if where is not None:
            rebuilt = conjoin([fix_pred(c) for c in conjuncts(where)])
            query = dc_replace(query, where=rebuilt)
        return query


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class RepairPipeline:
    """Verify → repair → execution-re-rank under a hard budget.

    Parameters
    ----------
    schema:
        Schema the candidates are resolved against.
    adapter:
        A :class:`~repro.adapters.BackendAdapter` over the sampled
        database for the execution arm; ``None`` skips stage 3 (repaired
        candidates are served lint-clean but unverified).
    budget:
        Resource bounds; see :class:`RepairBudget`.
    value_index:
        Optional value index for constant→column attribution.
    bind:
        Optional callable ``(query, bindings) -> query`` re-binding
        constants after placeholder renames (the anonymization-map arm);
        defaults to the post-processor's restoration pass.
    faults:
        Deterministic fault plan (see :mod:`repro.core.faults`).
    """

    def __init__(
        self,
        schema: Schema,
        adapter=None,
        budget: RepairBudget | None = None,
        value_index: ValueIndex | None = None,
        bind=None,
        faults: RepairFaultPlan = NO_REPAIR_FAULTS,
        clock=time.monotonic,
    ) -> None:
        self.schema = schema
        self.adapter = adapter
        self.budget = budget or RepairBudget()
        self.repairer = QueryRepairer(schema, value_index)
        self.faults = faults
        self._clock = clock
        self._runs = 0
        self._lock = threading.Lock()
        if bind is None:
            from repro.runtime.postprocess import restore_placeholders

            bind = restore_placeholders
        self._bind = bind

    # ------------------------------------------------------------------

    def run(self, query: Query, bindings=(), location: str = "serving") -> RepairReport:
        """Repair one candidate; never raises."""
        with self._lock:
            run_index = self._runs
            self._runs += 1
        trace = RepairTrace()
        meter = _BudgetClock(self.budget, self._clock)
        try:
            report = self._run(query, list(bindings), location, run_index, trace, meter)
        except Exception as exc:  # noqa: BLE001 — the pipeline never raises
            trace.step("repair", "crash", detail=f"{type(exc).__name__}: {exc}")
            trace.outcome = ABANDONED
            trace.reason = "internal error"
            trace.error_code = E_REPAIR_UNFIXABLE
            report = RepairReport(query, to_sql(query), ABANDONED, False, trace)
        trace.budget = meter.to_dict()
        return report

    # ------------------------------------------------------------------

    def _canonical_guard_key(self, query: Query) -> str:
        """Canonical text of a (possibly still broken) candidate.

        Candidates mid-repair may reference unknown tables or columns;
        the canonicalizer degrades to schema-independent rewrites for
        those, and any other trouble falls back to the printed form —
        the guard must never raise or under-dedupe to nothing.
        """
        from repro.sql.canonical import canonical_text

        try:
            return canonical_text(query, self.schema)
        except Exception:  # noqa: BLE001 — guard key must never raise
            return to_sql(query)

    def _lint(self, query: Query, location: str, meter: _BudgetClock, trace: RepairTrace):
        t0 = self._clock()
        diagnostics = analyze_query(query, self.schema, location=location)
        dt = self._clock() - t0
        meter.charge(dt)
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        trace.step(
            "verify",
            "lint",
            detail=f"{len(errors)} error(s)",
            codes=tuple(dict.fromkeys(d.code for d in errors)),
            seconds=dt,
        )
        return errors

    def _run(
        self,
        query: Query,
        bindings: list,
        location: str,
        run_index: int,
        trace: RepairTrace,
        meter: _BudgetClock,
    ) -> RepairReport:
        errors = self._lint(query, location, meter, trace)
        if not errors:
            trace.outcome = CLEAN
            return RepairReport(query, to_sql(query), CLEAN, False, trace)

        current, current_errors = query, errors
        carried: list[RepairEdit] = []
        # Oscillation guard and candidate dedupe key on *canonical*
        # forms (PR 10): a proposal that differs from an already-tried
        # candidate only by a result-invariant rewrite would re-spend
        # lint and execution budget on a query we have already judged.
        seen = {self._canonical_guard_key(query)}
        candidates: list[tuple[Query, list[RepairEdit]]] = []
        outcome = None
        for attempt in range(self.budget.max_attempts):
            if meter.exhausted:
                outcome, trace.reason = EXHAUSTED, "deadline before repair"
                break
            meter.attempts_used += 1
            t0 = self._clock()
            if self.faults.find(REPAIR_OSCILLATE, run_index, attempt) is not None:
                proposals = [(current, [RepairEdit("L000", "noop", "injected")])]
            else:
                proposals = self.repairer.propose(current, current_errors)
            dt = self._clock() - t0
            meter.charge(dt)
            trace.step(
                "repair",
                "propose",
                detail=f"attempt {attempt}: {len(proposals)} candidate(s)",
                seconds=dt,
            )
            if not proposals:
                outcome, trace.reason = ABANDONED, "no repair strategy"
                trace.error_code = E_REPAIR_UNFIXABLE
                break
            next_state = None
            pruned = 0
            for candidate, edits in proposals:
                if bindings and candidate.placeholders():
                    candidate = self._bind(candidate, list(bindings))
                key = self._canonical_guard_key(candidate)
                if key in seen:
                    pruned += 1
                    continue
                seen.add(key)
                candidate_errors = self._lint(candidate, location, meter, trace)
                if not candidate_errors:
                    candidates.append((candidate, carried + edits))
                elif next_state is None and len(candidate_errors) <= len(
                    current_errors
                ):
                    next_state = (candidate, candidate_errors, edits)
            if pruned:
                trace.step(
                    "repair",
                    "dedupe",
                    detail=f"{pruned} canonically duplicate candidate(s) pruned",
                )
            if candidates:
                break
            if next_state is None:
                outcome, trace.reason = ABANDONED, "repair oscillation"
                trace.error_code = E_REPAIR_OSCILLATION
                break
            current, current_errors, partial_edits = next_state
            carried = carried + partial_edits
        else:
            if not candidates:
                outcome, trace.reason = EXHAUSTED, "attempt budget spent"

        if not candidates:
            if outcome is None:  # defensive; loop always sets it
                outcome, trace.reason = ABANDONED, "no candidate"
            trace.outcome = outcome
            if outcome == EXHAUSTED:
                trace.error_code = E_REPAIR_BUDGET
            return RepairReport(query, to_sql(query), outcome, False, trace)

        return self._rerank(query, candidates, run_index, trace, meter)

    # -- stage 3: execution re-rank ------------------------------------

    def _rerank(
        self,
        original: Query,
        candidates: list[tuple[Query, list[RepairEdit]]],
        run_index: int,
        trace: RepairTrace,
        meter: _BudgetClock,
    ) -> RepairReport:
        pool = candidates[: self.budget.max_candidates]
        if self.adapter is None:
            chosen, edits = pool[0]
            trace.outcome, trace.verified = REPAIRED, False
            trace.reason = "no execution backend; serving lint-clean candidate"
            trace.edits = [e.to_dict() for e in edits]
            return RepairReport(chosen, to_sql(chosen), REPAIRED, False, trace)
        verdicts: list[tuple[int, int]] = []  # (rank, candidate index)
        for index, (candidate, _edits) in enumerate(pool):
            if meter.exhausted:
                trace.step(
                    "execute",
                    "skip",
                    detail=f"deadline exhausted before candidate {index}",
                )
                break
            verdict, detail, seconds = self._execute(candidate, run_index, index, meter)
            trace.executions.append(
                {
                    "candidate": index,
                    "sql": to_sql(candidate),
                    "verdict": verdict,
                    "detail": detail,
                    "seconds": round(seconds, 6),
                }
            )
            trace.step(
                "execute", verdict, detail=detail or f"candidate {index}", seconds=seconds
            )
            verdicts.append((_VERDICT_RANK[verdict], index))
            if verdict == EXEC_OK:
                break  # can't do better; don't spend budget on runners-up
        if not verdicts:
            # Deadline hit before any execution: serve best-unverified.
            chosen, edits = pool[0]
            trace.outcome, trace.verified = REPAIRED, False
            trace.reason = "budget exhausted mid-execute; serving unverified"
            trace.edits = [e.to_dict() for e in edits]
            return RepairReport(chosen, to_sql(chosen), REPAIRED, False, trace)
        rank, index = min(verdicts)
        if rank >= _VERDICT_RANK[EXEC_ERROR]:
            # Every executed candidate raised: repair refuted; degrade to
            # the caller's original answer (pre-repair behavior).
            trace.outcome = ABANDONED
            trace.reason = "execution refuted every candidate"
            trace.error_code = E_REPAIR_EXEC
            return RepairReport(original, to_sql(original), ABANDONED, False, trace)
        chosen, edits = pool[index]
        verified = rank <= _VERDICT_RANK[EXEC_EMPTY]
        trace.outcome, trace.verified = REPAIRED, verified
        if not verified:
            trace.reason = "execution timed out; serving unverified"
        trace.edits = [e.to_dict() for e in edits]
        return RepairReport(chosen, to_sql(chosen), REPAIRED, verified, trace)

    def _execute(self, candidate: Query, run_index: int, step: int, meter: _BudgetClock):
        """One charged execution; returns (verdict, detail, seconds)."""
        virtual = 0.0
        slow = self.faults.find(SLOW_EXECUTE, run_index, step)
        if slow is not None:
            virtual = slow.slow_seconds
        t0 = self._clock()
        try:
            if self.faults.find(ADAPTER_CRASH, run_index, step) is not None:
                from repro.errors import FaultInjected

                raise FaultInjected("injected adapter crash mid-re-rank")
            rows = self.adapter.execute(candidate, max_rows=self.budget.max_rows)
        except Exception as exc:  # noqa: BLE001 — any crash is a verdict
            seconds = (self._clock() - t0) + virtual
            meter.charge(seconds)
            return EXEC_ERROR, f"{type(exc).__name__}: {exc}", seconds
        seconds = (self._clock() - t0) + virtual
        meter.charge(seconds)
        if seconds > self.budget.execute_timeout:
            return EXEC_TIMEOUT, f"{seconds:.3f}s > execute_timeout", seconds
        degenerate = not rows or all(
            all(value is None for value in row) for row in rows
        )
        if degenerate:
            return EXEC_EMPTY, f"{len(rows)} row(s)", seconds
        return EXEC_OK, f"{len(rows)} row(s)", seconds
