"""Thread-safe TTL+LRU cache over *anonymized* translations.

The cache key is the pre-processed model input — constants already
replaced by typed placeholders — so ``"patients older than 30"`` and
``"patients older than 50"`` share one entry: both anonymize to
``patient old than @AGE``.  The cached value is the raw model output
*with placeholders still in it*; each request re-runs post-processing
with its own bindings, which is what makes key-sharing sound (two hits
on one entry restore different constants).

``None`` model outputs are cached too: a model that cannot translate a
question is deterministic about it, and the negative entry lets repeat
questions skip straight to the fallback chain.

Expired entries are kept until LRU eviction claims them so the service
can serve them *stale* while the circuit breaker is open
(``get(..., allow_expired=True)``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class CacheHit:
    """A successful lookup (``value`` may be ``None`` — a negative entry)."""

    value: str | None
    stale: bool = False


class TranslationCache:
    """LRU cache with per-entry TTL; every method is thread-safe.

    Parameters
    ----------
    capacity:
        Maximum entries; the least-recently-used entry is evicted first.
    ttl:
        Seconds an entry stays fresh; ``<= 0`` disables expiry.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 2048,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[str | None, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, allow_expired: bool = False) -> CacheHit | None:
        """Look up ``key``; ``None`` means miss (or expired-and-disallowed)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, stored_at = entry
            fresh = self.ttl <= 0 or (now - stored_at) < self.ttl
            if fresh:
                self._entries.move_to_end(key)
                self.hits += 1
                return CacheHit(value)
            if allow_expired:
                self.stale_hits += 1
                return CacheHit(value, stale=True)
            self.misses += 1
            return None

    def put(self, key: str, value: str | None) -> None:
        """Insert or refresh an entry, evicting LRU entries over capacity."""
        now = self._clock()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, now)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[str]:
        """Snapshot of the resident keys (LRU order, oldest first).

        The sharded tier uses this to audit shard-exclusive placement:
        the union of every shard's ``keys()`` must contain no duplicates
        when routing is keyed on the anonymized question.
        """
        with self._lock:
            return list(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fresh-hit fraction of all lookups (0.0 when none yet)."""
        total = self.hits + self.misses + self.stale_hits
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-ready counters snapshot."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
