"""Thread-safe TTL+LRU cache over *anonymized* translations.

The cache key is the pre-processed model input — constants already
replaced by typed placeholders — so ``"patients older than 30"`` and
``"patients older than 50"`` share one entry: both anonymize to
``patient old than @AGE``.  The cached value is the raw model output
*with placeholders still in it*; each request re-runs post-processing
with its own bindings, which is what makes key-sharing sound (two hits
on one entry restore different constants).

``None`` model outputs are cached too: a model that cannot translate a
question is deterministic about it, and the negative entry lets repeat
questions skip straight to the fallback chain.

Expired entries are kept until LRU eviction claims them so the service
can serve them *stale* while the circuit breaker is open
(``get(..., allow_expired=True)``).

Canonical coalescing tier
-------------------------
With a ``canonical_key_fn`` (PR 10), every ``put`` additionally indexes
the *model output* by its canonical SQL key
(:func:`repro.sql.canonical.canonical_key_for_sql` over the service's
schema).  Paraphrases that anonymize differently but compile to one
canonical query then **coalesce at put-time**: the later entry reuses
the earlier entry's stored output object (``cache.canonical_hits``),
making the redundancy measurable and the storage shared — while the
*lookup* key stays the anonymized question, which is what the sharded
tier routes on (duplicate-free shard placement, PR 8) and what keeps a
hit possible *before* the model has run.  Coalescing never changes a
served payload: an output that is canonically equal but textually
different from the indexed one is kept verbatim and counted as
``cache.canonical_variants`` instead.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class CacheHit:
    """A successful lookup (``value`` may be ``None`` — a negative entry)."""

    value: str | None
    stale: bool = False


class TranslationCache:
    """LRU cache with per-entry TTL; every method is thread-safe.

    Parameters
    ----------
    capacity:
        Maximum entries; the least-recently-used entry is evicted first.
    ttl:
        Seconds an entry stays fresh; ``<= 0`` disables expiry.
    clock:
        Monotonic time source (injectable for tests).
    canonical_key_fn:
        Optional ``model output -> canonical key`` function enabling
        the canonical coalescing tier; ``None`` keys (unparseable
        output, negative entries) are counted and skipped.
    """

    def __init__(
        self,
        capacity: int = 2048,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        canonical_key_fn: Callable[[str | None], str | None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._canonical_key_fn = canonical_key_fn
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[str | None, float]] = OrderedDict()
        #: canonical key -> first-seen model output for that query.
        self._canonical: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0
        self.canonical_probes = 0
        self.canonical_hits = 0
        self.canonical_variants = 0
        self.canonical_new = 0
        self.canonical_skipped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, allow_expired: bool = False) -> CacheHit | None:
        """Look up ``key``; ``None`` means miss (or expired-and-disallowed)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, stored_at = entry
            fresh = self.ttl <= 0 or (now - stored_at) < self.ttl
            if fresh:
                self._entries.move_to_end(key)
                self.hits += 1
                return CacheHit(value)
            if allow_expired:
                self.stale_hits += 1
                return CacheHit(value, stale=True)
            self.misses += 1
            return None

    def put(self, key: str, value: str | None) -> None:
        """Insert or refresh an entry, evicting LRU entries over capacity."""
        now = self._clock()
        with self._lock:
            value = self._coalesce(value)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, now)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _coalesce(self, value: str | None) -> str | None:
        """Route ``value`` through the canonical index (lock held).

        Returns the stored representative when the canonical tier has
        already seen a textually identical output for the same
        canonical query, so equal payloads share one string object;
        the returned text always compares equal to ``value``.
        """
        if self._canonical_key_fn is None:
            return value
        self.canonical_probes += 1
        canonical = self._canonical_key_fn(value) if value is not None else None
        if canonical is None:
            self.canonical_skipped += 1
            return value
        existing = self._canonical.get(canonical)
        if existing is None:
            self.canonical_new += 1
            self._canonical[canonical] = value
            while len(self._canonical) > self.capacity:
                self._canonical.popitem(last=False)
            return value
        self._canonical.move_to_end(canonical)
        if existing == value:
            self.canonical_hits += 1
            return existing
        # Canonically equal but textually different: payload fidelity
        # wins — serve the new text verbatim, count the variant.
        self.canonical_variants += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._canonical.clear()

    def keys(self) -> list[str]:
        """Snapshot of the resident keys (LRU order, oldest first).

        The sharded tier uses this to audit shard-exclusive placement:
        the union of every shard's ``keys()`` must contain no duplicates
        when routing is keyed on the anonymized question.
        """
        with self._lock:
            return list(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fresh-hit fraction of all lookups (0.0 when none yet)."""
        total = self.hits + self.misses + self.stale_hits
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-ready counters snapshot."""
        with self._lock:
            size = len(self._entries)
            canonical_index_size = len(self._canonical)
        snap = {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self._canonical_key_fn is not None:
            snap.update(
                {
                    "canonical_probes": self.canonical_probes,
                    "canonical_hits": self.canonical_hits,
                    "canonical_variants": self.canonical_variants,
                    "canonical_new": self.canonical_new,
                    "canonical_skipped": self.canonical_skipped,
                    "canonical_index_size": canonical_index_size,
                }
            )
        return snap
