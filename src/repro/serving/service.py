"""The concurrent query service over a :class:`~repro.runtime.interface.DBPal`.

Request lifecycle (one thread per in-flight request, workers batching
the model calls)::

    admission (token bucket)
      └─ preprocess (anonymize + lemmatize)  ── per-request bindings
           └─ translation cache (keyed on the anonymized model input)
                ├─ hit  ──────────────────────────────┐
                └─ miss → single-flight coalescing     │
                     └─ micro-batcher → circuit breaker → translate_batch
                          └─ on failure: stale cache → keyword fallback
                               └─ structured ServiceFailure (never a raw
                                  exception)           │
                                                       ▼
                                postprocess (restore THIS request's constants)

Two properties matter and are tested:

* **cache soundness** — the cache stores model output with placeholders
  still in it, so requests sharing an anonymized key each restore their
  own constants;
* **single-flight** — N concurrent identical questions cost exactly one
  model call: the first creates a *flight*, the rest await its future.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.faults import NO_REPAIR_FAULTS, RepairFaultPlan
from repro.errors import ServingError, TranslationError
from repro.neural.base import TranslationModel
from repro.perf.instrumentation import PerfRecorder
from repro.runtime.interface import DBPal, TranslationResult
from repro.runtime.preprocess import PreprocessedQuery
from repro.serving.batcher import BatchRequest, MicroBatcher
from repro.serving.cache import TranslationCache
from repro.serving.config import ServingConfig
from repro.serving.fallback import KeywordFallback
from repro.serving.limits import CircuitBreaker, TokenBucket
from repro.serving.metrics import MetricsRegistry
from repro.serving.repair import (
    ABANDONED as REPAIR_ABANDONED,
    CLEAN as REPAIR_CLEAN,
    EXHAUSTED as REPAIR_EXHAUSTED,
    REPAIRED as REPAIR_REPAIRED,
    RepairBudget,
    RepairPipeline,
)

#: Response statuses.
OK = "ok"
DEGRADED = "degraded"
REJECTED = "rejected"
TIMEOUT = "timeout"
ERROR = "error"

#: Response sources (which stage of the chain produced the SQL).
SOURCE_CACHE = "cache"
SOURCE_MODEL = "model"
SOURCE_FALLBACK = "fallback"
SOURCE_NONE = "none"


@dataclass(frozen=True)
class ServiceFailure:
    """Structured failure descriptor attached to non-ok responses.

    ``code`` is the short wire code (stable API surface);
    :attr:`error_code` maps it into the package-wide ``E_*`` taxonomy
    of :data:`repro.errors.ERROR_CODES`, so serving failures and
    synthesis quarantine reports can be aggregated on one axis.
    """

    code: str  # rate_limited | queue_full | timeout | model_unavailable | untranslatable
    message: str
    retryable: bool = True

    @property
    def error_code(self) -> str:
        """Canonical taxonomy code (``E_RATE_LIMITED``, ...)."""
        from repro.errors import canonical_code

        return canonical_code(self.code)


@dataclass
class ServingResponse:
    """Everything the service says about one request.

    ``result`` is a full :class:`TranslationResult` whenever any stage
    of the chain produced SQL; ``failure`` is set for every non-``ok``
    status so callers can branch on ``code`` without string-matching
    messages.
    """

    request_id: int
    nl: str
    status: str
    source: str
    result: TranslationResult | None = None
    failure: ServiceFailure | None = None
    latency: float = 0.0
    #: Structured trace of the execute–verify–repair loop (a plain dict,
    #: see :class:`repro.serving.repair.RepairTrace`); ``None`` whenever
    #: the loop did not touch this response — disabled, no SQL to
    #: verify, or a failure short-circuited before post-processing.
    repair: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def sql(self) -> str | None:
        return self.result.sql if self.result is not None else None

    def payload(self) -> dict:
        """Deterministic projection for differential testing.

        Excludes everything timing- or deployment-dependent —
        ``request_id`` (per-process counters), ``latency``, and
        ``source`` (a request racing a landing flight may be answered
        from the cache or the flight depending on scheduling) — leaving
        exactly the fields that must be bit-identical between a
        single-process service and any sharded deployment serving the
        same workload with the same model.
        """
        return {
            "nl": self.nl,
            "status": self.status,
            "sql": self.sql,
            "failure_code": None if self.failure is None else self.failure.code,
        }

    def to_dict(self) -> dict:
        """JSON-ready view (for the CLI's machine-readable output)."""
        record = {
            "request_id": self.request_id,
            "nl": self.nl,
            "status": self.status,
            "source": self.source,
            "sql": self.sql,
            "failure": None
            if self.failure is None
            else {
                "code": self.failure.code,
                "error_code": self.failure.error_code,
                "message": self.failure.message,
                "retryable": self.failure.retryable,
            },
            "latency": round(self.latency, 6),
        }
        # Only present when the repair loop ran: a zero-attempt budget
        # must keep this view byte-identical to a pre-repair service.
        if self.repair is not None:
            record["repair"] = self.repair
        return record


#: Flight outcome statuses (model side of a single-flight future).
_MODEL_OK = "model_ok"
_MODEL_DOWN = "model_down"


@dataclass
class _Flight:
    """One in-flight model translation shared by coalesced requests."""

    future: Future = field(default_factory=Future)
    coalesced: int = 0  # extra requests riding this flight


class TranslationService:
    """Concurrent, cached, degradable serving over a ``DBPal`` facade.

    Parameters
    ----------
    nlidb:
        The single-shot facade to serve (database + fitted model).
    config:
        Serving knobs; defaults are sensible for tests and demos.
    recorder:
        Optional shared :class:`PerfRecorder`; one is created otherwise.

    Use as a context manager, or call :meth:`start`/:meth:`stop`::

        with TranslationService(nlidb) as service:
            response = service.translate("patients older than 30")
    """

    def __init__(
        self,
        nlidb: DBPal,
        config: ServingConfig | None = None,
        recorder: PerfRecorder | None = None,
        clock=time.monotonic,
        repair_faults: RepairFaultPlan = NO_REPAIR_FAULTS,
    ) -> None:
        if nlidb.model is None:
            raise ServingError("cannot serve an untrained DBPal (model is None)")
        self.nlidb = nlidb
        self.config = config or ServingConfig()
        self.recorder = recorder or PerfRecorder()
        self.metrics = MetricsRegistry(clock=clock)
        self._clock = clock
        cfg = self.config
        self.cache = (
            TranslationCache(
                cfg.cache_capacity,
                cfg.cache_ttl,
                clock=clock,
                canonical_key_fn=(
                    self._canonical_key_fn if cfg.canonical_cache else None
                ),
            )
            if cfg.cache_capacity > 0
            else None
        )
        self.breaker = CircuitBreaker(cfg.failure_threshold, cfg.cooldown, clock=clock)
        self._bucket = TokenBucket(cfg.rate_limit, cfg.burst, clock=clock)
        self._fallback = KeywordFallback(nlidb.database.schema)
        self._last_repair_trace: dict | None = None
        if cfg.repair_attempts > 0:
            from repro.adapters import MemoryAdapter

            self._repair: RepairPipeline | None = RepairPipeline(
                nlidb.database.schema,
                adapter=nlidb.backend or MemoryAdapter(nlidb.executor),
                budget=RepairBudget(
                    max_attempts=cfg.repair_attempts,
                    deadline=cfg.repair_deadline,
                    execute_timeout=cfg.repair_execute_timeout,
                    max_rows=cfg.repair_max_rows,
                ),
                value_index=nlidb.preprocessor.value_index,
                faults=repair_faults,
                clock=clock,
            )
        else:
            self._repair = None
        # Preprocessing is deterministic over a fixed database, so the
        # raw question string is a sound memo key; lru_cache is
        # thread-safe and cheap enough for the admission path.
        self._preprocess = (
            lru_cache(maxsize=cfg.preprocess_cache_capacity)(
                nlidb.preprocessor.preprocess
            )
            if cfg.preprocess_cache_capacity > 0
            else nlidb.preprocessor.preprocess
        )
        self._batcher = MicroBatcher(
            self._process_batch,
            workers=cfg.workers,
            max_batch_size=cfg.max_batch_size,
            batch_window=cfg.batch_window,
            queue_capacity=cfg.queue_capacity,
        )
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._recorder_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._executor: ThreadPoolExecutor | None = None
        self._lifecycle_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._batcher.running

    def start(self) -> "TranslationService":
        self._batcher.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self._batcher.stop(timeout=timeout)

    def __enter__(self) -> "TranslationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def translate(self, nl: str, timeout: float | None = None) -> ServingResponse:
        """Serve one question synchronously (never raises on model trouble).

        ``timeout`` overrides ``config.request_timeout`` for this call.
        """
        if not self.running:
            self.start()
        request_id = next(self._ids)
        started = self._clock()

        def finish(response: ServingResponse) -> ServingResponse:
            response.latency = self._clock() - started
            self.metrics.record_request(
                response.status, response.source, response.latency
            )
            return response

        if not self._bucket.try_acquire():
            return finish(
                ServingResponse(
                    request_id,
                    nl,
                    status=REJECTED,
                    source=SOURCE_NONE,
                    failure=ServiceFailure("rate_limited", "admission rate exceeded"),
                )
            )

        try:
            t0 = self._clock()
            pre = self._preprocess(nl)
            self._record("preprocess", self._clock() - t0)
        except Exception as exc:  # noqa: BLE001 — malformed input, not a crash
            return finish(
                ServingResponse(
                    request_id,
                    nl,
                    status=ERROR,
                    source=SOURCE_NONE,
                    failure=ServiceFailure(
                        "untranslatable", f"preprocessing failed: {exc}", retryable=False
                    ),
                )
            )
        key = pre.model_input

        # -- translation cache (fresh entries only) ---------------------
        if self.cache is not None:
            hit = self.cache.get(key)
            self.metrics.increment("cache.hits" if hit else "cache.misses")
            if hit is not None:
                return finish(self._respond(request_id, nl, pre, hit.value, SOURCE_CACHE))

        # -- single-flight + micro-batched model call -------------------
        outcome = self._await_model(key, timeout)
        if outcome is None:
            return finish(
                ServingResponse(
                    request_id,
                    nl,
                    status=TIMEOUT,
                    source=SOURCE_NONE,
                    failure=ServiceFailure(
                        "timeout",
                        f"no translation within {timeout or self.config.request_timeout}s",
                    ),
                )
            )
        status, output = outcome
        if status == "queue_full":
            return finish(
                ServingResponse(
                    request_id,
                    nl,
                    status=REJECTED,
                    source=SOURCE_NONE,
                    failure=ServiceFailure("queue_full", "admission queue is full"),
                )
            )
        if status == _MODEL_DOWN:
            return finish(self._degrade(request_id, nl, pre))
        return finish(self._respond(request_id, nl, pre, output, SOURCE_MODEL))

    def submit(self, nl: str, timeout: float | None = None) -> Future:
        """Asynchronous :meth:`translate`; resolves to a ServingResponse."""
        if not self.running:
            self.start()
        with self._lifecycle_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(4, self.config.workers * 4),
                    thread_name_prefix="repro-serving-frontend",
                )
            executor = self._executor
        return executor.submit(self.translate, nl, timeout)

    def reload_model(self, model: TranslationModel) -> None:
        """Swap the serving model without dropping in-flight requests.

        The swap is one atomic reference assignment: batches already
        dispatched finish on the old weights, every later batch reads
        the new reference (``_process_batch`` re-reads
        ``self.nlidb.model`` per batch).  Cache entries produced by the
        old model stay valid until TTL expiry — the cache stores model
        *outputs*, not model state.  The sharded tier's rolling reload
        (see :mod:`repro.serving.front_door`) calls this shard-by-shard.
        """
        if model is None:
            raise ServingError("cannot reload to a None model")
        self.nlidb.model = model
        self.metrics.increment("model.reloads")

    def query(self, nl: str, max_rows: int | None = None):
        """Translate via the service, then execute (raises on failure)."""
        response = self.translate(nl)
        if response.result is None or not response.result.ok:
            detail = response.failure.message if response.failure else "no SQL produced"
            raise TranslationError(f"could not serve {nl!r}: {detail}")
        from repro.db.executor import execute

        return execute(response.result.query, self.nlidb.database, max_rows=max_rows)

    #: What the two per-stage time columns mean (surfaced verbatim in
    #: ``--stats`` / ``--stats-json`` so a 600%-looking utilization is
    #: never misread as a measurement bug).
    STAGES_LEGEND = {
        "busy_seconds": (
            "time spent inside the stage summed across all worker "
            "threads; under concurrency this exceeds wall-clock"
        ),
        "wall_seconds": (
            "wall-clock span from the stage's first entry to its last "
            "exit; bounded by the service's uptime"
        ),
    }

    def _canonical_key_fn(self, output: str | None) -> str | None:
        """Canonical SQL key of a raw model output (``None`` = skip).

        Bound method rather than a closure so the sharded tier can
        pickle service factories; model output may be arbitrarily
        malformed, which ``canonical_key_for_sql`` absorbs as ``None``.
        """
        if output is None:
            return None
        from repro.sql.canonical import canonical_key_for_sql

        return canonical_key_for_sql(output, self.nlidb.database.schema)

    def stats(self) -> dict:
        """Combined metrics / cache / breaker / per-stage perf snapshot."""
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats() if self.cache is not None else None
        snap["breaker"] = self.breaker.stats()
        snap["repair"] = (
            None
            if self._repair is None
            else {
                "enabled": True,
                "budget": self._repair.budget.to_dict(),
                "last_trace": self._last_repair_trace,
            }
        )
        with self._recorder_lock:
            snap["stages"] = self.recorder.report()
        snap["stages_legend"] = dict(self.STAGES_LEGEND)
        snap["accounting"] = self._accounting(snap)
        snap["config"] = self.config.to_dict()
        return snap

    def _accounting(self, snap: dict) -> dict:
        """Cross-counter consistency identities (the reconciliation).

        Every model call, coalesced waiter, late cache hit, and shed
        request is tied back to the cache-miss count that produced it,
        and every input that entered the batcher is tied to a terminal
        counter — so ``model.calls`` can never silently disagree with
        the batch histogram again.  The identities hold exactly when
        the service is quiescent (no request mid-flight); a snapshot
        taken under load may show transient slack, which is reported,
        not hidden.
        """
        c = snap["counters"]

        def identity(name: str, lhs: int, rhs: int) -> dict:
            return {"identity": name, "lhs": lhs, "rhs": rhs, "ok": lhs == rhs}

        histogram = snap["batch_size_histogram"]
        identities = [
            identity(
                "flights.opened == model.batched_inputs + shed.queue_full",
                c.get("flights.opened", 0),
                c.get("model.batched_inputs", 0) + c.get("shed.queue_full", 0),
            ),
            identity(
                "model.batched_inputs == model.calls + model.failed_inputs"
                " + breaker.short_circuited",
                c.get("model.batched_inputs", 0),
                c.get("model.calls", 0)
                + c.get("model.failed_inputs", 0)
                + c.get("breaker.short_circuited", 0),
            ),
            identity(
                "sum(batch_size_histogram sizes) == model.batched_inputs",
                sum(int(size) * count for size, count in histogram.items()),
                c.get("model.batched_inputs", 0),
            ),
            identity(
                "sum(batch_size_histogram counts) == batches_total",
                sum(histogram.values()),
                c.get("batches_total", 0),
            ),
        ]
        if self.cache is not None:
            cache = snap["cache"]
            identities.extend(
                [
                    identity(
                        "cache.misses == flights.opened"
                        " + singleflight.coalesced + cache.late_hits",
                        c.get("cache.misses", 0),
                        c.get("flights.opened", 0)
                        + c.get("singleflight.coalesced", 0)
                        + c.get("cache.late_hits", 0),
                    ),
                    identity(
                        "cache_object.hits == cache.hits + cache.late_hits"
                        " + cache.degrade_hits",
                        cache["hits"],
                        c.get("cache.hits", 0)
                        + c.get("cache.late_hits", 0)
                        + c.get("cache.degrade_hits", 0),
                    ),
                    identity(
                        "cache_object.misses == cache.misses"
                        " + cache.recheck_misses + cache.stale_misses",
                        cache["misses"],
                        c.get("cache.misses", 0)
                        + c.get("cache.recheck_misses", 0)
                        + c.get("cache.stale_misses", 0),
                    ),
                    identity(
                        "cache_object.stale_hits == cache.stale_hits",
                        cache["stale_hits"],
                        c.get("cache.stale_hits", 0),
                    ),
                ]
            )
            if "canonical_probes" in cache:
                identities.append(
                    identity(
                        "cache.canonical_probes == canonical_hits"
                        " + canonical_variants + canonical_new"
                        " + canonical_skipped",
                        cache["canonical_probes"],
                        cache["canonical_hits"]
                        + cache["canonical_variants"]
                        + cache["canonical_new"]
                        + cache["canonical_skipped"],
                    )
                )
        if self._repair is not None:
            identities.extend(
                [
                    identity(
                        "repair.requests == repair.clean + repair.attempted",
                        c.get("repair.requests", 0),
                        c.get("repair.clean", 0) + c.get("repair.attempted", 0),
                    ),
                    identity(
                        "repair.attempted == repair.repaired + repair.abandoned"
                        " + repair.budget_exhausted",
                        c.get("repair.attempted", 0),
                        c.get("repair.repaired", 0)
                        + c.get("repair.abandoned", 0)
                        + c.get("repair.budget_exhausted", 0),
                    ),
                ]
            )
        return {
            "identities": identities,
            "consistent": all(item["ok"] for item in identities),
        }

    # ------------------------------------------------------------------
    # Model path (single-flight + batcher)
    # ------------------------------------------------------------------

    def _await_model(
        self, key: str, timeout: float | None
    ) -> tuple[str, str | None] | None:
        """Join or create the flight for ``key``; wait for its outcome.

        Returns ``(status, model_output)``, a ``("queue_full", None)``
        marker, or ``None`` on timeout.
        """
        with self._flights_lock:
            flight = self._flights.get(key)
            owner = flight is None
            if owner:
                # Re-check the cache before opening a new flight: a prior
                # flight for this key may have landed between our cache
                # miss and here, and re-translating it would break the
                # one-model-call-per-key guarantee.
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        self.metrics.increment("cache.late_hits")
                        return (_MODEL_OK, hit.value)
                    self.metrics.increment("cache.recheck_misses")
                flight = self._flights[key] = _Flight()
                self.metrics.increment("flights.opened")
            else:
                flight.coalesced += 1
                self.metrics.increment("singleflight.coalesced")
        if owner:
            accepted = self._batcher.submit(
                BatchRequest(key=key, model_input=key, future=flight.future)
            )
            if not accepted:
                with self._flights_lock:
                    self._flights.pop(key, None)
                self.metrics.increment("shed.queue_full")
                # Coalesced waiters (if any raced in) must not hang.
                if not flight.future.done():
                    flight.future.set_result((_MODEL_DOWN, None))
                return ("queue_full", None)
        try:
            return flight.future.result(
                timeout=self.config.request_timeout if timeout is None else timeout
            )
        except TimeoutError:
            self.metrics.increment("timeouts")
            return None
        except Exception:  # noqa: BLE001 — batcher crashed; treat as outage
            return (_MODEL_DOWN, None)

    def _process_batch(self, batch: list[BatchRequest]) -> None:
        """Worker-side: one guarded ``translate_batch`` for the batch."""
        self.metrics.record_batch(len(batch))
        if not self.breaker.allow():
            self.metrics.increment("breaker.short_circuited", len(batch))
            self._resolve(batch, _MODEL_DOWN, [None] * len(batch))
            return
        model: TranslationModel = self.nlidb.model
        inputs = [request.model_input for request in batch]
        t0 = self._clock()
        try:
            outputs = model.translate_batch(inputs)
            if len(outputs) != len(inputs):
                raise ServingError(
                    f"translate_batch contract violation: {len(inputs)} in, "
                    f"{len(outputs)} out"
                )
        except Exception:  # noqa: BLE001 — any model crash trips the breaker
            self.breaker.record_failure()
            self.metrics.increment("model.failures")
            self.metrics.increment("model.failed_inputs", len(batch))
            self._resolve(batch, _MODEL_DOWN, [None] * len(batch))
            return
        self._record("model_batch", self._clock() - t0, items=len(batch))
        self.breaker.record_success()
        self.metrics.increment("model.calls", len(batch))
        self._resolve(batch, _MODEL_OK, outputs)

    def _resolve(
        self, batch: list[BatchRequest], status: str, outputs: list[str | None]
    ) -> None:
        """Populate the cache, retire the flights, wake the waiters."""
        for request, output in zip(batch, outputs):
            if status == _MODEL_OK and self.cache is not None:
                self.cache.put(request.key, output)
            with self._flights_lock:
                self._flights.pop(request.key, None)
            if not request.future.done():
                request.future.set_result((status, output))

    # ------------------------------------------------------------------
    # Response assembly + graceful degradation
    # ------------------------------------------------------------------

    def _respond(
        self,
        request_id: int,
        nl: str,
        pre: PreprocessedQuery,
        model_output: str | None,
        source: str,
    ) -> ServingResponse:
        """Post-process one model/cache output into a response.

        A ``None`` or unparseable output falls through to the fallback
        chain — the service never surfaces "the model shrugged" as an
        unstructured failure.
        """
        if model_output is None:
            return self._degrade(request_id, nl, pre, model_down=False)
        result = self._postprocess(nl, pre, model_output)
        if result.query is None:
            return self._degrade(request_id, nl, pre, model_down=False)
        trace = self._maybe_repair(result)
        return ServingResponse(
            request_id, nl, status=OK, source=source, result=result, repair=trace
        )

    def _degrade(
        self,
        request_id: int,
        nl: str,
        pre: PreprocessedQuery,
        model_down: bool = True,
    ) -> ServingResponse:
        """Fallback chain: stale cache → schema keywords → structured error."""
        self.metrics.increment("degraded")
        t0 = self._clock()
        try:
            if (
                model_down
                and self.cache is not None
                and self.config.serve_stale_on_degrade
            ):
                stale = self.cache.get(pre.model_input, allow_expired=True)
                if stale is None:
                    self.metrics.increment("cache.stale_misses")
                elif stale.stale:
                    self.metrics.increment("cache.stale_hits")
                else:
                    self.metrics.increment("cache.degrade_hits")
                if stale is not None and stale.value is not None:
                    result = self._postprocess(nl, pre, stale.value)
                    if result.query is not None:
                        trace = self._maybe_repair(result)
                        return ServingResponse(
                            request_id,
                            nl,
                            status=DEGRADED,
                            source=SOURCE_CACHE,
                            result=result,
                            repair=trace,
                        )
            fallback_sql = self._fallback.translate(pre.model_input)
            if fallback_sql is not None:
                result = self._postprocess(nl, pre, fallback_sql)
                if result.query is not None:
                    trace = self._maybe_repair(result)
                    return ServingResponse(
                        request_id,
                        nl,
                        status=DEGRADED,
                        source=SOURCE_FALLBACK,
                        result=result,
                        repair=trace,
                    )
        finally:
            self._record("fallback", self._clock() - t0)
        code = "model_unavailable" if model_down else "untranslatable"
        message = (
            "model unavailable and no fallback matched"
            if model_down
            else "model produced no translation and no fallback matched"
        )
        return ServingResponse(
            request_id,
            nl,
            status=ERROR,
            source=SOURCE_NONE,
            failure=ServiceFailure(code, message, retryable=model_down),
        )

    def _maybe_repair(self, result: TranslationResult) -> dict | None:
        """Run the execute–verify–repair loop over one translated result.

        Mutates ``result`` in place when a repaired candidate is
        accepted; returns the structured trace dict for the response (or
        ``None`` when the loop is disabled).  Never raises — the
        pipeline converts every internal failure into an ``abandoned``
        trace, and abandonment serves the original answer unchanged.
        """
        if self._repair is None or result.query is None:
            return None
        t0 = self._clock()
        report = self._repair.run(
            result.query, bindings=result.bindings, location="serving"
        )
        self._record("repair", self._clock() - t0)
        self.metrics.increment("repair.requests")
        if report.outcome == REPAIR_CLEAN:
            self.metrics.increment("repair.clean")
        else:
            self.metrics.increment("repair.attempted")
            self.metrics.increment(
                {
                    REPAIR_REPAIRED: "repair.repaired",
                    REPAIR_ABANDONED: "repair.abandoned",
                    REPAIR_EXHAUSTED: "repair.budget_exhausted",
                }[report.outcome]
            )
            if report.verified:
                self.metrics.increment("repair.verified")
        if report.accepted:
            result.query = report.query
            result.sql = report.sql
            result.repaired = True
        trace = report.trace.to_dict()
        self._last_repair_trace = trace
        return trace

    def _postprocess(
        self, nl: str, pre: PreprocessedQuery, model_output: str
    ) -> TranslationResult:
        """Restore *this* request's constants into a (possibly shared) output."""
        t0 = self._clock()
        processed = self.nlidb.postprocessor.process(model_output, pre.bindings)
        self._record("postprocess", self._clock() - t0)
        return TranslationResult(
            nl=nl,
            model_input=pre.model_input,
            model_output=model_output,
            sql=processed.sql if processed else None,
            query=processed.query if processed else None,
            # The PreprocessedQuery may be memo-shared between requests:
            # hand each result its own list.
            bindings=list(pre.bindings),
            repaired=processed.repaired if processed else False,
        )

    def _record(self, stage: str, seconds: float, items: int = 1) -> None:
        with self._recorder_lock:
            self.recorder.add(stage, seconds, items=items)
