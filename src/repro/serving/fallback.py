"""Schema-keyword fallback translator (last resort before a hard error).

When the model is unavailable (circuit open, crashed, or returned
nothing parseable) the service degrades to this deterministic
translator: match the question's lemmatized tokens against the schema's
NL annotations, pick the best-covered table, and emit a simple
projection over the matched columns (``SELECT col, ... FROM table`` or
``SELECT * FROM table``).  Every candidate is verified through the
semantic analyzer before it is returned: the fallback either emits a
lint-clean, runnable query or ``None`` — never a plausible-looking
string that fails downstream.  A coarse answer beats a stack trace
under partial outage, but a *broken* answer beats neither.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.sql_semantics import analyze_query
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.tokenizer import tokenize
from repro.schema.schema import Schema
from repro.sql import parse


def _phrase_token_set(phrases) -> frozenset[str]:
    """All lemmatized tokens appearing in any of the NL phrases."""
    tokens: set[str] = set()
    for phrase in phrases:
        tokens.update(tokenize(lemmatize(phrase)))
    return frozenset(tokens)


class KeywordFallback:
    """Best-effort NL -> SQL via schema annotation keyword overlap."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._tables = [
            (table.name, _phrase_token_set(table.nl_phrases)) for table in schema.tables
        ]
        self._columns = [
            (table.name, column.name, _phrase_token_set(column.nl_phrases))
            for table in schema.tables
            for column in table.columns
        ]

    def translate(self, model_input: str) -> str | None:
        """Translate preprocessed NL; ``None`` when nothing matches."""
        question = set(tokenize(lemmatize(model_input)))
        question.discard("@")
        if not question:
            return None
        best_table: str | None = None
        best_score = 0
        for name, tokens in self._tables:
            score = len(question & tokens)
            if score > best_score:
                best_table, best_score = name, score
        column_hits = [
            (table, column, len(question & tokens))
            for table, column, tokens in self._columns
            if question & tokens
        ]
        if best_table is None and column_hits:
            # No table named directly; take the table of the best column.
            best_table = max(column_hits, key=lambda hit: hit[2])[0]
        if best_table is None:
            return None
        columns = [
            column for table, column, _score in column_hits if table == best_table
        ]
        projection = ", ".join(dict.fromkeys(columns)) if columns else "*"
        candidate = f"SELECT {projection} FROM {best_table}"
        return candidate if self._verify(candidate) else None

    def _verify(self, sql: str) -> bool:
        """Whether the candidate parses and passes the ``L1xx`` lint pass."""
        try:
            query = parse(sql)
        except Exception:  # noqa: BLE001 — unverifiable is unservable
            return False
        diagnostics = analyze_query(query, self.schema, location="fallback")
        return not any(d.severity is Severity.ERROR for d in diagnostics)
