"""Exception hierarchy and error-code taxonomy for the DBPal reproduction.

Every error raised by this package derives from :class:`ReproError` so
that callers can catch the whole family with a single ``except`` clause
while still being able to discriminate by subsystem.

Machine-readable failures additionally carry a **stable error code**
from the :data:`ERROR_CODES` taxonomy (``E_SHARD_TIMEOUT``,
``E_CORPUS_CORRUPT``, ...).  Codes — not exception class names or
message strings — are the contract for anything that persists or
transmits failures: synthesis quarantine reports, corpus manifests, and
the serving layer's ``ServingResponse.failure`` all draw from this one
table, so a dashboard (or a test) can match on ``code`` regardless of
which subsystem produced the failure.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Stable error codes (the cross-subsystem failure taxonomy)
# ----------------------------------------------------------------------

#: Synthesis fault tolerance ------------------------------------------
E_SHARD_TIMEOUT = "E_SHARD_TIMEOUT"
E_SHARD_CRASH = "E_SHARD_CRASH"
E_WORKER_DIED = "E_WORKER_DIED"
E_CORPUS_CORRUPT = "E_CORPUS_CORRUPT"
E_MANIFEST_MISMATCH = "E_MANIFEST_MISMATCH"
E_INTERRUPTED = "E_INTERRUPTED"
E_FAULT_INJECTED = "E_FAULT_INJECTED"

#: Static analysis ----------------------------------------------------
E_LINT = "E_LINT"

#: Serving ------------------------------------------------------------
E_RATE_LIMITED = "E_RATE_LIMITED"
E_QUEUE_FULL = "E_QUEUE_FULL"
E_TIMEOUT = "E_TIMEOUT"
E_MODEL_UNAVAILABLE = "E_MODEL_UNAVAILABLE"
E_UNTRANSLATABLE = "E_UNTRANSLATABLE"

#: Backend adapters ---------------------------------------------------
E_BACKEND = "E_BACKEND"
E_DIALECT = "E_DIALECT"

#: Serving-tier repair loop (see :mod:`repro.serving.repair`) ----------
E_REPAIR_BUDGET = "E_REPAIR_BUDGET"
E_REPAIR_UNFIXABLE = "E_REPAIR_UNFIXABLE"
E_REPAIR_OSCILLATION = "E_REPAIR_OSCILLATION"
E_REPAIR_EXEC = "E_REPAIR_EXEC"

#: code -> human description.  The single registry; every code used in
#: a quarantine report, manifest, or ServingResponse appears here.
ERROR_CODES: dict[str, str] = {
    E_SHARD_TIMEOUT: "synthesis shard exceeded its wall-clock budget",
    E_SHARD_CRASH: "synthesis shard raised an exception",
    E_WORKER_DIED: "synthesis worker process died mid-shard",
    E_CORPUS_CORRUPT: "corpus file disagrees with its manifest",
    E_MANIFEST_MISMATCH: "manifest was written by an incompatible run",
    E_INTERRUPTED: "run interrupted; resumable from checkpoint",
    E_FAULT_INJECTED: "failure injected by the fault harness",
    E_LINT: "static analysis reported lint errors (see repro.analysis)",
    E_RATE_LIMITED: "admission rate exceeded",
    E_QUEUE_FULL: "admission queue is full",
    E_TIMEOUT: "no answer within the request deadline",
    E_MODEL_UNAVAILABLE: "translation model unavailable or degraded",
    E_UNTRANSLATABLE: "input cannot be translated",
    E_BACKEND: "backend adapter failed to connect, execute, or introspect",
    E_DIALECT: "construct is not expressible in the target SQL dialect",
    E_REPAIR_BUDGET: "repair budget exhausted before a verified candidate",
    E_REPAIR_UNFIXABLE: "no repair strategy applies to the diagnostics",
    E_REPAIR_OSCILLATION: "repair loop revisited a candidate it already tried",
    E_REPAIR_EXEC: "repaired candidate failed execution verification",
}

#: Serving wire codes (``ServiceFailure.code``, kept short for the API
#: surface) -> canonical taxonomy code.
_SERVING_WIRE_CODES = {
    "rate_limited": E_RATE_LIMITED,
    "queue_full": E_QUEUE_FULL,
    "timeout": E_TIMEOUT,
    "model_unavailable": E_MODEL_UNAVAILABLE,
    "untranslatable": E_UNTRANSLATABLE,
    "backend_error": E_BACKEND,
    "worker_died": E_WORKER_DIED,
    "unsupported_dialect": E_DIALECT,
    "repair_budget": E_REPAIR_BUDGET,
    "repair_unfixable": E_REPAIR_UNFIXABLE,
    "repair_oscillation": E_REPAIR_OSCILLATION,
    "repair_exec": E_REPAIR_EXEC,
}


def canonical_code(code: str) -> str:
    """Map any failure code (wire or canonical) to its ``E_*`` form.

    Unknown codes pass through unchanged so forward-compatible callers
    never crash on a code minted after they shipped.
    """
    if code in ERROR_CODES:
        return code
    return _SERVING_WIRE_CODES.get(code, code)


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``code`` is the taxonomy code (``E_*``) when the error has a stable
    machine-readable identity; ``None`` for purely programmatic errors.
    Subclasses may fix a class-level default, and any instance can
    override it via the ``code=`` keyword.
    """

    code: str | None = None

    def __init__(self, *args, code: str | None = None) -> None:
        super().__init__(*args)
        if code is not None:
            self.code = code


class SchemaError(ReproError):
    """Invalid schema definition or lookup of a missing schema element."""


class SqlError(ReproError):
    """Base class for SQL subsystem errors."""


class SqlLexError(SqlError):
    """The SQL lexer encountered a character it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """The SQL parser rejected the token stream."""


class ExecutionError(ReproError):
    """The in-memory executor could not evaluate a query."""


class TemplateError(ReproError):
    """A seed template is malformed or cannot be instantiated."""


class GenerationError(ReproError):
    """The training-data generator could not produce a corpus."""


class TranslationError(ReproError):
    """The runtime phase could not translate a natural-language query."""


class ModelError(ReproError):
    """A neural model was used incorrectly (e.g. predict before fit)."""


class BenchmarkError(ReproError):
    """A benchmark dataset could not be constructed or loaded."""


class ServingError(ReproError):
    """The query-serving layer was misconfigured or misused.

    Runtime trouble (model failures, overload, timeouts) is *not*
    reported through exceptions: the service degrades and returns a
    structured response instead (see :mod:`repro.serving.service`).
    """


class CorpusIntegrityError(GenerationError):
    """A corpus file does not match the manifest that describes it."""

    code = E_CORPUS_CORRUPT


class ManifestMismatchError(GenerationError):
    """``--resume`` against a manifest from an incompatible run.

    Raised when the stored run fingerprint (seed, config, schemas,
    templates, format) differs from the current invocation — resuming
    would silently splice two different corpora together.
    """

    code = E_MANIFEST_MISMATCH


class FaultInjected(ReproError):
    """Deliberate failure raised by :mod:`repro.core.faults`.

    Distinct from any organic error class so tests can assert that a
    quarantined shard failed for exactly the injected reason.
    """

    code = E_FAULT_INJECTED


class BackendError(ReproError):
    """A backend adapter failed to connect, execute, or bulk-load.

    Raised by :mod:`repro.adapters` implementations; the underlying
    driver exception (e.g. ``sqlite3.Error``) is chained as the cause so
    callers can still inspect engine-specific detail, while anything
    that persists the failure matches on :data:`E_BACKEND`.
    """

    code = E_BACKEND


class IntrospectionError(BackendError):
    """A live database could not be introspected into a valid Schema.

    Carries the introspection diagnostics (``L5xx`` codes from
    :mod:`repro.analysis.diagnostics`) that explain *why* — a backend
    must either produce a correct :class:`~repro.schema.Schema` or fail
    with named diagnostics, never return a silently wrong one.
    """

    def __init__(self, *args, diagnostics=(), code: str | None = None) -> None:
        super().__init__(*args, code=code)
        self.diagnostics = list(diagnostics)


class DialectError(SqlError):
    """A query uses a construct the target SQL dialect cannot express.

    Also raised for lookups of unregistered dialects.  Distinct from
    :class:`BackendError`: the adapter never reached the engine — the
    emitter refused first.
    """

    code = E_DIALECT


class GracefulExit(ReproError):
    """SIGTERM/SIGINT converted to an exception for orderly shutdown.

    The CLI installs a signal handler that raises this; long-running
    loops catch it, flush their checkpoints, and exit nonzero with a
    "resumable" message instead of a traceback.
    """

    code = E_INTERRUPTED
