"""Exception hierarchy for the DBPal reproduction.

Every error raised by this package derives from :class:`ReproError` so
that callers can catch the whole family with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(ReproError):
    """Invalid schema definition or lookup of a missing schema element."""


class SqlError(ReproError):
    """Base class for SQL subsystem errors."""


class SqlLexError(SqlError):
    """The SQL lexer encountered a character it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """The SQL parser rejected the token stream."""


class ExecutionError(ReproError):
    """The in-memory executor could not evaluate a query."""


class TemplateError(ReproError):
    """A seed template is malformed or cannot be instantiated."""


class GenerationError(ReproError):
    """The training-data generator could not produce a corpus."""


class TranslationError(ReproError):
    """The runtime phase could not translate a natural-language query."""


class ModelError(ReproError):
    """A neural model was used incorrectly (e.g. predict before fit)."""


class BenchmarkError(ReproError):
    """A benchmark dataset could not be constructed or loaded."""


class ServingError(ReproError):
    """The query-serving layer was misconfigured or misused.

    Runtime trouble (model failures, overload, timeouts) is *not*
    reported through exceptions: the service degrades and returns a
    structured response instead (see :mod:`repro.serving.service`).
    """
