"""Syntax-aware neural translator (SyntaxSQLNet stand-in).

SyntaxSQLNet [Yu et al. 2018] couples a neural encoder with a decoder
structured by SQL syntax, on top of pre-trained GloVe embeddings.  Our
stand-in (DESIGN.md substitution #2) keeps both properties in a
CPU-trainable form:

* the decoder is the attention seq2seq of
  :mod:`repro.neural.seq2seq`, but every decoding step is constrained
  by the SQL grammar automaton (:mod:`repro.neural.grammar`) so only
  structurally valid SQL can be emitted; and
* the source embedding can be initialized from pre-trained
  distributional embeddings (:class:`repro.nlp.embeddings.WordEmbeddings`,
  the GloVe stand-in), which transfers lexical similarity into the
  encoder just as GloVe does for SyntaxSQLNet.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.templates import TrainingPair
from repro.neural.grammar import GrammarMask
from repro.neural.seq2seq import Seq2SeqModel
from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.vocab import Vocab


class SyntaxAwareModel(Seq2SeqModel):
    """Seq2seq with grammar-constrained decoding and pre-trained embeddings."""

    def __init__(
        self,
        pretrained: WordEmbeddings | None = None,
        constrained: bool = True,
        **seq2seq_kwargs,
    ) -> None:
        super().__init__(**seq2seq_kwargs)
        self._pretrained = pretrained
        self._constrained = constrained
        self._grammar_mask: GrammarMask | None = None

    def fit(self, pairs: Sequence[TrainingPair], **kwargs) -> None:
        super().fit(pairs, **kwargs)
        self._grammar_mask = GrammarMask(self.tgt_vocab) if self._constrained else None

    def _init_embeddings(self, rng: np.random.Generator) -> None:
        if self._pretrained is None:
            return
        dim = min(self._pretrained.dim, self.embed_dim)
        rows = np.zeros((len(self.src_vocab), dim))
        found = 0
        for index, token in enumerate(self.src_vocab.tokens):
            vec = self._pretrained.vector(token)
            if np.any(vec):
                rows[index] = vec[:dim]
                found += 1
        if found:
            # Blend: keep the random init where no pre-trained vector exists.
            self.src_emb.params["W"][:, :dim] = np.where(
                np.any(rows, axis=1, keepdims=True),
                rows,
                self.src_emb.params["W"][:, :dim],
            )

    def _next_token_mask(self, decoded: list[str], vocab: Vocab) -> np.ndarray | None:
        if self._grammar_mask is None:
            return None
        return self._grammar_mask.mask_for(decoded)

    def translate(self, nl: str) -> str | None:
        """Translate; constrained models never return unparseable SQL.

        The grammar mask guarantees every *prefix* is valid, but a
        decode truncated at ``max_decode_len`` can still be incomplete;
        such outputs are reported as failures (None) rather than
        surfaced as malformed SQL.
        """
        output = super().translate(nl)
        if output is None or not self._constrained:
            return output
        from repro.sql.parser import try_parse

        return output if try_parse(output) is not None else None
