"""Optimizers for the numpy layers."""

from __future__ import annotations

import numpy as np

from repro.neural.layers import Layer


class Adam:
    """Adam with optional global-norm gradient clipping."""

    def __init__(
        self,
        layers: list[Layer],
        lr: float = 2e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float = 5.0,
    ) -> None:
        self.layers = layers
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._step = 0
        self._m = [
            {name: np.zeros_like(p) for name, p in layer.params.items()}
            for layer in layers
        ]
        self._v = [
            {name: np.zeros_like(p) for name, p in layer.params.items()}
            for layer in layers
        ]

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def _global_norm(self) -> float:
        total = 0.0
        for layer in self.layers:
            for grad in layer.grads.values():
                total += float((grad * grad).sum())
        return float(np.sqrt(total))

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._step += 1
        scale = 1.0
        if self.clip_norm > 0:
            norm = self._global_norm()
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for layer, m_state, v_state in zip(self.layers, self._m, self._v):
            for name, param in layer.params.items():
                grad = layer.grads[name] * scale
                m = m_state[name]
                v = v_state[name]
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
