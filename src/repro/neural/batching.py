"""Batch construction for sequence training."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.nlp.vocab import Vocab


@dataclass
class Batch:
    """One padded mini-batch.

    ``src`` is (B, Ts); ``tgt_in``/``tgt_out`` are (B, Tt) —
    ``tgt_in`` starts with BOS, ``tgt_out`` ends with EOS (teacher
    forcing).  Masks are float 0/1 arrays of matching shape.
    """

    src: np.ndarray
    src_mask: np.ndarray
    tgt_in: np.ndarray
    tgt_out: np.ndarray
    tgt_mask: np.ndarray

    @property
    def size(self) -> int:
        return self.src.shape[0]


def pad_sequences(sequences: Sequence[list[int]], pad_id: int) -> np.ndarray:
    """Right-pad integer sequences into a (B, T) array."""
    if not sequences:
        return np.zeros((0, 0), dtype=np.int64)
    max_len = max(len(s) for s in sequences)
    out = np.full((len(sequences), max_len), pad_id, dtype=np.int64)
    for row, seq in enumerate(sequences):
        out[row, : len(seq)] = seq
    return out


def make_batch(
    src_token_lists: Sequence[list[str]],
    tgt_token_lists: Sequence[list[str]],
    src_vocab: Vocab,
    tgt_vocab: Vocab,
) -> Batch:
    """Encode and pad parallel token sequences into one batch."""
    src_ids = [src_vocab.encode(tokens) for tokens in src_token_lists]
    tgt_in_ids = [tgt_vocab.encode(tokens, add_bos=True) for tokens in tgt_token_lists]
    tgt_out_ids = [tgt_vocab.encode(tokens, add_eos=True) for tokens in tgt_token_lists]
    src = pad_sequences(src_ids, src_vocab.pad_id)
    tgt_in = pad_sequences(tgt_in_ids, tgt_vocab.pad_id)
    tgt_out = pad_sequences(tgt_out_ids, tgt_vocab.pad_id)
    src_mask = (src != src_vocab.pad_id).astype(np.float64)
    # Positions where the *output* is PAD contribute no loss.
    tgt_mask = (tgt_out != tgt_vocab.pad_id).astype(np.float64)
    return Batch(src, src_mask, tgt_in, tgt_out, tgt_mask)


def iterate_batches(
    src_token_lists: Sequence[list[str]],
    tgt_token_lists: Sequence[list[str]],
    src_vocab: Vocab,
    tgt_vocab: Vocab,
    batch_size: int,
    rng: np.random.Generator,
    bucket_by_length: bool = True,
) -> Iterator[Batch]:
    """Shuffled mini-batches, bucketed by source length to limit padding."""
    order = rng.permutation(len(src_token_lists))
    if bucket_by_length:
        order = np.array(
            sorted(order.tolist(), key=lambda i: len(src_token_lists[i]))
        )
        # Shuffle whole buckets so epochs differ while padding stays low.
        starts = np.arange(0, len(order), batch_size)
        rng.shuffle(starts)
        chunks = [order[s : s + batch_size] for s in starts]
    else:
        chunks = [
            order[s : s + batch_size] for s in range(0, len(order), batch_size)
        ]
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        yield make_batch(
            [src_token_lists[i] for i in chunk],
            [tgt_token_lists[i] for i in chunk],
            src_vocab,
            tgt_vocab,
        )
