"""Checkpointing: save and restore trained seq2seq models.

Parameters go into a single ``.npz`` archive; vocabularies and
hyperparameters into a sibling JSON file.  Only the numeric state is
persisted — the architecture is reconstructed from hyperparameters, so
checkpoints stay valid across refactors that keep the layer shapes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.neural.seq2seq import Seq2SeqModel
from repro.neural.syntaxnet import SyntaxAwareModel
from repro.nlp.vocab import Vocab

_MODEL_CLASSES = {
    "Seq2SeqModel": Seq2SeqModel,
    "SyntaxAwareModel": SyntaxAwareModel,
}


def save_model(model: Seq2SeqModel, path: str | Path) -> None:
    """Persist a fitted model to ``path`` (.npz) + ``path``.json."""
    if not getattr(model, "_fitted", False):
        raise ModelError("cannot save an unfitted model")
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for layer_index, layer in enumerate(model.layers):
        for name, param in layer.params.items():
            arrays[f"layer{layer_index}.{name}"] = param
    np.savez_compressed(path, **arrays)
    meta = {
        "class": type(model).__name__,
        "hyperparameters": {
            "embed_dim": model.embed_dim,
            "hidden_dim": model.hidden_dim,
            "epochs": model.epochs,
            "batch_size": model.batch_size,
            "lr": model.lr,
            "max_decode_len": model.max_decode_len,
            "seed": model.seed,
            "beam_size": model.beam_size,
        },
        "src_vocab": model.src_vocab.to_dict(),
        "tgt_vocab": model.tgt_vocab.to_dict(),
        "loss_history": model.loss_history,
    }
    meta_path = path.with_suffix(path.suffix + ".json")
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle)


def load_model(path: str | Path) -> Seq2SeqModel:
    """Restore a model saved with :func:`save_model`."""
    path = Path(path)
    meta_path = path.with_suffix(path.suffix + ".json")
    if not meta_path.exists():
        raise ModelError(f"missing checkpoint metadata {meta_path}")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    model_cls = _MODEL_CLASSES.get(meta["class"])
    if model_cls is None:
        raise ModelError(f"unknown model class {meta['class']!r}")
    model = model_cls(**meta["hyperparameters"])
    model.src_vocab = Vocab.from_dict(meta["src_vocab"])
    model.tgt_vocab = Vocab.from_dict(meta["tgt_vocab"])
    rng = np.random.default_rng(model.seed)
    model._build_network(rng)
    archive_path = path if path.exists() else path.with_suffix(".npz")
    with np.load(archive_path) as archive:
        for layer_index, layer in enumerate(model.layers):
            for name in layer.params:
                layer.params[name][...] = archive[f"layer{layer_index}.{name}"]
    model.loss_history = list(meta.get("loss_history", []))
    model._fitted = True
    if isinstance(model, SyntaxAwareModel):
        from repro.neural.grammar import GrammarMask

        model._grammar_mask = GrammarMask(model.tgt_vocab)
    return model
