"""Cross-domain schema generalization (SyntaxSQLNet's schema encoding).

Models like SyntaxSQLNet translate questions about *unseen* databases
by encoding the target schema as part of the input instead of baking
schema tokens into the output vocabulary.  Our CPU-scale equivalent is
schema-slot anonymization: every schema element gets a positional slot
token (``tbl0``, ``col3``, …), training pairs are rewritten into slot
space using their schema, and decoded SQL is mapped back through the
*test* schema's slot table.

Only exact (lemmatized) element *names* are anonymized in the NL —
synonyms and domain phrases are left verbatim.  This is what preserves
the paper's DBPal (Full) effect: schema-specific synonym knowledge
("seats" → the capacity column of the flights schema) can only be
learned from training data generated *for that schema*, exactly as in
§6.2.2.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.templates import TrainingPair
from repro.errors import ModelError
from repro.neural.base import TranslationModel, safe_sql_tokens, tokens_to_sql
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.tokenizer import tokenize
from repro.schema.schema import Schema
from repro.sql.ast import JOIN_PLACEHOLDER


class SchemaMap:
    """Bidirectional schema-element <-> slot-token mapping for one schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._table_slot: dict[str, str] = {}
        self._column_slot: dict[str, str] = {}
        for index, name in enumerate(sorted(schema.table_names)):
            self._table_slot[name] = f"tbl{index}"
        columns = sorted({c.name for t in schema.tables for c in t.columns})
        for index, name in enumerate(columns):
            self._column_slot[name] = f"col{index}"
        self._slot_table = {v: k for k, v in self._table_slot.items()}
        self._slot_column = {v: k for k, v in self._column_slot.items()}
        # NL phrase (lemmatized element name) -> slot, longest-first.
        self._nl_phrases: list[tuple[tuple[str, ...], str]] = []
        for name, slot in self._table_slot.items():
            self._nl_phrases.append((tuple(lemmatize(name.replace("_", " ")).split()), slot))
        for name, slot in self._column_slot.items():
            self._nl_phrases.append((tuple(lemmatize(name.replace("_", " ")).split()), slot))
        self._nl_phrases.sort(key=lambda entry: -len(entry[0]))

    # -- SQL side --------------------------------------------------------

    def sql_tokens_to_slots(self, tokens: list[str]) -> list[str]:
        out = []
        for token in tokens:
            if token.startswith("@") and token != JOIN_PLACEHOLDER:
                out.append(self._placeholder_to_slots(token))
            elif token in self._table_slot:
                out.append(self._table_slot[token])
            elif token in self._column_slot:
                out.append(self._column_slot[token])
            else:
                out.append(token)
        return out

    def sql_tokens_from_slots(self, tokens: list[str]) -> list[str]:
        out = []
        for token in tokens:
            if token.startswith("@") and token != JOIN_PLACEHOLDER:
                out.append(self._placeholder_from_slots(token))
            elif token in self._slot_table:
                out.append(self._slot_table[token])
            elif token in self._slot_column:
                out.append(self._slot_column[token])
            else:
                out.append(token)
        return out

    def _placeholder_to_slots(self, token: str) -> str:
        segments = token[1:].lower().split(".")
        mapped = []
        for segment in segments:
            if segment in self._table_slot:
                mapped.append(self._table_slot[segment].upper())
            elif segment in self._column_slot:
                mapped.append(self._column_slot[segment].upper())
            else:
                mapped.append(segment.upper())
        return "@" + ".".join(mapped)

    def _placeholder_from_slots(self, token: str) -> str:
        segments = token[1:].lower().split(".")
        mapped = []
        for segment in segments:
            if segment in self._slot_table:
                mapped.append(self._slot_table[segment].upper())
            elif segment in self._slot_column:
                mapped.append(self._slot_column[segment].upper())
            else:
                mapped.append(segment.upper())
        return "@" + ".".join(mapped)

    # -- NL side ---------------------------------------------------------

    def nl_to_slots(self, nl: str) -> str:
        """Replace exact element-name mentions (and placeholders) by slots."""
        tokens = tokenize(nl)
        tokens = [
            self._placeholder_to_slots(t) if t.startswith("@") and t != JOIN_PLACEHOLDER else t
            for t in tokens
        ]
        out: list[str] = []
        position = 0
        while position < len(tokens):
            matched = False
            for phrase, slot in self._nl_phrases:
                size = len(phrase)
                if tuple(tokens[position : position + size]) == phrase:
                    out.append(slot)
                    position += size
                    matched = True
                    break
            if not matched:
                out.append(tokens[position])
                position += 1
        return " ".join(out)


class CrossDomainModel(TranslationModel):
    """Schema-slot wrapper around any inner token-level translator.

    Parameters
    ----------
    inner:
        The wrapped model (typically :class:`Seq2SeqModel` or
        :class:`SyntaxAwareModel`).
    schemas:
        Every schema that can occur in training pairs or at inference
        time (slot tables are precomputed per schema).
    default_schema:
        Optional schema assumed by :meth:`translate` when the caller
        cannot supply one (single-database deployments).
    """

    def __init__(
        self,
        inner,
        schemas: Sequence[Schema],
        default_schema: Schema | None = None,
    ) -> None:
        self.inner = inner
        self._maps = {schema.name: SchemaMap(schema) for schema in schemas}
        self._default = default_schema

    def map_for(self, schema: Schema | str) -> SchemaMap:
        name = schema if isinstance(schema, str) else schema.name
        schema_map = self._maps.get(name)
        if schema_map is None:
            if isinstance(schema, Schema):
                schema_map = SchemaMap(schema)
                self._maps[name] = schema_map
            else:
                raise ModelError(f"unknown schema {name!r}")
        return schema_map

    # ------------------------------------------------------------------

    def fit(self, pairs: Sequence[TrainingPair], **kwargs) -> None:
        anonymized: list[TrainingPair] = []
        for pair in pairs:
            schema_map = self._maps.get(pair.schema_name)
            if schema_map is None:
                continue
            tokens = safe_sql_tokens(pair.sql_text)
            if tokens is None:
                continue
            slot_sql = tokens_to_sql(schema_map.sql_tokens_to_slots(tokens))
            from repro.sql.parser import try_parse

            slot_query = try_parse(slot_sql)
            if slot_query is None:
                continue
            anonymized.append(
                TrainingPair(
                    nl=schema_map.nl_to_slots(pair.nl),
                    sql=slot_query,
                    template_id=pair.template_id,
                    family=pair.family,
                    schema_name=pair.schema_name,
                    augmentation=pair.augmentation,
                )
            )
        self.inner.fit(anonymized, **kwargs)

    def translate(self, nl: str) -> str | None:
        if self._default is None:
            raise ModelError(
                "CrossDomainModel.translate needs a default schema; "
                "use translate_for_schema(nl, schema)"
            )
        return self.translate_for_schema(nl, self._default)

    def translate_for_schema(self, nl: str, schema: Schema | str) -> str | None:
        schema_map = self.map_for(schema)
        raw = self.inner.translate(schema_map.nl_to_slots(nl))
        if raw is None:
            return None
        tokens = raw.split()
        return tokens_to_sql(schema_map.sql_tokens_from_slots(tokens))
