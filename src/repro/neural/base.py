"""The pluggable translation-model interface and SQL token helpers.

DBPal "is agnostic to the actual translation model" (paper §2.1): any
object satisfying :class:`TranslationModel` can be trained by the
pipeline and served by the runtime phase.  The contract is minimal on
purpose — ``fit`` on training pairs, ``translate`` preprocessed NL to
SQL text (or ``None`` when the model cannot produce a parse).

SQL target sequences use the tokens of :mod:`repro.sql.lexer` rendered
to canonical text (keywords upper-case, identifiers lower-case), so a
decoded token sequence joined by spaces is directly parseable.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.templates import TrainingPair
from repro.errors import SqlError
from repro.sql.lexer import TokenType, tokenize as sql_tokenize


class TranslationModel(abc.ABC):
    """Anything that can be plugged into DBPal's pipeline."""

    @abc.abstractmethod
    def fit(self, pairs: Sequence[TrainingPair], **kwargs) -> None:
        """Train on (NL, SQL) pairs (NL already lemmatized/anonymized)."""

    @abc.abstractmethod
    def translate(self, nl: str) -> str | None:
        """Translate preprocessed NL to SQL text with placeholders.

        Returns ``None`` when no translation can be produced.
        """

    def translate_batch(self, nls: Sequence[str]) -> list[str | None]:
        """Translate many inputs (models may override for speed)."""
        return [self.translate(nl) for nl in nls]

    def translate_for_schema(self, nl: str, schema) -> str | None:
        """Translate with an explicit target schema.

        Schema-agnostic models ignore the schema; cross-domain models
        (see :mod:`repro.neural.crossdomain`) override this to encode
        it, mirroring how SyntaxSQLNet receives the database schema as
        part of its input.
        """
        return self.translate(nl)


_AGG_KEYWORDS = {"count", "sum", "avg", "min", "max"}


def sql_to_tokens(sql_text: str) -> list[str]:
    """Tokenize SQL text into the canonical target token sequence.

    Raises :class:`~repro.errors.SqlError` (via the lexer) on text that
    is not lexable — training data always is.
    """
    tokens: list[str] = []
    for token in sql_tokenize(sql_text):
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.KEYWORD:
            tokens.append(token.value.upper())
        elif token.type is TokenType.PLACEHOLDER:
            tokens.append("@" + token.value.upper())
        elif token.type is TokenType.STRING:
            tokens.append("'" + token.value + "'")
        else:
            tokens.append(token.value)
    return tokens


def tokens_to_sql(tokens: Sequence[str]) -> str:
    """Join target tokens back into (parseable) SQL text."""
    return " ".join(tokens)


def safe_sql_tokens(sql_text: str) -> list[str] | None:
    """Like :func:`sql_to_tokens` but returns None on lexing failure."""
    try:
        return sql_to_tokens(sql_text)
    except SqlError:
        return None
