"""A GRU encoder/decoder with dot-product attention, in pure numpy.

This is the generic sequence-to-sequence translation model the paper
plugs its pipeline into (§3.4 — "existing models, ranging from simple
seq2seq to more complex ones like SyntaxSQLNet, can be used").  The
implementation is deliberately self-contained: manual forward and
backward passes over :mod:`repro.neural.layers`, Adam updates, greedy
decoding with an optional next-token mask hook (used by the
grammar-constrained subclass in :mod:`repro.neural.syntaxnet`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.templates import TrainingPair
from repro.errors import ModelError
from repro.neural.base import TranslationModel, safe_sql_tokens, tokens_to_sql
from repro.neural.batching import Batch, iterate_batches, make_batch
from repro.neural.layers import Dense, Embedding, GRUCell, cross_entropy, softmax
from repro.neural.optim import Adam
from repro.nlp.tokenizer import tokenize
from repro.nlp.vocab import Vocab

#: Hook deciding which target-token ids are allowed next; receives the
#: decoded prefix (token strings) and the vocabulary, returns a boolean
#: mask of shape (vocab,) or None for "no constraint".
NextTokenMask = Callable[[list[str], Vocab], np.ndarray | None]


class Seq2SeqModel(TranslationModel):
    """Attention seq2seq NL -> SQL translator.

    Parameters mirror the usual knobs; defaults are sized for corpora
    of a few thousand pairs on a laptop CPU.
    """

    def __init__(
        self,
        embed_dim: int = 48,
        hidden_dim: int = 96,
        epochs: int = 10,
        batch_size: int = 64,
        lr: float = 3e-3,
        max_decode_len: int = 60,
        seed: int = 0,
        min_token_count: int = 1,
        beam_size: int = 1,
        verbose: bool = False,
    ) -> None:
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_decode_len = max_decode_len
        self.seed = seed
        self.min_token_count = min_token_count
        self.beam_size = beam_size
        self.verbose = verbose
        self.loss_history: list[float] = []
        self.src_vocab: Vocab | None = None
        self.tgt_vocab: Vocab | None = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_network(self, rng: np.random.Generator) -> None:
        h = self.hidden_dim
        self.src_emb = Embedding(len(self.src_vocab), self.embed_dim, rng)
        self.tgt_emb = Embedding(len(self.tgt_vocab), self.embed_dim, rng)
        self.encoder = GRUCell(self.embed_dim, h, rng)
        self.decoder = GRUCell(self.embed_dim, h, rng)
        self.combine = Dense(2 * h, h, rng, activation="tanh")
        self.out = Dense(h, len(self.tgt_vocab), rng)
        self.layers = [
            self.src_emb,
            self.tgt_emb,
            self.encoder,
            self.decoder,
            self.combine,
            self.out,
        ]

    def _init_embeddings(self, rng: np.random.Generator) -> None:
        """Hook for subclasses to install pre-trained source embeddings."""

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, pairs: Sequence[TrainingPair], **kwargs) -> None:
        """Train on training pairs; see class docstring for knobs."""
        epochs = kwargs.pop("epochs", self.epochs)
        if kwargs:
            raise TypeError(f"unexpected fit arguments: {sorted(kwargs)}")
        src_tokens, tgt_tokens = self._tokenize_pairs(pairs)
        if not src_tokens:
            raise ModelError("cannot fit on an empty training set")
        self.src_vocab = Vocab.from_sequences(src_tokens, min_count=self.min_token_count)
        self.tgt_vocab = Vocab.from_sequences(tgt_tokens, min_count=1)
        rng = np.random.default_rng(self.seed)
        self._build_network(rng)
        self._init_embeddings(rng)
        optimizer = Adam(self.layers, lr=self.lr)
        self.loss_history = []
        for epoch in range(epochs):
            total_loss = 0.0
            total_tokens = 0.0
            for batch in iterate_batches(
                src_tokens,
                tgt_tokens,
                self.src_vocab,
                self.tgt_vocab,
                self.batch_size,
                rng,
            ):
                optimizer.zero_grads()
                loss, tokens = self._train_batch(batch)
                optimizer.step()
                total_loss += loss
                total_tokens += tokens
            epoch_loss = total_loss / max(total_tokens, 1.0)
            self.loss_history.append(epoch_loss)
            if self.verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss/token = {epoch_loss:.4f}")
        self._fitted = True

    @staticmethod
    def _tokenize_pairs(pairs: Sequence[TrainingPair]):
        src_tokens: list[list[str]] = []
        tgt_tokens: list[list[str]] = []
        for pair in pairs:
            target = safe_sql_tokens(pair.sql_text)
            if target is None:
                continue
            src_tokens.append(tokenize(pair.nl))
            tgt_tokens.append(target)
        return src_tokens, tgt_tokens

    # -- forward/backward over one batch --------------------------------

    def _encode(self, src: np.ndarray, src_mask: np.ndarray):
        """Run the encoder; returns (enc_out (B,Ts,h), final h, caches)."""
        batch, length = src.shape
        h = np.zeros((batch, self.hidden_dim))
        enc_out = np.zeros((batch, length, self.hidden_dim))
        caches = []
        embedded = self.src_emb.forward(src)  # (B, Ts, d)
        for t in range(length):
            h_new, cache = self.encoder.forward(embedded[:, t, :], h)
            mask_t = src_mask[:, t : t + 1]
            h = mask_t * h_new + (1.0 - mask_t) * h
            enc_out[:, t, :] = h
            caches.append(cache)
        return embedded, enc_out, h, caches

    def _attend(self, dec_h: np.ndarray, enc_out: np.ndarray, src_mask: np.ndarray):
        """Dot attention: (B,h) x (B,Ts,h) -> context (B,h) and weights."""
        scores = np.einsum("bh,bth->bt", dec_h, enc_out)
        scores = np.where(src_mask > 0, scores, -1e9)
        alpha = softmax(scores, axis=-1)
        context = np.einsum("bt,bth->bh", alpha, enc_out)
        return context, alpha

    def _train_batch(self, batch: Batch) -> tuple[float, float]:
        src, src_mask = batch.src, batch.src_mask
        tgt_in, tgt_out, tgt_mask = batch.tgt_in, batch.tgt_out, batch.tgt_mask
        batch_size, tgt_len = tgt_in.shape

        embedded_src, enc_out, h_final, enc_caches = self._encode(src, src_mask)

        # Decoder forward with teacher forcing.
        embedded_tgt = self.tgt_emb.forward(tgt_in)  # (B, Tt, d)
        h = h_final
        dec_caches = []
        step_records = []
        total_loss = 0.0
        d_enc_out = np.zeros_like(enc_out)
        logit_grads = []
        for t in range(tgt_len):
            h, cache = self.decoder.forward(embedded_tgt[:, t, :], h)
            context, alpha = self._attend(h, enc_out, src_mask)
            concat = np.concatenate([h, context], axis=1)
            combined, comb_cache = self.combine.forward(concat)
            logits, out_cache = self.out.forward(combined)
            loss, dlogits = cross_entropy(logits, tgt_out[:, t], tgt_mask[:, t])
            total_loss += loss
            dec_caches.append(cache)
            step_records.append((alpha, comb_cache, out_cache, h))
            logit_grads.append(dlogits)

        # Decoder backward (reverse time).
        dh_next = np.zeros((batch_size, self.hidden_dim))
        d_embedded_tgt = np.zeros_like(embedded_tgt)
        for t in range(tgt_len - 1, -1, -1):
            alpha, comb_cache, out_cache, dec_h = step_records[t]
            dcombined = self.out.backward(logit_grads[t], out_cache)
            dconcat = self.combine.backward(dcombined, comb_cache)
            ddec_h = dconcat[:, : self.hidden_dim].copy()
            dcontext = dconcat[:, self.hidden_dim :]
            # context = alpha @ enc_out
            dalpha = np.einsum("bh,bth->bt", dcontext, enc_out)
            d_enc_out += alpha[:, :, None] * dcontext[:, None, :]
            # softmax backward
            dscores = alpha * (dalpha - (dalpha * alpha).sum(axis=1, keepdims=True))
            # scores = dec_h . enc_out
            ddec_h += np.einsum("bt,bth->bh", dscores, enc_out)
            d_enc_out += dscores[:, :, None] * dec_h[:, None, :]
            ddec_h += dh_next
            dx, dh_next = self.decoder.backward(ddec_h, dec_caches[t])
            d_embedded_tgt[:, t, :] = dx
        self.tgt_emb.backward(tgt_in, d_embedded_tgt)

        # Encoder backward. dh_next is the gradient on the final state.
        dh = dh_next
        d_embedded_src = np.zeros_like(embedded_src)
        src_len = src.shape[1]
        for t in range(src_len - 1, -1, -1):
            dh_t = dh + d_enc_out[:, t, :]
            mask_t = src_mask[:, t : t + 1]
            dh_new = mask_t * dh_t
            dx, dh_prev = self.encoder.backward(dh_new, enc_caches[t])
            d_embedded_src[:, t, :] = dx
            dh = dh_prev + (1.0 - mask_t) * dh_t
        self.src_emb.backward(src, d_embedded_src)

        return total_loss, float(tgt_mask.sum())

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def translate(self, nl: str) -> str | None:
        tokens = self.translate_tokens(tokenize(nl))
        if not tokens:
            return None
        return tokens_to_sql(tokens)

    def translate_tokens(
        self, src_tokens: list[str], next_token_mask: NextTokenMask | None = None
    ) -> list[str]:
        """Decode; greedy by default, beam search when ``beam_size > 1``.

        Optionally constrained step-by-step by a next-token mask.
        """
        if not self._fitted:
            raise ModelError("translate called before fit")
        if not src_tokens:
            return []
        if next_token_mask is None:
            next_token_mask = self._next_token_mask
        if self.beam_size > 1:
            return self._beam_decode(src_tokens, next_token_mask)
        batch = make_batch([src_tokens], [[]], self.src_vocab, self.tgt_vocab)
        _, enc_out, h, _ = self._encode(batch.src, batch.src_mask)
        src_mask = batch.src_mask
        prev_id = self.tgt_vocab.bos_id
        decoded: list[str] = []
        banned = np.array(
            [self.tgt_vocab.pad_id, self.tgt_vocab.bos_id, self.tgt_vocab.unk_id]
        )
        for _ in range(self.max_decode_len):
            x = self.tgt_emb.forward(np.array([prev_id]))
            h, _cache = self.decoder.forward(x, h)
            context, _alpha = self._attend(h, enc_out, src_mask)
            combined, _ = self.combine.forward(
                np.concatenate([h, context], axis=1)
            )
            logits, _ = self.out.forward(combined)
            logits = logits[0]
            logits[banned] = -np.inf
            if next_token_mask is not None:
                mask = next_token_mask(decoded, self.tgt_vocab)
                if mask is not None and mask.any():
                    logits = np.where(mask, logits, -np.inf)
            next_id = int(np.argmax(logits))
            if next_id == self.tgt_vocab.eos_id:
                break
            decoded.append(self.tgt_vocab.token_of(next_id))
            prev_id = next_id
        return decoded

    def _next_token_mask(self, decoded: list[str], vocab: Vocab) -> np.ndarray | None:
        """Subclass hook for constrained decoding (None = unconstrained)."""
        return None

    # -- beam search -----------------------------------------------------

    def _step_logits(self, prev_id: int, h, enc_out, src_mask):
        """One decoder step from hidden state ``h``; returns (logits, h')."""
        x = self.tgt_emb.forward(np.array([prev_id]))
        h, _cache = self.decoder.forward(x, h)
        context, _alpha = self._attend(h, enc_out, src_mask)
        combined, _ = self.combine.forward(np.concatenate([h, context], axis=1))
        logits, _ = self.out.forward(combined)
        return logits[0], h

    def _beam_decode(self, src_tokens: list[str], next_token_mask) -> list[str]:
        """Length-normalized beam search over the target vocabulary."""
        batch = make_batch([src_tokens], [[]], self.src_vocab, self.tgt_vocab)
        _, enc_out, h0, _ = self._encode(batch.src, batch.src_mask)
        src_mask = batch.src_mask
        banned = np.array(
            [self.tgt_vocab.pad_id, self.tgt_vocab.bos_id, self.tgt_vocab.unk_id]
        )
        # Hypotheses: (log_prob, tokens, prev_id, hidden, finished).
        beams = [(0.0, [], self.tgt_vocab.bos_id, h0, False)]
        for _ in range(self.max_decode_len):
            if all(finished for _, _, _, _, finished in beams):
                break
            candidates = []
            for log_prob, tokens, prev_id, h, finished in beams:
                if finished:
                    candidates.append((log_prob, tokens, prev_id, h, True))
                    continue
                logits, h_new = self._step_logits(prev_id, h, enc_out, src_mask)
                logits[banned] = -np.inf
                if next_token_mask is not None:
                    mask = next_token_mask(tokens, self.tgt_vocab)
                    if mask is not None and mask.any():
                        logits = np.where(mask, logits, -np.inf)
                log_probs = logits - np.logaddexp.reduce(
                    logits[np.isfinite(logits)]
                )
                top = np.argsort(-logits)[: self.beam_size]
                for token_id in top:
                    token_id = int(token_id)
                    if not np.isfinite(logits[token_id]):
                        continue
                    score = log_prob + float(log_probs[token_id])
                    if token_id == self.tgt_vocab.eos_id:
                        candidates.append((score, tokens, token_id, h_new, True))
                    else:
                        candidates.append(
                            (
                                score,
                                tokens + [self.tgt_vocab.token_of(token_id)],
                                token_id,
                                h_new,
                                False,
                            )
                        )
            # Keep the best hypotheses by length-normalized score.
            candidates.sort(
                key=lambda c: -(c[0] / max(len(c[1]), 1))
            )
            beams = candidates[: self.beam_size]
        finished = [b for b in beams if b[4]] or beams
        best = max(finished, key=lambda c: c[0] / max(len(c[1]), 1))
        return best[1]
