"""Neural translation models (pluggable into the DBPal pipeline)."""

from repro.neural.base import (
    TranslationModel,
    safe_sql_tokens,
    sql_to_tokens,
    tokens_to_sql,
)
from repro.neural.checkpoint import load_model, save_model
from repro.neural.crossdomain import CrossDomainModel, SchemaMap
from repro.neural.grammar import GrammarMask, SqlDecodingAutomaton, classify
from repro.neural.retrieval import RetrievalModel
from repro.neural.seq2seq import Seq2SeqModel
from repro.neural.syntaxnet import SyntaxAwareModel

__all__ = [
    "CrossDomainModel",
    "GrammarMask",
    "SchemaMap",
    "RetrievalModel",
    "Seq2SeqModel",
    "SqlDecodingAutomaton",
    "SyntaxAwareModel",
    "TranslationModel",
    "classify",
    "load_model",
    "safe_sql_tokens",
    "save_model",
    "sql_to_tokens",
    "tokens_to_sql",
]
