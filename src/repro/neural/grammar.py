"""A token-level SQL grammar automaton for constrained decoding.

Our SyntaxSQLNet stand-in (DESIGN.md substitution #2) augments the
seq2seq decoder with syntax awareness: at every decoding step, the
automaton computes which target tokens may legally follow the decoded
prefix, and the decoder masks out everything else.  This mirrors the
role of SyntaxSQLNet's syntax-tree decoder — the network never has the
opportunity to emit structurally invalid SQL.

The automaton tracks clause order (SELECT → FROM → WHERE → GROUP BY →
HAVING → ORDER BY → LIMIT), item/predicate structure, and a frame stack
for subqueries and parenthesized predicate groups.  It accepts exactly
the token streams produced by :func:`repro.neural.base.sql_to_tokens`
over the supported SQL subset (verified by property tests).
"""

from __future__ import annotations

import re

import numpy as np

from repro.nlp.vocab import Vocab
from repro.sql.ast import JOIN_PLACEHOLDER

# Symbol categories.
IDENT = "IDENT"
PLACEHOLDER = "PLACEHOLDER"
NUMBER = "NUMBER"
STRING = "STRING"
JOIN_PH = "JOIN_PH"
OP = "OP"
END = "END"

_AGG_KEYWORDS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})
_KEYWORDS = frozenset(
    """
    SELECT DISTINCT FROM WHERE GROUP BY HAVING ORDER LIMIT
    AND OR NOT BETWEEN IN LIKE EXISTS ASC DESC
    """.split()
) | _AGG_KEYWORDS
_PUNCT = frozenset({"(", ")", ",", ".", "*"})
_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")

#: Clauses that may follow a completed FROM/WHERE/... section, in order.
_TAIL = ("WHERE", "GROUP", "ORDER", "LIMIT")


def classify(token: str) -> str:
    """Map a target token to its grammar symbol."""
    if token == JOIN_PLACEHOLDER:
        return JOIN_PH
    if token.startswith("@"):
        return PLACEHOLDER
    if token in _KEYWORDS:
        return token
    if token in _PUNCT:
        return token
    if token in _OPS:
        return OP
    if _NUMBER_RE.match(token):
        return NUMBER
    if token.startswith("'"):
        return STRING
    return IDENT


class _Frame:
    """One query frame (top-level query, subquery, or predicate group)."""

    __slots__ = ("state", "kind", "done_clauses", "pred_context", "agg_origin")

    def __init__(self, kind: str = "query") -> None:
        # kind: "query" (top level), "subquery", "group" (pred parens)
        self.kind = kind
        self.state = "start" if kind != "group" else "pred_start"
        self.done_clauses: set[str] = set()
        # "where" or "having": whether aggregates may start a predicate.
        self.pred_context = "where"
        # Where the aggregate being decoded came from: "" (select item),
        # "pred" (HAVING predicate), or "order" (ORDER BY key).
        self.agg_origin = ""


class GrammarViolation(Exception):
    """Internal: the prefix cannot be extended by the given token."""


class SqlDecodingAutomaton:
    """Incrementally validates/constrains a target token stream.

    ``max_depth`` bounds the frame stack (query + nested subqueries /
    predicate groups).  The paper's SQL subset only uses single-level
    uncorrelated nesting (§5.2), and the bound keeps a looping decoder
    from recursing until truncation.
    """

    def __init__(self, max_depth: int = 3) -> None:
        self._stack = [_Frame("query")]
        self._max_depth = max_depth

    # -- public API ------------------------------------------------------

    def advance(self, token: str) -> None:
        """Consume one token; raises :class:`GrammarViolation` if illegal."""
        symbol = classify(token)
        if symbol not in self.allowed_symbols():
            raise GrammarViolation(f"token {token!r} ({symbol}) not allowed")
        self._transition(symbol)

    def allowed_symbols(self) -> frozenset[str]:
        """Symbols that may come next (END = end of sequence)."""
        frame = self._stack[-1]
        allowed = set(self._allowed_for(frame))
        if len(self._stack) >= self._max_depth:
            # At maximum depth no further frames may open: block the
            # parenthesis itself and the tokens that inevitably lead to
            # one (NOT -> EXISTS -> '(' and IN's nested SELECT).
            allowed.discard("(")
            if frame.state == "pred_start":
                allowed.discard("EXISTS")
                allowed.discard("NOT")
            if frame.state == "in_first":
                allowed.discard("SELECT")
        return frozenset(allowed)

    def accepts(self, tokens: list[str]) -> bool:
        """Whether the full token list is a valid complete query."""
        automaton = SqlDecodingAutomaton()
        try:
            for token in tokens:
                automaton.advance(token)
        except GrammarViolation:
            return False
        return END in automaton.allowed_symbols()

    # -- allowed-symbol computation ---------------------------------------

    _CLAUSE_ORDER = {"WHERE": 0, "GROUP": 1, "HAVING": 2, "ORDER": 3, "LIMIT": 4}

    def _tail_symbols(self, frame: _Frame) -> set[str]:
        """Clause keywords that may still open, plus frame terminators."""
        if frame.kind == "group":
            # A parenthesized predicate group only closes or continues
            # with AND/OR (handled by the predicate states).
            return {")"}
        highest = max(
            (self._CLAUSE_ORDER[c] for c in frame.done_clauses), default=-1
        )
        allowed = {c for c, rank in self._CLAUSE_ORDER.items() if rank > highest}
        if "GROUP" not in frame.done_clauses:
            allowed.discard("HAVING")
        if frame.kind == "query":
            allowed.add(END)
        else:
            allowed.add(")")
        return allowed

    def _allowed_for(self, frame: _Frame) -> set[str]:
        state = frame.state
        if state == "start":
            return {"SELECT"}
        if state == "post_select":
            return {"DISTINCT", IDENT, "*"} | _AGG_KEYWORDS
        if state == "item_start":
            return {IDENT, "*"} | _AGG_KEYWORDS
        if state == "item_star":
            return {",", "FROM"}
        if state == "item_ident":
            return {".", ",", "FROM"}
        if state == "item_ident_dot":
            return {IDENT}
        if state == "item_ident_done":
            return {",", "FROM"}
        if state == "agg_open":
            return {"("}
        if state == "agg_arg":
            return {"DISTINCT", IDENT, "*"}
        if state == "agg_arg_nodistinct":
            return {IDENT, "*"}
        if state == "agg_ident":
            return {".", ")"}
        if state == "agg_ident_dot":
            return {IDENT}
        if state == "agg_ident_done":
            return {")"}
        if state == "agg_star":
            return {")"}
        if state == "from":
            return {IDENT, JOIN_PH}
        if state == "from_table":
            return {","} | self._tail_symbols(frame)
        if state == "pred_start":
            allowed = {IDENT, "NOT", "EXISTS", "("}
            if frame.pred_context == "having":
                allowed |= _AGG_KEYWORDS
            return allowed
        if state == "pred_not":
            return {"EXISTS", "("}
        if state == "pred_col":
            return {".", OP, "BETWEEN", "IN", "LIKE", "NOT"}
        if state == "pred_col_dot":
            return {IDENT}
        if state == "pred_col_done":
            return {OP, "BETWEEN", "IN", "LIKE", "NOT"}
        if state == "pred_col_not":
            return {"BETWEEN", "IN", "LIKE"}
        if state == "pred_value":
            return {PLACEHOLDER, NUMBER, STRING, IDENT, "("}
        if state == "pred_value_ident":
            return {".", "AND", "OR"} | self._tail_symbols(frame)
        if state == "pred_value_ident_dot":
            return {IDENT}
        if state == "pred_done":
            return {"AND", "OR"} | self._tail_symbols(frame)
        if state == "between_low":
            return {PLACEHOLDER, NUMBER}
        if state == "between_and":
            return {"AND"}
        if state == "between_high":
            return {PLACEHOLDER, NUMBER}
        if state == "in_open":
            return {"("}
        if state == "in_first":
            return {"SELECT", PLACEHOLDER, NUMBER, STRING}
        if state == "in_value":
            return {",", ")"}
        if state == "in_next":
            return {PLACEHOLDER, NUMBER, STRING}
        if state == "like_value":
            return {STRING, PLACEHOLDER}
        if state == "exists_open":
            return {"("}
        if state == "group":
            return {"BY"}
        if state == "group_col":
            return {IDENT}
        if state == "group_col_ident":
            return {".", ","} | self._tail_symbols(frame)
        if state == "group_col_dot":
            return {IDENT}
        if state == "group_col_done":
            return {","} | self._tail_symbols(frame)
        if state == "having_agg_done":
            return {OP}
        if state == "order":
            return {"BY"}
        if state == "order_col":
            return {IDENT} | _AGG_KEYWORDS
        if state == "order_ident":
            return {".", "DESC", "ASC", ","} | self._tail_symbols(frame)
        if state == "order_ident_dot":
            return {IDENT}
        if state == "order_done":
            return {"DESC", "ASC", ","} | self._tail_symbols(frame)
        if state == "order_final":
            return {","} | self._tail_symbols(frame)
        if state == "limit":
            return {NUMBER}
        if state == "limit_done":
            return self._tail_symbols(frame) - set(_TAIL) - {"HAVING"}
        raise AssertionError(f"unknown state {state!r}")

    # -- transitions -------------------------------------------------------

    def _transition(self, symbol: str) -> None:
        frame = self._stack[-1]
        state = frame.state

        # Frame termination and tail clauses are shared across states.
        if symbol == ")" and state in (
            "from_table",
            "pred_done",
            "pred_value_ident",
            "group_col_ident",
            "group_col_done",
            "order_ident",
            "order_done",
            "order_final",
            "limit_done",
            "in_value",
        ):
            if state == "in_value":
                frame.state = "pred_done"
                return
            self._pop_frame()
            return
        if symbol in ("WHERE", "GROUP", "ORDER", "LIMIT", "HAVING") and state in (
            "from_table",
            "pred_done",
            "pred_value_ident",
            "group_col_ident",
            "group_col_done",
            "order_ident",
            "order_done",
            "order_final",
        ):
            frame.done_clauses.add(symbol if symbol != "HAVING" else "HAVING")
            if symbol == "WHERE":
                frame.pred_context = "where"
                frame.state = "pred_start"
            elif symbol == "GROUP":
                frame.state = "group"
            elif symbol == "HAVING":
                frame.pred_context = "having"
                frame.state = "pred_start"
            elif symbol == "ORDER":
                frame.state = "order"
            else:
                frame.state = "limit"
            return

        handler = getattr(self, "_on_" + state, None)
        if handler is None:
            raise GrammarViolation(f"no transition from {state!r} on {symbol!r}")
        handler(frame, symbol)

    def _pop_frame(self) -> None:
        if len(self._stack) <= 1:
            raise GrammarViolation("unbalanced )")
        self._stack.pop()
        parent = self._stack[-1]
        # Returning from a subquery or predicate group completes a
        # predicate (scalar comparison, IN, EXISTS, group).
        parent.state = "pred_done"

    # Individual state handlers -------------------------------------------

    def _on_start(self, frame, symbol):
        frame.state = "post_select"

    def _on_post_select(self, frame, symbol):
        if symbol == "DISTINCT":
            frame.state = "item_start"
        else:
            self._begin_item(frame, symbol)

    def _on_item_start(self, frame, symbol):
        self._begin_item(frame, symbol)

    def _begin_item(self, frame, symbol):
        if symbol == "*":
            frame.state = "item_star"
        elif symbol == IDENT:
            frame.state = "item_ident"
        elif symbol in _AGG_KEYWORDS:
            frame.state = "agg_open"
        else:
            raise GrammarViolation(f"bad item start {symbol!r}")

    def _on_item_star(self, frame, symbol):
        self._after_item(frame, symbol)

    def _on_item_ident(self, frame, symbol):
        if symbol == ".":
            frame.state = "item_ident_dot"
        else:
            self._after_item(frame, symbol)

    def _on_item_ident_dot(self, frame, symbol):
        frame.state = "item_ident_done"

    def _on_item_ident_done(self, frame, symbol):
        self._after_item(frame, symbol)

    def _after_item(self, frame, symbol):
        if symbol == ",":
            frame.state = "item_start"
        elif symbol == "FROM":
            frame.state = "from"
        else:
            raise GrammarViolation(f"bad token after item: {symbol!r}")

    def _on_agg_open(self, frame, symbol):
        frame.state = "agg_arg"

    def _on_agg_arg(self, frame, symbol):
        if symbol == "DISTINCT":
            frame.state = "agg_arg_nodistinct"
        elif symbol == IDENT:
            frame.state = "agg_ident"
        else:
            frame.state = "agg_star"

    def _on_agg_arg_nodistinct(self, frame, symbol):
        frame.state = "agg_ident" if symbol == IDENT else "agg_star"

    def _on_agg_ident(self, frame, symbol):
        if symbol == ".":
            frame.state = "agg_ident_dot"
        else:
            self._close_agg(frame)

    def _on_agg_ident_dot(self, frame, symbol):
        frame.state = "agg_ident_done"

    def _on_agg_ident_done(self, frame, symbol):
        self._close_agg(frame)

    def _on_agg_star(self, frame, symbol):
        self._close_agg(frame)

    def _close_agg(self, frame):
        origin, frame.agg_origin = frame.agg_origin, ""
        if origin == "pred":
            frame.state = "having_agg_done"
        elif origin == "order":
            frame.state = "order_done"
        else:
            frame.state = "item_ident_done"

    def _on_from(self, frame, symbol):
        frame.state = "from_table"

    def _on_from_table(self, frame, symbol):
        if symbol == ",":
            frame.state = "from"
        else:
            raise GrammarViolation(f"bad token after FROM table: {symbol!r}")

    def _on_pred_start(self, frame, symbol):
        if symbol == IDENT:
            frame.state = "pred_col"
        elif symbol == "NOT":
            frame.state = "pred_not"
        elif symbol == "EXISTS":
            frame.state = "exists_open"
        elif symbol == "(":
            self._stack.append(_Frame("group"))
        elif symbol in _AGG_KEYWORDS:
            frame.agg_origin = "pred"
            frame.state = "agg_open"
        else:
            raise GrammarViolation(f"bad predicate start {symbol!r}")

    def _on_pred_not(self, frame, symbol):
        if symbol == "EXISTS":
            frame.state = "exists_open"
        else:
            self._stack.append(_Frame("group"))

    def _on_pred_col(self, frame, symbol):
        if symbol == ".":
            frame.state = "pred_col_dot"
        else:
            self._after_pred_col(frame, symbol)

    def _on_pred_col_dot(self, frame, symbol):
        frame.state = "pred_col_done"

    def _on_pred_col_done(self, frame, symbol):
        self._after_pred_col(frame, symbol)

    def _after_pred_col(self, frame, symbol):
        if symbol == OP:
            frame.state = "pred_value"
        elif symbol == "BETWEEN":
            frame.state = "between_low"
        elif symbol == "IN":
            frame.state = "in_open"
        elif symbol == "LIKE":
            frame.state = "like_value"
        elif symbol == "NOT":
            frame.state = "pred_col_not"
        else:
            raise GrammarViolation(f"bad token after predicate column: {symbol!r}")

    def _on_pred_col_not(self, frame, symbol):
        if symbol == "BETWEEN":
            frame.state = "between_low"
        elif symbol == "IN":
            frame.state = "in_open"
        else:
            frame.state = "like_value"

    def _on_pred_value(self, frame, symbol):
        if symbol == "(":
            self._stack.append(_Frame("subquery"))
        elif symbol == IDENT:
            frame.state = "pred_value_ident"
        else:
            frame.state = "pred_done"

    def _on_pred_value_ident(self, frame, symbol):
        if symbol == ".":
            frame.state = "pred_value_ident_dot"
        else:
            self._on_pred_done(frame, symbol)

    def _on_pred_value_ident_dot(self, frame, symbol):
        frame.state = "pred_done"

    def _on_pred_done(self, frame, symbol):
        if symbol in ("AND", "OR"):
            frame.state = "pred_start"
        else:
            raise GrammarViolation(f"bad token after predicate: {symbol!r}")

    def _on_between_low(self, frame, symbol):
        frame.state = "between_and"

    def _on_between_and(self, frame, symbol):
        frame.state = "between_high"

    def _on_between_high(self, frame, symbol):
        frame.state = "pred_done"

    def _on_in_open(self, frame, symbol):
        frame.state = "in_first"

    def _on_in_first(self, frame, symbol):
        if symbol == "SELECT":
            frame.state = "pred_done"  # will be overwritten on pop
            sub = _Frame("subquery")
            sub.state = "post_select"
            self._stack.append(sub)
        else:
            frame.state = "in_value"

    def _on_in_value(self, frame, symbol):
        if symbol == ",":
            frame.state = "in_next"
        else:
            raise GrammarViolation(f"bad token in IN list: {symbol!r}")

    def _on_in_next(self, frame, symbol):
        frame.state = "in_value"

    def _on_like_value(self, frame, symbol):
        frame.state = "pred_done"

    def _on_exists_open(self, frame, symbol):
        self._stack.append(_Frame("subquery"))

    def _on_group(self, frame, symbol):
        frame.state = "group_col"

    def _on_group_col(self, frame, symbol):
        frame.state = "group_col_ident"

    def _on_group_col_ident(self, frame, symbol):
        if symbol == ".":
            frame.state = "group_col_dot"
        elif symbol == ",":
            frame.state = "group_col"
        else:
            raise GrammarViolation(f"bad token in GROUP BY: {symbol!r}")

    def _on_group_col_dot(self, frame, symbol):
        frame.state = "group_col_done"

    def _on_group_col_done(self, frame, symbol):
        if symbol == ",":
            frame.state = "group_col"
        else:
            raise GrammarViolation(f"bad token in GROUP BY: {symbol!r}")

    def _on_having_agg_done(self, frame, symbol):
        frame.state = "pred_value"

    def _on_order(self, frame, symbol):
        frame.state = "order_col"

    def _on_order_col(self, frame, symbol):
        if symbol in _AGG_KEYWORDS:
            frame.agg_origin = "order"
            frame.state = "agg_open"
        else:
            frame.state = "order_ident"

    def _on_order_ident(self, frame, symbol):
        if symbol == ".":
            frame.state = "order_ident_dot"
        elif symbol in ("DESC", "ASC"):
            frame.state = "order_final"
        elif symbol == ",":
            frame.state = "order_col"
        else:
            raise GrammarViolation(f"bad token in ORDER BY: {symbol!r}")

    def _on_order_ident_dot(self, frame, symbol):
        frame.state = "order_done"

    def _on_order_done(self, frame, symbol):
        if symbol in ("DESC", "ASC"):
            frame.state = "order_final"
        elif symbol == ",":
            frame.state = "order_col"
        else:
            raise GrammarViolation(f"bad token in ORDER BY: {symbol!r}")

    def _on_order_final(self, frame, symbol):
        if symbol == ",":
            frame.state = "order_col"
        else:
            raise GrammarViolation(f"bad token after ORDER item: {symbol!r}")

    def _on_limit(self, frame, symbol):
        frame.state = "limit_done"

    def _on_limit_done(self, frame, symbol):
        raise GrammarViolation(f"bad token after LIMIT: {symbol!r}")


class GrammarMask:
    """Caches vocab classification and produces next-token masks."""

    def __init__(self, vocab: Vocab) -> None:
        self._vocab = vocab
        self._symbols = [classify(t) for t in vocab.tokens]
        # Special tokens get impossible symbols so they're never allowed
        # except EOS, which maps to END.
        from repro.nlp.vocab import BOS, EOS, PAD, UNK

        for index, token in enumerate(vocab.tokens):
            if token == EOS:
                self._symbols[index] = END
            elif token in (PAD, BOS, UNK):
                self._symbols[index] = "__special__"

    def mask_for(self, decoded: list[str]) -> np.ndarray | None:
        """Boolean vocab mask for the next token after ``decoded``.

        Returns None (no constraint) if the prefix itself is invalid —
        defensive, should not happen when decoding under the mask.
        """
        automaton = SqlDecodingAutomaton()
        try:
            for token in decoded:
                automaton.advance(token)
        except GrammarViolation:
            return None
        allowed = automaton.allowed_symbols()
        return np.array([s in allowed for s in self._symbols])
