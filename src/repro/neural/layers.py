"""Neural network layers in pure numpy with manual backpropagation.

Everything the seq2seq translator needs: embeddings, a GRU cell, a
dense layer, and a softmax cross-entropy head.  Layers own their
parameters and gradient buffers; an optimizer (see
:mod:`repro.neural.optim`) updates them in place.

Shapes follow the convention ``(batch, features)`` per timestep; the
sequence loop lives in the model, not the layers.
"""

from __future__ import annotations

import numpy as np


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Layer:
    """Base: a named collection of parameters and matching gradients."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def add_param(self, name: str, value: np.ndarray) -> np.ndarray:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)
        return value

    def zero_grads(self) -> None:
        for grad in self.grads.values():
            grad.fill(0.0)


class Embedding(Layer):
    """Token-id -> vector lookup table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.add_param("W", rng.normal(0.0, 0.1, size=(vocab_size, dim)))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """(B,) or (B, T) int ids -> (..., dim) vectors."""
        return self.params["W"][ids]

    def backward(self, ids: np.ndarray, grad_out: np.ndarray) -> None:
        """Scatter-add gradients for the looked-up rows."""
        np.add.at(self.grads["W"], ids.reshape(-1), grad_out.reshape(-1, self.dim))

    def load_pretrained(self, vectors: np.ndarray, start_row: int = 0) -> None:
        """Overwrite rows with pre-trained vectors (GloVe-style init)."""
        rows = vectors.shape[0]
        self.params["W"][start_row : start_row + rows, : vectors.shape[1]] = vectors


class GRUCell(Layer):
    """A gated recurrent unit with manual forward/backward steps.

    Gate layout in the packed matrices is ``[reset | update | new]``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.add_param("Wx", glorot(rng, input_dim, 3 * hidden_dim))
        self.add_param("Wh", glorot(rng, hidden_dim, 3 * hidden_dim))
        self.add_param("b", np.zeros(3 * hidden_dim))

    def forward(self, x: np.ndarray, h_prev: np.ndarray):
        """One step: (B, in), (B, h) -> (B, h) plus a backward cache."""
        H = self.hidden_dim
        xg = x @ self.params["Wx"] + self.params["b"]
        hg = h_prev @ self.params["Wh"]
        r = sigmoid(xg[:, :H] + hg[:, :H])
        z = sigmoid(xg[:, H : 2 * H] + hg[:, H : 2 * H])
        n = np.tanh(xg[:, 2 * H :] + r * hg[:, 2 * H :])
        h_new = (1.0 - z) * n + z * h_prev
        cache = (x, h_prev, hg, r, z, n)
        return h_new, cache

    def backward(self, grad_h_new: np.ndarray, cache):
        """One step back: returns (grad_x, grad_h_prev); accumulates grads."""
        x, h_prev, hg, r, z, n = cache
        H = self.hidden_dim
        dn = grad_h_new * (1.0 - z)
        dz = grad_h_new * (h_prev - n)
        dh_prev = grad_h_new * z

        dn_pre = dn * (1.0 - n * n)
        dr = dn_pre * hg[:, 2 * H :]
        dhg_n = dn_pre * r
        dr_pre = dr * r * (1.0 - r)
        dz_pre = dz * z * (1.0 - z)

        dxg = np.concatenate([dr_pre, dz_pre, dn_pre], axis=1)
        dhg = np.concatenate([dr_pre, dz_pre, dhg_n], axis=1)

        self.grads["Wx"] += x.T @ dxg
        self.grads["Wh"] += h_prev.T @ dhg
        self.grads["b"] += dxg.sum(axis=0)

        grad_x = dxg @ self.params["Wx"].T
        dh_prev = dh_prev + dhg @ self.params["Wh"].T
        return grad_x, dh_prev


class Dense(Layer):
    """Affine layer with optional tanh activation."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        rng: np.random.Generator,
        activation: str = "linear",
    ) -> None:
        super().__init__()
        if activation not in ("linear", "tanh"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.activation = activation
        self.add_param("W", glorot(rng, input_dim, output_dim))
        self.add_param("b", np.zeros(output_dim))

    def forward(self, x: np.ndarray):
        z = x @ self.params["W"] + self.params["b"]
        if self.activation == "tanh":
            out = np.tanh(z)
            return out, (x, out)
        return z, (x, None)

    def backward(self, grad_out: np.ndarray, cache):
        x, activated = cache
        if self.activation == "tanh":
            grad_out = grad_out * (1.0 - activated * activated)
        self.grads["W"] += x.T @ grad_out
        self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


def cross_entropy(logits: np.ndarray, targets: np.ndarray, mask: np.ndarray):
    """Masked token-level cross entropy.

    ``logits`` (B, V), ``targets`` (B,), ``mask`` (B,) of 0/1.
    Returns (summed loss, gradient wrt logits).
    """
    probs = softmax(logits, axis=-1)
    batch = np.arange(len(targets))
    picked = np.clip(probs[batch, targets], 1e-12, None)
    loss = float(-(np.log(picked) * mask).sum())
    grad = probs
    grad[batch, targets] -= 1.0
    grad *= mask[:, None]
    return loss, grad
