"""A deterministic retrieval baseline translator.

Nearest-neighbour translation: return the SQL of the training pair
whose NL is most similar (token-level Jaccard, tie-broken by insertion
order).  It trains instantly, which makes it the workhorse for unit
tests of the pipeline/runtime plumbing, and serves as a sanity-check
baseline in the benchmarks — a neural model that cannot beat retrieval
has learned nothing.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.templates import TrainingPair
from repro.errors import ModelError
from repro.neural.base import TranslationModel
from repro.nlp.tokenizer import tokenize


class RetrievalModel(TranslationModel):
    """Jaccard nearest-neighbour NL -> SQL lookup."""

    def __init__(self) -> None:
        self._examples: list[tuple[frozenset[str], str, str]] = []
        self._exact: dict[str, str] = {}

    def fit(self, pairs: Sequence[TrainingPair], **kwargs) -> None:
        if kwargs:
            raise TypeError(f"unexpected fit arguments: {sorted(kwargs)}")
        self._examples = []
        self._exact = {}
        for pair in pairs:
            tokens = frozenset(tokenize(pair.nl))
            self._examples.append((tokens, pair.nl, pair.sql_text))
            self._exact.setdefault(pair.nl, pair.sql_text)
        if not self._examples:
            raise ModelError("cannot fit on an empty training set")

    def translate(self, nl: str) -> str | None:
        if not self._examples:
            raise ModelError("translate called before fit")
        exact = self._exact.get(nl)
        if exact is not None:
            return exact
        query_tokens = frozenset(tokenize(nl))
        if not query_tokens:
            return None
        best_score = -1.0
        best_sql: str | None = None
        for tokens, _nl, sql in self._examples:
            union = len(query_tokens | tokens)
            if union == 0:
                continue
            score = len(query_tokens & tokens) / union
            if score > best_score:
                best_score = score
                best_sql = sql
        return best_sql
