"""The shared diagnostic model of the static-analysis framework.

Every analysis pass — SQL semantics, template lint, schema lint, corpus
audit — reports findings as :class:`Diagnostic` values carrying a
**stable code** (``L###``), a severity, an optional source span, and a
fix hint.  Codes, not messages, are the machine contract (mirroring the
``E_*`` taxonomy of :mod:`repro.errors`): the mutation test suite, the
pipeline's pre-generation gate, and the ``repro lint`` JSON output all
match on codes, so message wording can evolve freely.

Code ranges by pass:

* ``L1xx`` — SQL semantic analysis against a schema;
* ``L2xx`` — seed-template lint;
* ``L3xx`` — corpus audit;
* ``L4xx`` — schema lint;
* ``L5xx`` — backend schema introspection (:mod:`repro.adapters`);
* ``L6xx`` — canonicalization & equivalence (:mod:`repro.analysis.equivalence`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.sql.ast import Span


class Severity(enum.Enum):
    """How bad a finding is; orders ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.INFO: 0}


# ----------------------------------------------------------------------
# The code registry
# ----------------------------------------------------------------------

#: code -> (default severity, one-line description).
LINT_CODES: dict[str, tuple[Severity, str]] = {
    # SQL semantic analysis --------------------------------------------
    "L101": (Severity.ERROR, "unknown table"),
    "L102": (Severity.ERROR, "unknown column"),
    "L103": (Severity.ERROR, "ambiguous column reference"),
    "L104": (Severity.ERROR, "referenced table is not in the FROM scope"),
    "L105": (Severity.ERROR, "ordering comparison on a text column"),
    "L106": (Severity.ERROR, "literal type clashes with the column type"),
    "L107": (Severity.ERROR, "aggregate used in WHERE"),
    "L108": (Severity.ERROR, "non-grouped select item in a grouped query"),
    "L109": (Severity.ERROR, "HAVING without GROUP BY"),
    "L110": (Severity.ERROR, "FROM tables are not connected by foreign keys"),
    "L111": (Severity.ERROR, "BETWEEN on a text column"),
    "L112": (Severity.ERROR, "SUM/AVG on a non-numeric column"),
    "L113": (Severity.ERROR, "LIKE on a non-text column"),
    "L114": (Severity.ERROR, "placeholder matches no schema element"),
    # Template lint ----------------------------------------------------
    "L201": (Severity.ERROR, "NL pattern uses a slot the builder never supplies"),
    "L202": (Severity.ERROR, "NL and SQL placeholders disagree"),
    "L203": (Severity.WARNING, "template has no valid instantiation on a schema"),
    "L204": (Severity.WARNING, "template has no valid instantiation on any schema"),
    "L205": (Severity.ERROR, "duplicate NL pattern signature"),
    "L206": (Severity.ERROR, "template names an unknown SQL kind"),
    # Corpus audit -----------------------------------------------------
    "L301": (Severity.ERROR, "corpus SQL fails to parse"),
    "L302": (Severity.ERROR, "corpus pair has an unrestorable placeholder"),
    "L303": (Severity.ERROR, "malformed corpus record"),
    "L304": (Severity.WARNING, "duplicate corpus pair"),
    # Schema lint ------------------------------------------------------
    "L401": (Severity.ERROR, "foreign key joins differently-typed columns"),
    "L402": (Severity.WARNING, "foreign key target is not a primary key"),
    "L403": (Severity.WARNING, "ambiguous NL phrase within a table"),
    "L404": (Severity.WARNING, "table unreachable in the join graph"),
    # Backend introspection --------------------------------------------
    "L501": (Severity.ERROR, "introspected identifier is not usable in the schema model"),
    "L502": (Severity.WARNING, "identifier yields no NL-splittable annotation"),
    "L503": (Severity.ERROR, "stored values clash with the declared column type"),
    "L504": (Severity.WARNING, "composite foreign key cannot be represented; edge dropped"),
    "L505": (Severity.WARNING, "unrecognized declared type mapped by affinity"),
    "L506": (Severity.ERROR, "database contains no introspectable tables"),
    # Canonicalization & equivalence -----------------------------------
    "L601": (Severity.INFO, "queries proven equivalent by canonical form"),
    "L602": (Severity.ERROR, "differential counterexample: results diverge"),
    "L603": (Severity.WARNING, "equivalence undecided: probes agree but prove nothing"),
    "L604": (Severity.WARNING, "differential probe skipped: query failed to execute"),
    "L605": (Severity.INFO, "canonicalization rewrote the query"),
    "L606": (Severity.ERROR, "unresolvable placeholder blocks differential execution"),
}


@dataclass(frozen=True)
class FixHint:
    """Machine-readable repair key attached to a diagnostic.

    Where ``Diagnostic.hint`` is prose for a human, a ``FixHint`` names
    the offending identifiers so an automated repairer (see
    :mod:`repro.serving.repair`) can act without parsing messages:
    ``kind`` is a stable strategy key, ``subject`` the broken
    identifier, ``table`` its qualifier/owner when known, and
    ``alternatives`` any candidate replacements the pass already
    computed (e.g. the owner tables of an ambiguous column).
    """

    kind: str
    subject: str = ""
    table: str = ""
    alternatives: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        record: dict = {"kind": self.kind}
        if self.subject:
            record["subject"] = self.subject
        if self.table:
            record["table"] = self.table
        if self.alternatives:
            record["alternatives"] = list(self.alternatives)
        return record


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    ``location`` names the analyzed artifact (``"patients:join_select-00"``,
    ``"corpus.jsonl:17"``); ``span`` is the character range inside the
    analyzed SQL text, when the finding anchors to one.  ``fix`` is the
    optional machine-readable counterpart of the prose ``hint``.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    span: Span | None = None
    hint: str = ""
    fix: FixHint | None = None

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"[{self.code}] {where}{self.message}"

    def to_dict(self) -> dict:
        record: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
        }
        if self.span is not None:
            record["span"] = [self.span.start, self.span.end]
        if self.hint:
            record["hint"] = self.hint
        if self.fix is not None:
            record["fix"] = self.fix.to_dict()
        return record


def make(
    code: str,
    message: str,
    location: str = "",
    span: Span | None = None,
    hint: str = "",
    severity: Severity | None = None,
    fix: FixHint | None = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from :data:`LINT_CODES`."""
    try:
        default_severity, _description = LINT_CODES[code]
    except KeyError:
        raise ValueError(f"unknown lint code {code!r}") from None
    return Diagnostic(
        code=code,
        severity=severity or default_severity,
        message=message,
        location=location,
        span=span,
        hint=hint,
        fix=fix,
    )


@dataclass
class LintReport:
    """The collected findings of one or more analysis passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether the report is free of errors (warnings allowed)."""
        return not self.errors

    def has_findings(self, strict: bool = False) -> bool:
        """Whether anything actionable was found.

        Non-strict counts errors only; ``strict`` counts warnings too.
        """
        if strict:
            return bool(self.errors or self.warnings)
        return bool(self.errors)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def counts(self) -> dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "total": len(self.diagnostics),
        }

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered most severe first, then by code/location."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.code, d.location, d.message),
        )

    def to_json(self) -> str:
        payload = {
            "summary": {**self.counts(), "by_code": self.by_code()},
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }
        return json.dumps(payload, indent=2, sort_keys=False)

    def format_text(self) -> str:
        if not self.diagnostics:
            return "clean: no findings"
        lines = []
        for diag in self.sorted():
            lines.append(f"{diag.severity.value:<7} {diag}")
            if diag.hint:
                lines.append(f"        hint: {diag.hint}")
        counts = self.counts()
        lines.append(
            f"{counts['total']} finding(s): {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s)"
        )
        return "\n".join(lines)
