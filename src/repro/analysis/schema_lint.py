"""Pass 2b: lint a schema's structure and NL annotations.

Schemas are the pipeline's only required input (§1), so defects here
poison everything downstream: a foreign key joining incompatible types
produces join conditions that never match, an FK target that is not a
primary key breaks the join-path semantics the ``@JOIN`` expansion
assumes, ambiguous NL phrases make generated questions unanswerable,
and a table disconnected from the join graph can never participate in
join templates.  Findings use the ``L4xx`` code range.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, make
from repro.schema.schema import Schema


def lint_schema(schema: Schema) -> list[Diagnostic]:
    """Structural and annotation diagnostics for one schema."""
    diagnostics: list[Diagnostic] = []

    for fk in schema.foreign_keys:
        source = schema.column(fk.table, fk.column)
        target = schema.column(fk.ref_table, fk.ref_column)
        if source.ctype is not target.ctype:
            diagnostics.append(
                make(
                    "L401",
                    f"foreign key {fk} joins {source.ctype.value} to "
                    f"{target.ctype.value}",
                    location=schema.name,
                    hint="join conditions on mismatched types never match",
                )
            )
        if not target.primary_key:
            diagnostics.append(
                make(
                    "L402",
                    f"foreign key {fk} targets non-primary-key column "
                    f"{fk.ref_table}.{fk.ref_column}",
                    location=schema.name,
                )
            )

    for table in schema.tables:
        phrases: dict[str, list[str]] = {}
        for column in table.columns:
            for phrase in column.nl_phrases:
                phrases.setdefault(phrase.lower(), []).append(column.name)
        for phrase, owners in phrases.items():
            if len(owners) > 1:
                diagnostics.append(
                    make(
                        "L403",
                        f"phrase {phrase!r} verbalizes columns "
                        f"{', '.join(owners)} of table {table.name!r}",
                        location=schema.name,
                        hint="generated questions using the phrase are "
                        "ambiguous; pick distinct annotations",
                    )
                )

    if len(schema.tables) > 1:
        components = list(nx.connected_components(schema.join_graph))
        if len(components) > 1:
            main = max(components, key=len)
            for component in components:
                if component is main:
                    continue
                for name in sorted(component):
                    diagnostics.append(
                        make(
                            "L404",
                            f"table {name!r} is unreachable from "
                            f"{', '.join(sorted(main))} in the join graph",
                            location=schema.name,
                            hint="add a foreign key or expect join "
                            "templates to skip the table",
                        )
                    )
    return diagnostics
