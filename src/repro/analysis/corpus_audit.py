"""Pass 3: audit a generated corpus file (JSONL or TSV), streaming.

Re-validates what the synthesis pipeline promises: every pair's SQL
parses, passes semantic analysis against its schema, and every SQL-side
constant placeholder is restorable from the NL side (the runtime's
parameter handler substitutes user constants back into model output,
§4.2 — a placeholder the NL never mentions can never be restored).

The auditor reads one line at a time, so corpora far larger than
memory can be checked; diagnostics carry ``path:line`` locations.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.analysis.sql_semantics import analyze_query
from repro.analysis.template_lint import placeholder_mismatch
from repro.errors import SqlError
from repro.schema.schema import Schema
from repro.sql.parser import parse

#: Findings stop accumulating past this many lines with problems, so a
#: systematically broken corpus reports a bounded sample, not millions
#: of repeats of the same defect.
MAX_DIAGNOSTICS = 500


def audit_corpus(
    path: str | Path,
    schemas: dict[str, Schema] | None = None,
    default_schema: Schema | None = None,
    fmt: str | None = None,
    max_diagnostics: int = MAX_DIAGNOSTICS,
) -> list[Diagnostic]:
    """Audit the corpus file at ``path``.

    ``schemas`` maps schema names (the ``schema`` field of JSONL
    records) to :class:`Schema` objects; unlisted names fall back to
    the built-in catalog, then to ``default_schema``.  TSV rows carry
    no schema name, so TSV audits require ``default_schema``.  ``fmt``
    overrides the extension-based format detection (``jsonl``/``tsv``).
    """
    path = Path(path)
    if fmt is None:
        fmt = "tsv" if path.suffix.lower() == ".tsv" else "jsonl"
    if fmt not in ("jsonl", "tsv"):
        raise ValueError(f"unknown corpus format {fmt!r}")
    schemas = dict(schemas or {})
    unknown_schemas: set[str] = set()
    diagnostics: list[Diagnostic] = []
    seen_pairs: set[tuple[str, str]] = set()

    def resolve_schema(name: str, location: str) -> Schema | None:
        if name in schemas:
            return schemas[name]
        from repro.schema.catalog import SCHEMA_FACTORIES

        if name in SCHEMA_FACTORIES:
            schemas[name] = SCHEMA_FACTORIES[name]()
            return schemas[name]
        if default_schema is not None:
            return default_schema
        if name not in unknown_schemas:
            unknown_schemas.add(name)
            diagnostics.append(
                make(
                    "L303",
                    f"unknown schema {name!r}; semantic analysis skipped "
                    f"for its pairs",
                    location=location,
                    severity=Severity.WARNING,
                )
            )
        return None

    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if len(diagnostics) >= max_diagnostics:
                diagnostics.append(
                    make(
                        "L303",
                        f"audit stopped at line {line_number}: "
                        f"{max_diagnostics} findings reached",
                        location=str(path),
                        severity=Severity.WARNING,
                    )
                )
                break
            line = line.rstrip("\n")
            if not line.strip():
                continue
            location = f"{path}:{line_number}"
            if fmt == "jsonl":
                try:
                    record = json.loads(line)
                    nl = record["nl"]
                    sql_text = record["sql"]
                    schema_name = record.get("schema", "")
                except (KeyError, ValueError, TypeError) as exc:
                    diagnostics.append(
                        make("L303", f"invalid JSONL record: {exc}", location=location)
                    )
                    continue
            else:
                columns = line.split("\t")
                if len(columns) != 2:
                    diagnostics.append(
                        make(
                            "L303",
                            f"expected 2 tab-separated columns, "
                            f"found {len(columns)}",
                            location=location,
                        )
                    )
                    continue
                nl, sql_text = columns
                schema_name = ""

            try:
                query = parse(sql_text)
            except SqlError as exc:
                diagnostics.append(
                    make(
                        "L301",
                        f"SQL does not parse: {exc}",
                        location=location,
                        hint="the generator should never emit unparseable "
                        "SQL; suspect file corruption or a foreign tool",
                    )
                )
                continue

            key = (nl, sql_text)
            if key in seen_pairs:
                diagnostics.append(
                    make(
                        "L304",
                        f"duplicate pair (first seen earlier): {nl!r}",
                        location=location,
                    )
                )
            seen_pairs.add(key)

            sql_names = [p.name for p in query.placeholders()]
            sql_only, nl_only = placeholder_mismatch(nl, sql_names)
            if sql_only:
                diagnostics.append(
                    make(
                        "L302",
                        f"SQL placeholders {sorted(set(sql_only))} never "
                        f"appear in the NL {nl!r}",
                        location=location,
                        hint="the runtime cannot restore a constant the "
                        "question never mentions",
                    )
                )
            if nl_only:
                diagnostics.append(
                    make(
                        "L302",
                        f"NL placeholders {sorted(set(nl_only))} have no "
                        f"SQL counterpart",
                        location=location,
                        severity=Severity.WARNING,
                    )
                )

            schema = (
                resolve_schema(schema_name, location)
                if schema_name
                else default_schema
            )
            if schema is not None:
                diagnostics.extend(
                    analyze_query(query, schema, location=location)
                )
    return diagnostics
