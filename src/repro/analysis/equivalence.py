"""Three-verdict SQL equivalence oracle over canonical forms.

The verdict lattice is deliberately asymmetric (the soundness
contract):

* ``EQUIVALENT`` — *proved*, and only ever proved, by canonical-form
  equality (:func:`repro.sql.canonical.canonicalize`).  Differential
  agreement is never sufficient.
* ``DISTINCT`` — *disproved* by a differential counterexample: a
  seeded randomized database over the schema on which the two queries
  produce different result values.
* ``UNKNOWN`` — everything else: probes agree but prove nothing, or
  the queries could not be executed.  ``UNKNOWN`` is **never upgraded
  to EQUIVALENT** by any caller; consumers that need a safe default
  must treat it as "not equivalent".

Every outcome is reported as ``L6xx`` diagnostics (PR 5 contract —
stable codes, spans where available, machine-readable fix hints), so
``repro canonical`` and the eval harness surface the oracle's
reasoning, not just its verdict:

* ``L601`` (info) — proven equivalent by canonical form;
* ``L602`` (error) — differential counterexample found;
* ``L603`` (warning) — undecided: all probes agreed, no proof;
* ``L604`` (warning) — a probe was skipped (execution failed);
* ``L605`` (info) — canonicalization rewrote a query (its canonical
  form differs from its normalized form);
* ``L606`` (error) — a placeholder could not be bound to any database
  constant, blocking differential execution.

Differential probes reuse the PR 3/6/7 machinery: databases come from
:func:`repro.db.populate` at fixed seeds, execution goes through the
planned :class:`~repro.db.planner.ExecutorSession`, and placeholders
are bound to constants that actually occur in the probe database (the
same binding rule as the executor differential suite), so both queries
see identical constants for identically-named slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, FixHint, LintReport, make
from repro.errors import ReproError
from repro.sql.ast import Query
from repro.sql.canonical import canonical_text
from repro.sql.normalize import canonical_sql
from repro.sql.printer import to_sql

#: The three verdicts.  ``EQUIVALENT`` requires a canonical-form proof.
EQUIVALENT = "EQUIVALENT"
DISTINCT = "DISTINCT"
UNKNOWN = "UNKNOWN"

VERDICTS = (EQUIVALENT, DISTINCT, UNKNOWN)


@dataclass(frozen=True)
class ProbeOutcome:
    """One differential probe: a (schema, seed) database comparison."""

    seed: int
    executed: bool
    agreed: bool | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        record: dict = {"seed": self.seed, "executed": self.executed}
        if self.agreed is not None:
            record["agreed"] = self.agreed
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class EquivalenceResult:
    """Verdict plus the evidence trail that produced it."""

    verdict: str
    left_canonical: str
    right_canonical: str
    report: LintReport = field(default_factory=LintReport)
    probes: list[ProbeOutcome] = field(default_factory=list)

    @property
    def is_equivalent(self) -> bool:
        return self.verdict == EQUIVALENT

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "left_canonical": self.left_canonical,
            "right_canonical": self.right_canonical,
            "probes": [p.to_dict() for p in self.probes],
            "diagnostics": [d.to_dict() for d in self.report.sorted()],
        }


class _ConstantBinder:
    """Duck-typed placeholder resolver: slots → constants in the DB."""

    def __init__(self, database) -> None:
        self._database = database

    def resolve(self, placeholder):
        schema = self._database.schema
        column = placeholder.column
        table = placeholder.table
        if table is None or table not in schema:
            candidates = schema.tables_with_column(column)
            if not candidates:
                return None
            table = candidates[0].name
        if column not in schema.table(table):
            return None
        values = [
            v
            for v in self._database.column_values(table, column)
            if v is not None
        ]
        return values[0] if values else None


class EquivalenceOracle:
    """Canonical-form proof first, bounded differential testing second.

    Parameters
    ----------
    schema:
        The schema both queries are interpreted against.
    databases:
        Optional pre-built ``repro.db.Database`` probe arms; when
        omitted, ``populate(schema, rows_per_table, seed)`` builds one
        per entry in ``seeds`` lazily (and caches it on the oracle).
    seeds / rows_per_table:
        Differential probe budget — the same seeds the executor
        differential suite uses by default.
    """

    def __init__(
        self,
        schema,
        databases=None,
        seeds: tuple[int, ...] = (0, 17),
        rows_per_table: int = 25,
    ) -> None:
        self.schema = schema
        self.seeds = tuple(seeds)
        self.rows_per_table = rows_per_table
        self._databases = list(databases) if databases is not None else None

    # -- probe arms ----------------------------------------------------

    def _probe_databases(self) -> list:
        if self._databases is None:
            from repro.db import populate

            self._databases = [
                populate(self.schema, rows_per_table=self.rows_per_table, seed=seed)
                for seed in self.seeds
            ]
        return self._databases

    # -- the oracle ----------------------------------------------------

    def check(self, left: Query, right: Query, location: str = "") -> EquivalenceResult:
        """Decide ``left`` vs ``right``; never raises on query trouble."""
        report = LintReport()
        left_canonical = canonical_text(left, self.schema)
        right_canonical = canonical_text(right, self.schema)
        for side, query, canonical in (
            ("left", left, left_canonical),
            ("right", right, right_canonical),
        ):
            if canonical != canonical_sql(query):
                report.extend(
                    [
                        make(
                            "L605",
                            f"{side} query was rewritten by canonicalization",
                            location=location,
                            span=query.span,
                            hint=f"canonical form: {canonical}",
                            fix=FixHint(kind="use_canonical_form", subject=canonical),
                        )
                    ]
                )

        result = EquivalenceResult(UNKNOWN, left_canonical, right_canonical, report)
        if left_canonical == right_canonical:
            result.verdict = EQUIVALENT
            report.extend(
                [
                    make(
                        "L601",
                        "queries share one canonical form",
                        location=location,
                        span=left.span,
                        hint=left_canonical,
                    )
                ]
            )
            return result

        self._differential(left, right, result, location)
        return result

    def _differential(
        self, left: Query, right: Query, result: EquivalenceResult, location: str
    ) -> None:
        """Probe for a counterexample; fills verdict/probes/diagnostics."""
        report = result.report
        order_sensitive = bool(left.order_by) and bool(right.order_by)
        agreed_probes = 0
        for index, database in enumerate(self._probe_databases()):
            seed = self.seeds[index] if index < len(self.seeds) else index
            bound = []
            blocked: Diagnostic | None = None
            for side, query in (("left", left), ("right", right)):
                query, blocked = self._bind(query, database, side, location)
                if blocked is not None:
                    break
                bound.append(query)
            if blocked is not None:
                report.extend([blocked])
                result.probes.append(
                    ProbeOutcome(seed, executed=False, detail=blocked.message)
                )
                # An unbindable placeholder blocks *every* probe arm.
                result.verdict = UNKNOWN
                return
            rows = []
            failure = ""
            for query in bound:
                try:
                    rows.append(self._execute(query, database))
                except ReproError as exc:
                    failure = str(exc)
                    break
            if failure:
                report.extend(
                    [
                        make(
                            "L604",
                            f"probe seed={seed} skipped: {failure}",
                            location=location,
                            hint="the query is outside the executable subset "
                            "on this probe database",
                        )
                    ]
                )
                result.probes.append(
                    ProbeOutcome(seed, executed=False, detail=failure)
                )
                continue
            if _results_match(rows[0], rows[1], order_sensitive):
                agreed_probes += 1
                result.probes.append(ProbeOutcome(seed, executed=True, agreed=True))
                continue
            result.verdict = DISTINCT
            result.probes.append(
                ProbeOutcome(
                    seed,
                    executed=True,
                    agreed=False,
                    detail=f"{len(rows[0])} vs {len(rows[1])} result rows",
                )
            )
            report.extend(
                [
                    make(
                        "L602",
                        f"results diverge on probe database seed={seed}",
                        location=location,
                        span=right.span,
                        hint="the queries are not equivalent; inspect the "
                        "canonical forms in this report",
                        fix=FixHint(
                            kind="differential_counterexample",
                            subject=str(seed),
                        ),
                    )
                ]
            )
            return
        result.verdict = UNKNOWN
        if agreed_probes:
            report.extend(
                [
                    make(
                        "L603",
                        f"{agreed_probes} probe(s) agree but equivalence "
                        "remains unproven",
                        location=location,
                        hint="agreement on sample databases is evidence, "
                        "not proof; UNKNOWN must not be treated as EQUIVALENT",
                    )
                ]
            )

    def _bind(self, query: Query, database, side: str, location: str):
        """Bind placeholders to database constants; diagnostic on failure."""
        if not query.placeholders():
            return query, None
        from repro.runtime.postprocess import _transform_query

        binder = _ConstantBinder(database)
        bound = _transform_query(query, binder)
        unresolved = bound.placeholders()
        if unresolved:
            names = ", ".join(sorted({"@" + p.name for p in unresolved}))
            return bound, make(
                "L606",
                f"{side} query has unresolvable placeholder(s) {names}",
                location=location,
                span=unresolved[0].span,
                hint="no probe constant exists for this slot; bind it "
                "explicitly before asking for a differential verdict",
                fix=FixHint(kind="bind_placeholder", subject=unresolved[0].name),
            )
        return bound, None

    def _execute(self, query: Query, database):
        from repro.db.planner import execute_planned

        return execute_planned(query, database)


def check_equivalence(
    left: Query,
    right: Query,
    schema,
    databases=None,
    seeds: tuple[int, ...] = (0, 17),
    rows_per_table: int = 25,
) -> EquivalenceResult:
    """One-shot :class:`EquivalenceOracle` convenience wrapper."""
    oracle = EquivalenceOracle(
        schema, databases=databases, seeds=seeds, rows_per_table=rows_per_table
    )
    return oracle.check(left, right)


def _results_match(left_rows, right_rows, order_sensitive: bool) -> bool:
    """Result-value comparison (column labels excluded on purpose)."""
    left_values = [tuple(row.values()) for row in left_rows]
    right_values = [tuple(row.values()) for row in right_rows]
    if order_sensitive:
        return left_values == right_values
    return sorted(left_values, key=repr) == sorted(right_values, key=repr)


__all__ = [
    "EQUIVALENT",
    "DISTINCT",
    "UNKNOWN",
    "VERDICTS",
    "EquivalenceOracle",
    "EquivalenceResult",
    "ProbeOutcome",
    "check_equivalence",
]
