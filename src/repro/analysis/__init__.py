"""Static semantic analysis and lint framework (``repro lint``).

A multi-pass analyzer that turns DBPal's runtime failure modes —
miss-streak fast-fails, quarantined shards, silently skipped pairs —
into actionable pre-generation diagnostics with stable ``L###`` codes:

* :func:`analyze_query` — SQL semantic analysis against a schema;
* :func:`lint_templates` — seed-template lint over a schema set;
* :func:`lint_schema` — schema structure / annotation lint;
* :func:`audit_corpus` — streaming audit of a generated corpus file;
* :func:`lint_pipeline_inputs` — the combined schema + template pass
  used by :class:`~repro.core.pipeline.TrainingPipeline`'s
  pre-generation gate and the ``repro lint`` CLI.

See DESIGN.md for the pass architecture and the full code table.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.corpus_audit import audit_corpus
from repro.analysis.diagnostics import (
    LINT_CODES,
    Diagnostic,
    FixHint,
    LintReport,
    Severity,
    make,
)
from repro.analysis.equivalence import (
    DISTINCT,
    EQUIVALENT,
    UNKNOWN,
    EquivalenceOracle,
    EquivalenceResult,
    check_equivalence,
)
from repro.analysis.schema_lint import lint_schema
from repro.analysis.sql_semantics import analyze_query, analyze_sql
from repro.analysis.template_lint import (
    explain_dead_template,
    lint_templates,
    placeholder_mismatch,
    probe_builder,
)
from repro.core.config import GenerationConfig
from repro.core.templates import SeedTemplate
from repro.schema.schema import Schema

#: Memo of combined reports keyed by input fingerprint: test suites and
#: batch jobs build many pipelines over the same schemas/templates, and
#: the gate must not re-probe every builder each time.
_REPORT_MEMO: dict[str, LintReport] = {}
_REPORT_MEMO_CAP = 64


def _schema_fingerprint(schema: Schema) -> str:
    tables = ";".join(
        "{}({})".format(
            table.name,
            ",".join(
                f"{c.name}:{c.ctype.value}:{int(c.primary_key)}"
                for c in table.columns
            ),
        )
        for table in schema.tables
    )
    fks = ";".join(str(fk) for fk in schema.foreign_keys)
    return f"{schema.name}|{tables}|{fks}"


def _fingerprint(
    schemas: Sequence[Schema],
    templates: Sequence[SeedTemplate],
    config: GenerationConfig | None,
) -> str:
    parts = [_schema_fingerprint(s) for s in schemas]
    parts.extend(
        f"{t.tid}|{t.sql_kind}|{t.nl_pattern}" for t in templates
    )
    if config is not None:
        parts.append(repr(sorted(config.to_dict().items())))
    return "\x1e".join(parts)


def lint_pipeline_inputs(
    schemas: Sequence[Schema],
    templates: Sequence[SeedTemplate],
    config: GenerationConfig | None = None,
) -> LintReport:
    """Schema lint + template lint over a pipeline's inputs (memoized).

    This is the pre-generation gate: :class:`TrainingPipeline` refuses
    to synthesize when the report has errors, and logs its warnings.
    """
    key = _fingerprint(schemas, templates, config)
    cached = _REPORT_MEMO.get(key)
    if cached is not None:
        return cached
    report = LintReport()
    for schema in schemas:
        report.extend(lint_schema(schema))
    report.extend(lint_templates(schemas, templates, config=config))
    if len(_REPORT_MEMO) >= _REPORT_MEMO_CAP:
        _REPORT_MEMO.clear()
    _REPORT_MEMO[key] = report
    return report


__all__ = [
    "DISTINCT",
    "Diagnostic",
    "EQUIVALENT",
    "EquivalenceOracle",
    "EquivalenceResult",
    "FixHint",
    "LINT_CODES",
    "LintReport",
    "Severity",
    "UNKNOWN",
    "analyze_query",
    "check_equivalence",
    "analyze_sql",
    "audit_corpus",
    "explain_dead_template",
    "lint_pipeline_inputs",
    "lint_schema",
    "lint_templates",
    "make",
    "placeholder_mismatch",
    "probe_builder",
]
