"""Pass 1: semantic analysis of a parsed SQL query against a schema.

Resolves every table and column reference, type-checks predicates and
comparatives, validates aggregate placement, checks that multi-table
FROM clauses (including the ``@JOIN`` placeholder form, §5.1) are
connected in the foreign-key graph, and verifies that every constant
placeholder names a real schema element.  Findings use the ``L1xx``
range of :data:`repro.analysis.diagnostics.LINT_CODES`.

Subqueries are analyzed recursively, each level with its own FROM
scope (the SQL subset has no correlated references).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, FixHint, make
from repro.errors import SchemaError
from repro.schema.column import Column, ColumnType
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    AggFunc,
    Aggregate,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Placeholder,
    Predicate,
    Query,
    Span,
    Star,
)

#: Comparison operators that require an ordered (non-text) domain.
_ORDERING_OPS = frozenset((CompOp.LT, CompOp.LE, CompOp.GT, CompOp.GE))

#: Placeholder names with no schema binding (generic numeric constants).
_GENERIC_PLACEHOLDERS = frozenset(("num",))

#: Dotted-placeholder suffixes of the BETWEEN bound scheme (``@AGE.LOW``).
_BOUND_SUFFIXES = frozenset(("low", "high"))


def analyze_query(
    query: Query, schema: Schema, location: str = ""
) -> list[Diagnostic]:
    """Semantic diagnostics for ``query`` resolved against ``schema``."""
    analyzer = _Analyzer(schema, location)
    analyzer.check(query)
    return analyzer.diagnostics


def analyze_sql(sql: str, schema: Schema, location: str = "") -> list[Diagnostic]:
    """Parse ``sql`` and analyze it; a parse failure raises ``SqlError``."""
    from repro.sql.parser import parse

    return analyze_query(parse(sql), schema, location=location)


class _Analyzer:
    def __init__(self, schema: Schema, location: str) -> None:
        self.schema = schema
        self.location = location
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        span: Span | None = None,
        hint: str = "",
        fix: FixHint | None = None,
    ) -> None:
        self.diagnostics.append(
            make(code, message, location=self.location, span=span, hint=hint, fix=fix)
        )

    # ------------------------------------------------------------------

    def check(self, query: Query) -> None:
        scope = self._resolve_scope(query)
        if scope is not None:
            self._check_select(query, scope)
            self._check_grouping(query, scope)
            if query.where is not None:
                self._check_predicate(query.where, scope, in_where=True)
            if query.having is not None:
                self._check_predicate(query.having, scope, in_where=False)
            for item in query.order_by:
                if isinstance(item.expr, ColumnRef):
                    self._resolve(item.expr, scope)
                else:
                    self._check_aggregate(item.expr, scope)
        for sub in query.walk_subqueries():
            self.check(sub)

    # -- scope ----------------------------------------------------------

    def _resolve_scope(self, query: Query) -> list[Table] | None:
        """The tables visible to this query level, or None when FROM is broken."""
        names = [t for t in query.from_tables if t != JOIN_PLACEHOLDER]
        if query.uses_join_placeholder:
            implied = list(names)
            for table in query.referenced_tables():
                if table not in implied:
                    implied.append(table)
            for placeholder in self._own_placeholders(query):
                table = placeholder.table
                if (
                    table
                    and placeholder.column not in _BOUND_SUFFIXES
                    and table not in implied
                ):
                    implied.append(table)
            unknown = [t for t in implied if t not in self.schema]
            for table in unknown:
                self.emit(
                    "L101",
                    f"@JOIN query references unknown table {table!r} "
                    f"in schema {self.schema.name!r}",
                    span=query.span,
                    fix=FixHint("unknown_table", subject=table),
                )
            implied = [t for t in implied if t not in unknown]
            if not implied:
                self.emit(
                    "L110",
                    "@JOIN query references no known table, so the join "
                    "path cannot be inferred",
                    span=query.span,
                    hint="qualify at least one column or placeholder with its table",
                )
                return None
            try:
                names = self.schema.join_tables(implied)
            except SchemaError as exc:
                self.emit(
                    "L110",
                    f"@JOIN cannot be expanded: {exc}",
                    span=query.span,
                    hint="add a foreign key connecting the referenced tables",
                    fix=FixHint("join_path", alternatives=tuple(implied)),
                )
                return None
        else:
            unknown = [t for t in names if t not in self.schema]
            for table in unknown:
                self.emit(
                    "L101",
                    f"FROM references unknown table {table!r} "
                    f"in schema {self.schema.name!r}",
                    span=query.span,
                    fix=FixHint("unknown_table", subject=table),
                )
            names = [t for t in names if t not in unknown]
            if not names:
                return None
            if len(names) >= 2:
                try:
                    self.schema.join_path(names)
                except SchemaError as exc:
                    self.emit(
                        "L110",
                        f"FROM tables cannot be joined: {exc}",
                        span=query.span,
                        hint="add a foreign key connecting the tables",
                        fix=FixHint("join_path", alternatives=tuple(names)),
                    )
        return [self.schema.table(name) for name in names]

    # -- reference resolution -------------------------------------------

    def _resolve(self, ref: ColumnRef, scope: list[Table]) -> Column | None:
        if ref.table is not None:
            if ref.table not in self.schema:
                self.emit(
                    "L101",
                    f"reference {ref} names unknown table {ref.table!r}",
                    span=ref.span,
                    fix=FixHint("unknown_table", subject=ref.table),
                )
                return None
            table = self.schema.table(ref.table)
            if all(t.name != ref.table for t in scope):
                self.emit(
                    "L104",
                    f"reference {ref} names table {ref.table!r} which is "
                    f"not in the FROM scope",
                    span=ref.span,
                    hint="add the table to FROM or drop the qualifier",
                    fix=FixHint(
                        "table_not_in_scope", subject=ref.column, table=ref.table
                    ),
                )
            if ref.column not in table:
                self.emit(
                    "L102",
                    f"table {ref.table!r} has no column {ref.column!r}",
                    span=ref.span,
                    fix=FixHint("unknown_column", subject=ref.column, table=ref.table),
                )
                return None
            return table.column(ref.column)
        owners = [t for t in scope if ref.column in t]
        if not owners:
            self.emit(
                "L102",
                f"column {ref.column!r} exists in no FROM table "
                f"({', '.join(t.name for t in scope)})",
                span=ref.span,
                fix=FixHint("unknown_column", subject=ref.column),
            )
            return None
        if len(owners) > 1:
            self.emit(
                "L103",
                f"column {ref.column!r} is ambiguous: present in "
                f"{', '.join(t.name for t in owners)}",
                span=ref.span,
                hint="qualify the reference with its table",
                fix=FixHint(
                    "ambiguous_column",
                    subject=ref.column,
                    alternatives=tuple(t.name for t in owners),
                ),
            )
            return None
        return owners[0].column(ref.column)

    # -- select / grouping ----------------------------------------------

    def _check_select(self, query: Query, scope: list[Table]) -> None:
        for item in query.select:
            if isinstance(item, ColumnRef):
                self._resolve(item, scope)
            elif isinstance(item, Aggregate):
                self._check_aggregate(item, scope)

    def _check_aggregate(self, agg: Aggregate, scope: list[Table]) -> None:
        if isinstance(agg.arg, Star):
            return
        column = self._resolve(agg.arg, scope)
        if (
            column is not None
            and agg.func in (AggFunc.SUM, AggFunc.AVG)
            and not column.is_numeric
        ):
            self.emit(
                "L112",
                f"{agg.func.value} needs a numeric argument but "
                f"{agg.arg} has type {column.ctype.value}",
                span=agg.span,
                fix=FixHint(
                    "aggregate_nonnumeric",
                    subject=agg.arg.column,
                    table=agg.arg.table or "",
                ),
            )

    def _check_grouping(self, query: Query, scope: list[Table]) -> None:
        if query.having is not None and not query.group_by:
            self.emit(
                "L109",
                "HAVING requires a GROUP BY clause",
                span=query.span,
                fix=FixHint("having_without_group_by"),
            )
        if not query.group_by:
            return
        group_keys = set()
        for ref in query.group_by:
            column = self._resolve(ref, scope)
            group_keys.add(self._identity(ref, column))
        for item in query.select:
            if isinstance(item, Aggregate):
                continue
            if isinstance(item, Star):
                self.emit(
                    "L108",
                    "SELECT * is not allowed in a grouped query",
                    span=item.span,
                )
                continue
            column = self._resolve(item, scope)
            if self._identity(item, column) not in group_keys:
                self.emit(
                    "L108",
                    f"select item {item} is neither aggregated nor in "
                    f"GROUP BY",
                    span=item.span,
                    hint="add the column to GROUP BY or wrap it in an aggregate",
                    fix=FixHint(
                        "ungrouped_select_item",
                        subject=item.column,
                        table=item.table or "",
                    ),
                )

    @staticmethod
    def _identity(ref: ColumnRef, column: Column | None) -> tuple[str | None, str]:
        # Resolved refs compare by column object identity so that
        # `name` and `t.name` group together; unresolved fall back to text.
        if column is not None:
            return (None, str(id(column)))
        return (ref.table, ref.column)

    # -- predicates ------------------------------------------------------

    def _check_predicate(
        self, predicate: Predicate, scope: list[Table], in_where: bool
    ) -> None:
        from repro.sql.ast import And, Not, Or

        if isinstance(predicate, (And, Or)):
            for operand in predicate.operands:
                self._check_predicate(operand, scope, in_where)
        elif isinstance(predicate, Not):
            self._check_predicate(predicate.operand, scope, in_where)
        elif isinstance(predicate, Comparison):
            self._check_comparison(predicate, scope, in_where)
        elif isinstance(predicate, Between):
            self._check_between(predicate, scope)
        elif isinstance(predicate, InPredicate):
            self._check_in(predicate, scope)
        elif isinstance(predicate, Like):
            self._check_like(predicate, scope)
        elif isinstance(predicate, Exists):
            pass  # inner query handled by the subquery recursion

    def _check_comparison(
        self, pred: Comparison, scope: list[Table], in_where: bool
    ) -> None:
        for side in (pred.left, pred.right):
            if isinstance(side, Aggregate):
                if in_where:
                    self.emit(
                        "L107",
                        f"aggregate {side} is not allowed in WHERE",
                        span=pred.span,
                        hint="move the condition to HAVING",
                        fix=FixHint("aggregate_in_where"),
                    )
                self._check_aggregate(side, scope)
            elif isinstance(side, Placeholder):
                self._check_placeholder(side, scope)
        column: Column | None = None
        other = None
        if isinstance(pred.left, ColumnRef):
            column = self._resolve(pred.left, scope)
            other = pred.right
            if isinstance(pred.right, ColumnRef):
                self._resolve(pred.right, scope)
                other = None  # column-to-column (join condition): no literal check
        elif isinstance(pred.right, ColumnRef):
            column = self._resolve(pred.right, scope)
            other = pred.left
        if column is None:
            return
        if pred.op in _ORDERING_OPS and column.ctype is ColumnType.TEXT:
            self.emit(
                "L105",
                f"ordering comparison {pred.op.value} on text column "
                f"{column.name!r}",
                span=pred.span,
                hint="text columns support only = and <>",
                fix=FixHint("ordering_on_text", subject=column.name),
            )
        if isinstance(other, Literal):
            self._check_literal(column, other)

    def _check_literal(self, column: Column, literal: Literal) -> None:
        if isinstance(literal.value, str) and column.is_numeric:
            self.emit(
                "L106",
                f"string literal {literal} compared with numeric column "
                f"{column.name!r}",
                span=literal.span,
            )
        elif (
            isinstance(literal.value, (int, float))
            and column.ctype is ColumnType.TEXT
        ):
            self.emit(
                "L106",
                f"numeric literal {literal} compared with text column "
                f"{column.name!r}",
                span=literal.span,
            )

    def _check_between(self, pred: Between, scope: list[Table]) -> None:
        column = self._resolve(pred.column, scope)
        if column is not None and column.ctype is ColumnType.TEXT:
            self.emit(
                "L111",
                f"BETWEEN on text column {column.name!r}",
                span=pred.span,
                hint="BETWEEN needs an ordered (numeric or date) column",
                fix=FixHint("between_on_text", subject=column.name),
            )
        for bound in (pred.low, pred.high):
            if isinstance(bound, Placeholder):
                self._check_placeholder(bound, scope)
            elif column is not None and isinstance(bound, Literal):
                self._check_literal(column, bound)

    def _check_in(self, pred: InPredicate, scope: list[Table]) -> None:
        column = self._resolve(pred.column, scope)
        for value in pred.values:
            if isinstance(value, Placeholder):
                self._check_placeholder(value, scope)
            elif column is not None and isinstance(value, Literal):
                self._check_literal(column, value)

    def _check_like(self, pred: Like, scope: list[Table]) -> None:
        column = self._resolve(pred.column, scope)
        if column is not None and column.ctype is not ColumnType.TEXT:
            self.emit(
                "L113",
                f"LIKE on {column.ctype.value} column {column.name!r}",
                span=pred.span,
                fix=FixHint("like_on_nontext", subject=column.name),
            )
        if isinstance(pred.pattern, Placeholder):
            self._check_placeholder(pred.pattern, scope)

    # -- placeholders ----------------------------------------------------

    def _check_placeholder(self, placeholder: Placeholder, scope: list[Table]) -> None:
        name = placeholder.name.lower()
        if name in _GENERIC_PLACEHOLDERS:
            return
        if "." in name:
            first, last = name.split(".", 1)
            if last in _BOUND_SUFFIXES:
                # @COL.LOW / @COL.HIGH — the BETWEEN bound scheme.
                if not any(first in t for t in scope):
                    self.emit(
                        "L114",
                        f"placeholder {placeholder} names unknown column "
                        f"{first!r}",
                        span=placeholder.span,
                        fix=FixHint("unknown_placeholder", subject=placeholder.name),
                    )
                return
            # @TABLE.COL — the qualified constant scheme of join templates.
            if first not in self.schema:
                self.emit(
                    "L114",
                    f"placeholder {placeholder} names unknown table {first!r}",
                    span=placeholder.span,
                    fix=FixHint(
                        "unknown_placeholder", subject=placeholder.name, table=first
                    ),
                )
                return
            if last not in self.schema.table(first):
                self.emit(
                    "L114",
                    f"placeholder {placeholder} names unknown column "
                    f"{last!r} of table {first!r}",
                    span=placeholder.span,
                    fix=FixHint(
                        "unknown_placeholder", subject=placeholder.name, table=first
                    ),
                )
            return
        if not any(name in t for t in scope):
            self.emit(
                "L114",
                f"placeholder {placeholder} names unknown column {name!r}",
                span=placeholder.span,
                fix=FixHint("unknown_placeholder", subject=placeholder.name),
            )

    def _own_placeholders(self, query: Query) -> list[Placeholder]:
        """Placeholders of this query level only (no subquery interiors)."""
        found: list[Placeholder] = []

        def scan(operand) -> None:
            if isinstance(operand, Placeholder):
                found.append(operand)

        for pred in query.walk_predicates():
            if isinstance(pred, Comparison):
                scan(pred.left)
                scan(pred.right)
            elif isinstance(pred, Between):
                scan(pred.low)
                scan(pred.high)
            elif isinstance(pred, InPredicate):
                for value in pred.values:
                    scan(value)
            elif isinstance(pred, Like):
                scan(pred.pattern)
        return found
