"""Pass 2: lint the seed-template library against a set of schemas.

For every (SQL kind × schema) pair the linter *probes* the kind's
builder a fixed number of times with a private, deterministic RNG
(derived from the schema and kind names, never from generation seeds —
linting must not perturb corpus synthesis).  The collected
:class:`~repro.core.templates.SlotFill` samples drive four checks:

* **slot agreement** (``L201``) — every ``{slot}`` in an NL pattern is
  supplied by the builder, for every sampled fill;
* **placeholder agreement** (``L202``) — the constant placeholders in
  the rendered NL match the SQL side's, so the runtime can restore
  anonymized constants (§4.2);
* **dead templates** (``L203``/``L204``) — kinds whose builder never
  succeeds on a schema (or on any schema) are flagged; these are
  warnings because some kinds are legitimately dead on some schemas
  (join templates on a single-table schema);
* **semantic validity** — every sampled query runs through the
  ``L1xx`` SQL semantic analyzer.

Independently of probing, duplicate NL pattern signatures are flagged
(``L205``; an error within one SQL kind, a warning across kinds, where
the shared surface form is an intentional hard training case) and
templates naming an unregistered SQL kind are rejected (``L206``).
"""

from __future__ import annotations

import re
import zlib
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.analysis.sql_semantics import analyze_query
from repro.core.config import GenerationConfig
from repro.core.seed_templates import KIND_REGISTRY, SEED_TEMPLATES
from repro.core.templates import SeedTemplate, SlotFill, render
from repro.errors import TemplateError
from repro.schema.schema import Schema

#: Builder invocations per (kind, schema); comfortably above the
#: generator's miss-streak limit so stochastic misses cannot masquerade
#: as dead templates.
PROBES_PER_KIND = 24

#: Cap on fills retained for the per-pattern checks.
_MAX_FILLS = 8

_SLOT_RE = re.compile(r"\{(\w+)\}")
_NL_PLACEHOLDER_RE = re.compile(r"@([A-Za-z0-9_.]+)")

_BOUND_SUFFIXES = ("low", "high")


def probe_builder(
    kind: str,
    schema: Schema,
    config: GenerationConfig | None = None,
    probes: int = PROBES_PER_KIND,
) -> list[SlotFill]:
    """Sample up to ``_MAX_FILLS`` slot fills from one kind's builder.

    The RNG seed depends only on the kind and schema names, so probing
    is deterministic and independent of any generation seed.
    """
    config = config or GenerationConfig()
    builder = KIND_REGISTRY[kind][1]
    rng = np.random.default_rng(
        [zlib.crc32(kind.encode()), zlib.crc32(schema.name.encode())]
    )
    fills: list[SlotFill] = []
    for _ in range(probes):
        fill = builder(schema, rng, config)
        if fill is not None:
            fills.append(fill)
            if len(fills) >= _MAX_FILLS:
                break
    return fills


def _normalize_placeholder(name: str) -> str:
    """Collapse a placeholder name to its runtime-restoration identity.

    The SQL side may qualify a constant with its table (``@T.COL``)
    while the NL side never does (``@COL``); both restore the same
    constant.  BETWEEN bounds (``@COL.LOW``) keep their suffix — the
    bound identity matters for restoration.
    """
    lowered = name.lower()
    if "." in lowered:
        _first, last = lowered.rsplit(".", 1)
        if last in _BOUND_SUFFIXES:
            return lowered
        return last
    return lowered


def placeholder_mismatch(
    nl: str, sql_placeholder_names: Iterable[str]
) -> tuple[list[str], list[str]]:
    """(SQL-only, NL-only) placeholder identities between the two sides."""
    nl_counts: dict[str, int] = {}
    for match in _NL_PLACEHOLDER_RE.finditer(nl):
        key = _normalize_placeholder(match.group(1).rstrip("."))
        nl_counts[key] = nl_counts.get(key, 0) + 1
    sql_only: list[str] = []
    for name in sql_placeholder_names:
        key = _normalize_placeholder(name)
        if nl_counts.get(key, 0) > 0:
            nl_counts[key] -= 1
        else:
            sql_only.append(key)
    nl_only = [key for key, count in nl_counts.items() for _ in range(count)]
    return sql_only, nl_only


def lint_templates(
    schemas: Sequence[Schema],
    templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
    config: GenerationConfig | None = None,
    probes: int = PROBES_PER_KIND,
) -> list[Diagnostic]:
    """Lint every template against every schema."""
    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, str, str]] = set()

    def emit(diag: Diagnostic) -> None:
        key = (diag.code, diag.location, diag.message)
        if key not in seen:
            seen.add(key)
            diagnostics.append(diag)

    by_kind: dict[str, list[SeedTemplate]] = {}
    for template in templates:
        by_kind.setdefault(template.sql_kind, []).append(template)

    known_kinds = [k for k in by_kind if k in KIND_REGISTRY]
    for template in templates:
        if template.sql_kind not in KIND_REGISTRY:
            emit(
                make(
                    "L206",
                    f"template {template.tid!r} names unknown SQL kind "
                    f"{template.sql_kind!r}",
                    location=template.tid,
                    hint=f"registered kinds: {', '.join(sorted(KIND_REGISTRY))}",
                )
            )

    # Probe each kind once per schema; reuse the fills for every pattern.
    fills_by_kind_schema: dict[tuple[str, str], list[SlotFill]] = {}
    for kind in known_kinds:
        alive_anywhere = False
        for schema in schemas:
            fills = probe_builder(kind, schema, config=config, probes=probes)
            fills_by_kind_schema[(kind, schema.name)] = fills
            if fills:
                alive_anywhere = True
            else:
                for template in by_kind[kind]:
                    emit(
                        make(
                            "L203",
                            f"template {template.tid!r} has no valid "
                            f"instantiation on schema {schema.name!r}",
                            location=f"{schema.name}:{template.tid}",
                            hint="expected for kinds whose structural "
                            "requirements (joins, numeric columns) the "
                            "schema cannot meet",
                        )
                    )
        if not alive_anywhere and schemas:
            for template in by_kind[kind]:
                emit(
                    make(
                        "L204",
                        f"template {template.tid!r} has no valid "
                        f"instantiation on any of the "
                        f"{len(schemas)} provided schema(s)",
                        location=template.tid,
                        hint="the template can never contribute training "
                        "pairs; fix its builder or drop it",
                    )
                )

    # Per-pattern checks against the sampled fills.
    for template in templates:
        if template.sql_kind not in KIND_REGISTRY:
            continue
        wanted_slots = set(_SLOT_RE.findall(template.nl_pattern))
        for schema in schemas:
            fills = fills_by_kind_schema[(template.sql_kind, schema.name)]
            location = f"{schema.name}:{template.tid}"
            for fill in fills:
                missing = wanted_slots - set(fill.slots)
                if missing:
                    emit(
                        make(
                            "L201",
                            f"NL pattern needs slot(s) "
                            f"{', '.join(sorted(missing))} which the "
                            f"{template.sql_kind!r} builder does not supply",
                            location=location,
                            hint=f"builder supplies: "
                            f"{', '.join(sorted(fill.slots))}",
                        )
                    )
                    continue
                try:
                    nl = render(template.nl_pattern, fill.slots)
                except TemplateError as exc:
                    emit(make("L201", str(exc), location=location))
                    continue
                sql_names = [p.name for p in fill.query.placeholders()]
                sql_only, nl_only = placeholder_mismatch(nl, sql_names)
                if sql_only:
                    emit(
                        make(
                            "L202",
                            f"SQL placeholders {sorted(set(sql_only))} never "
                            f"appear in the rendered NL {nl!r}",
                            location=location,
                            hint="the runtime cannot restore a constant "
                            "the user never mentioned",
                        )
                    )
                if nl_only:
                    emit(
                        make(
                            "L202",
                            f"NL placeholders {sorted(set(nl_only))} have no "
                            f"SQL counterpart in the rendered pair",
                            location=location,
                            severity=Severity.WARNING,
                        )
                    )

    # Semantic analysis of sampled queries, once per (kind, schema).
    for (kind, schema_name), fills in fills_by_kind_schema.items():
        schema = next(s for s in schemas if s.name == schema_name)
        for fill in fills:
            for diag in analyze_query(
                fill.query, schema, location=f"{schema_name}:{kind}"
            ):
                emit(diag)

    # Duplicate NL pattern signatures.
    signatures: dict[str, list[SeedTemplate]] = {}
    for template in templates:
        signature = re.sub(r"\s+", " ", template.nl_pattern).strip().lower()
        signatures.setdefault(signature, []).append(template)
    for signature, owners in signatures.items():
        if len(owners) < 2:
            continue
        tids = ", ".join(t.tid for t in owners)
        same_kind = len({t.sql_kind for t in owners}) == 1
        emit(
            make(
                "L205",
                f"NL pattern {signature!r} is shared by templates {tids}",
                location=owners[0].tid,
                severity=Severity.ERROR if same_kind else Severity.WARNING,
                hint=(
                    "identical patterns in one kind are pure duplicates"
                    if same_kind
                    else "cross-kind duplicates train one surface form to "
                    "two SQL shapes; keep only if intentional"
                ),
            )
        )
    return diagnostics


def explain_dead_template(
    template: SeedTemplate,
    schema: Schema,
    config: GenerationConfig | None = None,
    probes: int = PROBES_PER_KIND,
) -> list[Diagnostic]:
    """Diagnostics for one template that failed to instantiate.

    Used by the generator's miss-streak fast-fail path to attach an
    explanation (with stable codes) instead of failing silently.
    """
    if template.sql_kind not in KIND_REGISTRY:
        return [
            make(
                "L206",
                f"template {template.tid!r} names unknown SQL kind "
                f"{template.sql_kind!r}",
                location=template.tid,
            )
        ]
    diagnostics = lint_templates(
        [schema], [template], config=config, probes=probes
    )
    if not diagnostics:
        diagnostics.append(
            make(
                "L203",
                f"builder for {template.sql_kind!r} kept missing on schema "
                f"{schema.name!r} (stochastic miss streak); raise "
                f"miss_streak_limit if the schema should support it",
                location=f"{schema.name}:{template.tid}",
            )
        )
    return diagnostics
