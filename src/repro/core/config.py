"""Generation configuration — every tuning parameter of Table 1.

The paper's data-generation procedure is a parameterized function
``Generate(D, T, phi)`` (§3.3); ``phi`` is this dataclass.  Parameter
names follow Table 1 (``size_slotfills``, ``size_tables``,
``groupby_p``, ``join_boost``, ``agg_boost``, ``nest_boost`` for
instantiation; ``size_para``, ``num_para``, ``num_missing``,
``rand_drop_p`` for augmentation).

Defaults are the empirically determined values used throughout the
evaluation (§3.2.1: "DBPal has default values for all of these
parameters that we have empirically determined to have the best
performance"); :meth:`GenerationConfig.sample` draws random candidates
for the §3.3 random-search optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import GenerationError


@dataclass(frozen=True)
class GenerationConfig:
    """Tuning parameters of the data generation procedure (Table 1)."""

    # -- data instantiation -------------------------------------------
    #: Maximum instances created per NL-SQL template pair by slot filling.
    size_slotfills: int = 24
    #: Maximum number of tables supported in join queries.
    size_tables: int = 2
    #: Probability of generating a GROUP BY version of a generated pair.
    groupby_p: float = 0.30
    #: Balance multipliers for join/aggregate/nested templates relative
    #: to the base SELECT-FROM-WHERE family.
    join_boost: float = 1.0
    agg_boost: float = 1.0
    nest_boost: float = 1.0

    # -- data augmentation ---------------------------------------------
    #: Maximum size (in words) of subclauses replaced by a paraphrase.
    size_para: int = 2
    #: Maximum paraphrases used to vary one subclause.
    num_para: int = 3
    #: Maximum duplicates with removed words per input NL query.
    num_missing: int = 2
    #: Probability of dropping words from a generated query at all.
    rand_drop_p: float = 0.35

    # -- synthesis engine (not a Table 1 parameter) --------------------
    #: Consecutive failed slot-fill attempts tolerated before a template
    #: is declared unsupported by the schema (fast-fail for
    #: schema-structural builders, e.g. join templates on single-table
    #: schemas).  Excluded from :data:`SEARCH_SPACE`.
    miss_streak_limit: int = 10

    def __post_init__(self) -> None:
        if self.size_slotfills < 1:
            raise GenerationError("size_slotfills must be >= 1")
        if self.size_tables < 1:
            raise GenerationError("size_tables must be >= 1")
        for name in ("groupby_p", "rand_drop_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise GenerationError(f"{name} must be in [0, 1], got {value}")
        for name in ("join_boost", "agg_boost", "nest_boost"):
            value = getattr(self, name)
            if value < 0.0:
                raise GenerationError(f"{name} must be >= 0, got {value}")
        if self.size_para < 0 or self.num_para < 0 or self.num_missing < 0:
            raise GenerationError("augmentation sizes must be >= 0")
        if self.miss_streak_limit < 1:
            raise GenerationError("miss_streak_limit must be >= 1")

    def with_overrides(self, **overrides) -> "GenerationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Random search support (§3.3)
    # ------------------------------------------------------------------

    #: Search space for the random-search optimizer: name -> candidates.
    SEARCH_SPACE = {
        "size_slotfills": (8, 16, 24, 32, 48),
        "size_tables": (2, 3),
        "groupby_p": (0.1, 0.2, 0.3, 0.5),
        "join_boost": (0.5, 1.0, 1.5, 2.0),
        "agg_boost": (0.5, 1.0, 1.5, 2.0),
        "nest_boost": (0.5, 1.0, 1.5, 2.0),
        "size_para": (0, 1, 2, 3),
        "num_para": (0, 1, 2, 3, 5),
        "num_missing": (0, 1, 2, 3),
        "rand_drop_p": (0.0, 0.2, 0.35, 0.5, 0.8),
    }

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "GenerationConfig":
        """Draw a random configuration from :data:`SEARCH_SPACE`."""
        choices = {
            name: candidates[int(rng.integers(len(candidates)))]
            for name, candidates in cls.SEARCH_SPACE.items()
        }
        return cls(**choices)

    @classmethod
    def grid(cls, subset: dict[str, tuple] | None = None):
        """Yield every configuration of a (sub)grid.

        ``subset`` restricts the grid to the given axes (the full Table
        1 grid is combinatorially large); unrestricted axes keep their
        default values.
        """
        import itertools

        space = subset or cls.SEARCH_SPACE
        names = sorted(space)
        for combo in itertools.product(*(space[n] for n in names)):
            yield cls(**dict(zip(names, combo)))

    def to_dict(self) -> dict:
        """Flat dict of all parameters (for logging and reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance policy for the sharded synthesis engine.

    Controls how :meth:`repro.core.parallel.SynthesisEngine.iter_outcomes`
    reacts when a shard misbehaves.  Deliberately *not* part of
    :class:`GenerationConfig`: these knobs change how the run executes,
    never what corpus it produces (a retried shard reruns with the same
    ``SeedSequence``-derived streams, so its pairs are bit-identical).
    """

    #: Wall-clock budget per shard attempt, seconds.  ``0`` disables
    #: timeout enforcement (a hung shard then hangs the run).  Only
    #: enforceable with ``workers >= 1`` — the inline executor cannot
    #: preempt its own process.
    shard_timeout: float = 0.0
    #: Total attempts per shard (first try + retries) before the shard
    #: is quarantined instead of aborting the run.
    max_attempts: int = 3
    #: Exponential-backoff delay before retry *n* is
    #: ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.shard_timeout < 0:
            raise GenerationError("shard_timeout must be >= 0")
        if self.max_attempts < 1:
            raise GenerationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise GenerationError("backoff delays must be >= 0")

    def backoff_delay(self, failed_attempts: int) -> float:
        """Delay before the next attempt after ``failed_attempts`` failures."""
        if failed_attempts <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (failed_attempts - 1))
