"""Serialization of training corpora.

Synthesized corpora are valuable artifacts (generating large ones takes
minutes; models in other frameworks may want to train on them), so they
can be exported and re-imported losslessly:

* **JSONL** — one JSON object per pair, all metadata preserved;
* **TSV** — two-column ``NL \\t SQL`` (the common seq2seq tooling
  format), metadata dropped.

Both writers accept a :class:`TrainingCorpus` or any iterable of
:class:`TrainingPair` (e.g. ``itertools.chain`` over
:meth:`TrainingPipeline.generate_stream` batches), so a corpus can be
streamed to disk while it is being synthesized instead of being
materialized in memory first.

Both writers are **atomic**: pairs are written to a ``<path>.tmp.<pid>``
sibling which is :func:`os.replace`-d over the destination only after
the full stream has been consumed and flushed.  An interrupt (or an
exception raised mid-iteration by the producing stream) therefore never
leaves a truncated corpus file that a later ``--resume`` — or any other
reader — would silently trust; the previous file, if any, survives
untouched.  Incremental, crash-*resumable* writing is the separate
:mod:`repro.core.checkpoint` layer, which pairs the output file with a
manifest instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable

from repro.core.pipeline import TrainingCorpus
from repro.core.templates import Family, TrainingPair
from repro.errors import GenerationError
from repro.sql.parser import parse


def _iter_pairs(
    corpus: TrainingCorpus | Iterable[TrainingPair],
) -> Iterable[TrainingPair]:
    return corpus.pairs if isinstance(corpus, TrainingCorpus) else corpus


def jsonl_line(pair: TrainingPair) -> str:
    """The canonical JSONL serialization of one pair (with newline)."""
    record = {
        "nl": pair.nl,
        "sql": pair.sql_text,
        "template_id": pair.template_id,
        "family": pair.family.value,
        "schema": pair.schema_name,
        "augmentation": pair.augmentation,
    }
    return json.dumps(record) + "\n"


def tsv_line(pair: TrainingPair) -> str:
    """The canonical ``NL \\t SQL`` serialization of one pair."""
    nl = pair.nl.replace("\t", " ")
    return f"{nl}\t{pair.sql_text}\n"


#: format name -> per-pair line encoder (shared with the checkpointed
#: writer, which must produce byte-identical files).
LINE_ENCODERS: dict[str, Callable[[TrainingPair], str]] = {
    "jsonl": jsonl_line,
    "tsv": tsv_line,
}


def _atomic_write(
    corpus: TrainingCorpus | Iterable[TrainingPair],
    path: str | Path,
    encode: Callable[[TrainingPair], str],
) -> int:
    """Stream ``corpus`` through ``encode`` into ``path`` atomically."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    written = 0
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for pair in _iter_pairs(corpus):
                handle.write(encode(pair))
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    return written


def save_jsonl(
    corpus: TrainingCorpus | Iterable[TrainingPair], path: str | Path
) -> int:
    """Write a corpus (or pair stream) to JSON-lines with full metadata.

    Atomic (tmp + rename); returns the number of pairs written.
    """
    return _atomic_write(corpus, path, jsonl_line)


def load_jsonl(path: str | Path) -> TrainingCorpus:
    """Read a corpus written by :func:`save_jsonl`."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pairs.append(
                    TrainingPair(
                        nl=record["nl"],
                        sql=parse(record["sql"]),
                        template_id=record["template_id"],
                        family=Family(record["family"]),
                        schema_name=record["schema"],
                        augmentation=record.get("augmentation", "none"),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise GenerationError(
                    f"invalid corpus record at {path}:{line_number}: {exc}"
                ) from exc
    return TrainingCorpus(pairs)


def save_tsv(
    corpus: TrainingCorpus | Iterable[TrainingPair], path: str | Path
) -> int:
    """Write a plain ``NL \\t SQL`` file (for external seq2seq tooling).

    Accepts a corpus or a pair stream; atomic (tmp + rename); returns
    the number of pairs written.
    """
    return _atomic_write(corpus, path, tsv_line)


def load_tsv(path: str | Path, schema_name: str = "") -> TrainingCorpus:
    """Read a two-column TSV as a corpus (metadata defaults)."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            columns = line.split("\t")
            if len(columns) != 2:
                raise GenerationError(
                    f"expected 2 tab-separated columns at {path}:{line_number}"
                )
            nl, sql_text = columns
            pairs.append(
                TrainingPair(
                    nl=nl,
                    sql=parse(sql_text),
                    template_id="imported",
                    family=Family.SELECT,
                    schema_name=schema_name,
                    augmentation="manual",
                )
            )
    return TrainingCorpus(pairs)
