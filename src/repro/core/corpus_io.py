"""Serialization of training corpora.

Synthesized corpora are valuable artifacts (generating large ones takes
minutes; models in other frameworks may want to train on them), so they
can be exported and re-imported losslessly:

* **JSONL** — one JSON object per pair, all metadata preserved;
* **TSV** — two-column ``NL \\t SQL`` (the common seq2seq tooling
  format), metadata dropped.

Both writers accept a :class:`TrainingCorpus` or any iterable of
:class:`TrainingPair` (e.g. ``itertools.chain`` over
:meth:`TrainingPipeline.generate_stream` batches), so a corpus can be
streamed to disk while it is being synthesized instead of being
materialized in memory first.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.core.pipeline import TrainingCorpus
from repro.core.templates import Family, TrainingPair
from repro.errors import GenerationError
from repro.sql.parser import parse


def _iter_pairs(
    corpus: TrainingCorpus | Iterable[TrainingPair],
) -> Iterable[TrainingPair]:
    return corpus.pairs if isinstance(corpus, TrainingCorpus) else corpus


def save_jsonl(
    corpus: TrainingCorpus | Iterable[TrainingPair], path: str | Path
) -> int:
    """Write a corpus (or pair stream) to JSON-lines with full metadata.

    Returns the number of pairs written.
    """
    path = Path(path)
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for pair in _iter_pairs(corpus):
            record = {
                "nl": pair.nl,
                "sql": pair.sql_text,
                "template_id": pair.template_id,
                "family": pair.family.value,
                "schema": pair.schema_name,
                "augmentation": pair.augmentation,
            }
            handle.write(json.dumps(record) + "\n")
            written += 1
    return written


def load_jsonl(path: str | Path) -> TrainingCorpus:
    """Read a corpus written by :func:`save_jsonl`."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pairs.append(
                    TrainingPair(
                        nl=record["nl"],
                        sql=parse(record["sql"]),
                        template_id=record["template_id"],
                        family=Family(record["family"]),
                        schema_name=record["schema"],
                        augmentation=record.get("augmentation", "none"),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise GenerationError(
                    f"invalid corpus record at {path}:{line_number}: {exc}"
                ) from exc
    return TrainingCorpus(pairs)


def save_tsv(
    corpus: TrainingCorpus | Iterable[TrainingPair], path: str | Path
) -> int:
    """Write a plain ``NL \\t SQL`` file (for external seq2seq tooling).

    Accepts a corpus or a pair stream; returns the number of pairs
    written.
    """
    path = Path(path)
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for pair in _iter_pairs(corpus):
            nl = pair.nl.replace("\t", " ")
            handle.write(f"{nl}\t{pair.sql_text}\n")
            written += 1
    return written


def load_tsv(path: str | Path, schema_name: str = "") -> TrainingCorpus:
    """Read a two-column TSV as a corpus (metadata defaults)."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            columns = line.split("\t")
            if len(columns) != 2:
                raise GenerationError(
                    f"expected 2 tab-separated columns at {path}:{line_number}"
                )
            nl, sql_text = columns
            pairs.append(
                TrainingPair(
                    nl=nl,
                    sql=parse(sql_text),
                    template_id="imported",
                    family=Family.SELECT,
                    schema_name=schema_name,
                    augmentation="manual",
                )
            )
    return TrainingCorpus(pairs)
