"""Serialization of training corpora.

Synthesized corpora are valuable artifacts (generating large ones takes
minutes; models in other frameworks may want to train on them), so they
can be exported and re-imported losslessly:

* **JSONL** — one JSON object per pair, all metadata preserved;
* **TSV** — two-column ``NL \\t SQL`` (the common seq2seq tooling
  format), metadata dropped.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pipeline import TrainingCorpus
from repro.core.templates import Family, TrainingPair
from repro.errors import GenerationError
from repro.sql.parser import parse


def save_jsonl(corpus: TrainingCorpus, path: str | Path) -> None:
    """Write a corpus to JSON-lines with full metadata."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for pair in corpus.pairs:
            record = {
                "nl": pair.nl,
                "sql": pair.sql_text,
                "template_id": pair.template_id,
                "family": pair.family.value,
                "schema": pair.schema_name,
                "augmentation": pair.augmentation,
            }
            handle.write(json.dumps(record) + "\n")


def load_jsonl(path: str | Path) -> TrainingCorpus:
    """Read a corpus written by :func:`save_jsonl`."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pairs.append(
                    TrainingPair(
                        nl=record["nl"],
                        sql=parse(record["sql"]),
                        template_id=record["template_id"],
                        family=Family(record["family"]),
                        schema_name=record["schema"],
                        augmentation=record.get("augmentation", "none"),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise GenerationError(
                    f"invalid corpus record at {path}:{line_number}: {exc}"
                ) from exc
    return TrainingCorpus(pairs)


def save_tsv(corpus: TrainingCorpus, path: str | Path) -> None:
    """Write a plain ``NL \\t SQL`` file (for external seq2seq tooling)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for pair in corpus.pairs:
            nl = pair.nl.replace("\t", " ")
            handle.write(f"{nl}\t{pair.sql_text}\n")


def load_tsv(path: str | Path, schema_name: str = "") -> TrainingCorpus:
    """Read a two-column TSV as a corpus (metadata defaults)."""
    pairs: list[TrainingPair] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            columns = line.split("\t")
            if len(columns) != 2:
                raise GenerationError(
                    f"expected 2 tab-separated columns at {path}:{line_number}"
                )
            nl, sql_text = columns
            pairs.append(
                TrainingPair(
                    nl=nl,
                    sql=parse(sql_text),
                    template_id="imported",
                    family=Family.SELECT,
                    schema_name=schema_name,
                    augmentation="manual",
                )
            )
    return TrainingCorpus(pairs)
