"""Training-data instantiation with balanced sampling (paper §3.1).

The generator repeatedly instantiates each seed template by slot
filling.  Two balancing mechanisms from the paper are implemented:

* **per-template caps** — "we randomly sample from the possible
  instances to get a good coverage of different queries and to keep the
  number of instances per query template balanced": each template gets
  at most ``size_slotfills`` unique instances, preventing templates
  with more slots from dominating;
* **family boosts** — ``join_boost`` / ``agg_boost`` / ``nest_boost``
  scale the caps of their families, and ``groupby_p`` stochastically
  adds a GROUP BY variant for each aggregate instance (Table 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.seed_templates import (
    GROUPBY_VARIANTS,
    KIND_REGISTRY,
    SEED_TEMPLATES,
)
from repro.core.templates import Family, SeedTemplate, TrainingPair, render
from repro.errors import E_LINT, GenerationError
from repro.schema.schema import Schema

#: Builder attempts allowed per requested instance before giving up.
_ATTEMPT_FACTOR = 5

_FAMILY_BOOST_FIELD = {
    Family.JOIN: "join_boost",
    Family.AGGREGATE: "agg_boost",
    Family.NESTED: "nest_boost",
}


class Generator:
    """Instantiates seed templates against one schema."""

    def __init__(
        self,
        schema: Schema,
        config: GenerationConfig | None = None,
        templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
        seed: int | np.random.SeedSequence = 0,
        strict: bool = False,
    ) -> None:
        self.schema = schema
        self.config = config or GenerationConfig()
        self.templates = tuple(templates)
        if not self.templates:
            raise GenerationError("no seed templates supplied")
        self._rng = np.random.default_rng(seed)
        self._strict = strict
        #: template id -> lint diagnostics explaining a zero-yield
        #: miss-streak fast-fail (filled lazily; see _explain_fast_fail).
        self.fast_fail_diagnostics: dict[str, list] = {}
        self._templates_by_kind: dict[str, list[SeedTemplate]] = {}
        for template in self.templates:
            self._templates_by_kind.setdefault(template.sql_kind, []).append(template)

    # ------------------------------------------------------------------

    def generate(self) -> list[TrainingPair]:
        """Produce the initial (pre-augmentation) training set."""
        pairs: list[TrainingPair] = []
        seen: set[tuple[str, str]] = set()
        for template in self.templates:
            self._generate_template_into(template, pairs, seen)
        return pairs

    def generate_template(self, template: SeedTemplate) -> list[TrainingPair]:
        """Instances of one template (the parallel engine's shard unit).

        Unlike :meth:`generate`, deduplication is local to the call;
        cross-template duplicates are resolved by the engine's
        order-stable merge.  The generator must still be constructed
        with the *full* template tuple so GROUP BY variants can find
        their NL patterns.
        """
        pairs: list[TrainingPair] = []
        self._generate_template_into(template, pairs, set())
        return pairs

    def _generate_template_into(
        self,
        template: SeedTemplate,
        pairs: list[TrainingPair],
        seen: set[tuple[str, str]],
    ) -> None:
        budget = self._budget_for(template)
        for pair in self._instantiate(template, budget, seen):
            pairs.append(pair)
            # groupby_p: stochastically add a GROUP BY variant of
            # aggregate instances (Table 1).
            variant_kind = GROUPBY_VARIANTS.get(template.sql_kind)
            if variant_kind and self._rng.random() < self.config.groupby_p:
                variant = self._instantiate_variant(variant_kind, seen)
                if variant is not None:
                    pairs.append(variant)

    # ------------------------------------------------------------------

    def _budget_for(self, template: SeedTemplate) -> int:
        boost_field = _FAMILY_BOOST_FIELD.get(template.family)
        boost = getattr(self.config, boost_field) if boost_field else 1.0
        return max(0, int(round(self.config.size_slotfills * boost)))

    def _instantiate(self, template, budget, seen):
        """Yield up to ``budget`` unique instances of one template."""
        _family, builder, _patterns = KIND_REGISTRY[template.sql_kind]
        produced = 0
        attempts = 0
        miss_streak = 0
        max_attempts = budget * _ATTEMPT_FACTOR
        while produced < budget and attempts < max_attempts:
            attempts += 1
            fill = builder(self.schema, self._rng, self.config)
            if fill is None:
                # Stochastic misses (filter diversity) can recover, so a
                # single None is not proof of anything — but a streak of
                # them means the schema structurally cannot support this
                # kind (e.g. joins on a single-table schema); fast-fail
                # instead of burning the whole attempt budget.
                miss_streak += 1
                if miss_streak >= self.config.miss_streak_limit:
                    if produced == 0:
                        self._explain_fast_fail(template)
                    break
                continue
            miss_streak = 0
            pair = TrainingPair(
                nl=render(template.nl_pattern, fill.slots),
                sql=fill.query,
                template_id=template.tid,
                family=template.family,
                schema_name=self.schema.name,
            )
            if pair.key() in seen:
                continue
            seen.add(pair.key())
            produced += 1
            yield pair

    def _explain_fast_fail(self, template: SeedTemplate) -> None:
        """Attach lint diagnostics to a zero-yield miss-streak fast-fail.

        The fast-fail itself stays silent by default — single-table
        schemas legitimately kill join templates — but the *reason* is
        recorded with stable ``L###`` codes so callers (and ``strict``
        mode) can explain why the template produced nothing.  Uses the
        analyzer's own deterministic probe RNG, never ``self._rng``, so
        diagnosis cannot perturb the generated corpus.
        """
        if template.tid in self.fast_fail_diagnostics:
            return
        from repro.analysis import explain_dead_template

        diagnostics = explain_dead_template(
            template, self.schema, config=self.config
        )
        self.fast_fail_diagnostics[template.tid] = diagnostics
        if self._strict:
            summary = "; ".join(
                f"[{d.code}] {d.message}" for d in diagnostics[:3]
            )
            raise GenerationError(
                f"template {template.tid!r} cannot instantiate on schema "
                f"{self.schema.name!r}: {summary}",
                code=E_LINT,
            )

    def _instantiate_variant(self, kind: str, seen):
        """One instance of a GROUP BY variant kind, under a random NL pattern."""
        candidates = self._templates_by_kind.get(kind)
        if not candidates:
            return None
        template = candidates[int(self._rng.integers(len(candidates)))]
        for pair in self._instantiate(template, 1, seen):
            return pair
        return None


def generate_for_schemas(
    schemas: Sequence[Schema],
    config: GenerationConfig | None = None,
    templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
    seed: int = 0,
) -> list[TrainingPair]:
    """Generate the initial training set for several schemas at once.

    This is how the DBPal (Train) / DBPal (Full) configurations of the
    evaluation are produced: the same pipeline run over the union of
    the respective schema sets (§6.1.2).
    """
    pairs: list[TrainingPair] = []
    for offset, schema in enumerate(schemas):
        generator = Generator(schema, config, templates, seed=seed + offset)
        pairs.extend(generator.generate())
    return pairs
