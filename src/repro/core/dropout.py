"""Word dropout for missing/implicit information (paper §3.2.2).

"To make the translation more robust to missing or implicit context, we
randomly drop words and subphrases from the NL training queries" —
e.g. dropping "diagnosed" from "patients diagnosed with influenza" so
the model also understands "patients with influenza".

Two Table 1 parameters tune the step: ``num_missing`` is the maximum
number of word-dropped duplicates per input NL query, and
``rand_drop_p`` is the probability that a duplicate is generated at
all.  Placeholders are never dropped (they carry the constant), and at
least half of the original words are always kept so the duplicate stays
interpretable.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.templates import TrainingPair
from repro.nlp.tokenizer import is_placeholder_token

#: Words that carry little meaning; preferred for removal, matching the
#: intuition that users omit function words and verbose connectives.
_LOW_CONTENT = frozenset(
    "the a an of all that which are is please their its with to me".split()
)


class WordDropout:
    """Produces duplicates of a pair with randomly removed words.

    ``pos_aware=True`` enables the paper's §3.2.3 future-work variant:
    a part-of-speech tagger restricts removal to word classes that can
    plausibly be implicit (function words, auxiliaries, verbs,
    adjectives) and never removes bare nouns that may be the only
    mention of a schema element.
    """

    def __init__(
        self,
        config: GenerationConfig,
        rng: np.random.Generator,
        pos_aware: bool = False,
    ) -> None:
        self._config = config
        self._rng = rng
        self._pos_aware = pos_aware

    def drop(self, pair: TrainingPair) -> list[TrainingPair]:
        """Word-dropped duplicates (possibly empty; never includes ``pair``)."""
        if self._config.num_missing <= 0 or self._config.rand_drop_p <= 0.0:
            return []
        words = pair.nl.split()
        droppable = [
            position
            for position, word in enumerate(words)
            if not is_placeholder_token(word)
        ]
        if self._pos_aware:
            from repro.nlp.pos import DROPPABLE_TAGS, tag_word

            droppable = [
                position
                for position in droppable
                if tag_word(words[position]) in DROPPABLE_TAGS
            ]
        if len(droppable) < 2:
            return []
        duplicates: list[TrainingPair] = []
        seen = {pair.nl}
        for duplicate_index in range(self._config.num_missing):
            if self._rng.random() >= self._config.rand_drop_p:
                continue
            if duplicate_index == 0:
                # First duplicate: prefer the paper's canonical case —
                # drop the attribute mention in front of a placeholder
                # ("patients diagnosed with influenza" -> "patients with
                # influenza"), which teaches the model to rely on the
                # placeholder identity when the column is implicit.
                new_nl = self._drop_before_placeholder(words)
                if new_nl is None:
                    new_nl = self._drop_once(words, droppable)
            else:
                new_nl = self._drop_once(words, droppable)
            if new_nl is None or new_nl in seen:
                continue
            seen.add(new_nl)
            duplicates.append(pair.with_nl(new_nl, augmentation="dropout"))
        return duplicates

    def _drop_before_placeholder(self, words: list[str]) -> str | None:
        """Remove the 1-3 words directly preceding a random placeholder."""
        positions = [
            i for i, w in enumerate(words) if is_placeholder_token(w) and i > 0
        ]
        if not positions:
            return None
        target = positions[int(self._rng.integers(len(positions)))]
        count = int(self._rng.integers(1, 4))
        start = target
        while start > 0 and target - start < count:
            if is_placeholder_token(words[start - 1]):
                break
            start -= 1
        if start == target or start == 0:
            return None
        kept = words[:start] + words[target:]
        return " ".join(kept)

    def _drop_once(self, words: list[str], droppable: list[int]) -> str | None:
        max_removals = max(1, min(2, len(droppable) // 2))
        count = int(self._rng.integers(1, max_removals + 1))
        # Bias removal toward low-content words (2x weight).
        weights = np.array(
            [2.0 if words[i] in _LOW_CONTENT else 1.0 for i in droppable]
        )
        weights /= weights.sum()
        chosen = self._rng.choice(
            droppable, size=min(count, len(droppable)), replace=False, p=weights
        )
        removed = set(int(i) for i in np.atleast_1d(chosen))
        kept = [w for i, w in enumerate(words) if i not in removed]
        if not kept:
            return None
        return " ".join(kept)
