"""The augmentation stage: paraphrase + dropout + comparatives (§3.2).

Given the generator's initial training set, the augmenter expands each
pair with (1) automatic PPDB paraphrases, (2) word-dropout duplicates
for missing/implicit information, and (3) domain-aware comparative
substitutions.  Dropout also applies to paraphrased duplicates with
reduced intensity, mirroring the paper's pipeline where augmentations
compose.
"""

from __future__ import annotations

import numpy as np

from repro.core.comparatives import ComparativeAugmenter
from repro.core.config import GenerationConfig
from repro.core.dropout import WordDropout
from repro.core.paraphraser import Paraphraser
from repro.core.templates import TrainingPair, dedupe_pairs
from repro.nlp.ppdb import ParaphraseDatabase


class Augmenter:
    """Runs all §3.2 augmentation steps over a training set."""

    def __init__(
        self,
        schemas,
        config: GenerationConfig | None = None,
        ppdb: ParaphraseDatabase | None = None,
        seed: int | np.random.SeedSequence = 0,
        pos_aware_dropout: bool = False,
    ) -> None:
        self.config = config or GenerationConfig()
        self._rng = np.random.default_rng(seed)
        self._paraphraser = Paraphraser(
            ppdb or ParaphraseDatabase(), self.config, self._rng
        )
        self._dropout = WordDropout(self.config, self._rng, pos_aware=pos_aware_dropout)
        self._comparatives = ComparativeAugmenter(schemas)

    def augment_pair(self, pair: TrainingPair) -> list[TrainingPair]:
        """All variants of one pair, original first."""
        variants = [pair]
        variants.extend(self._comparatives.augment(pair))
        paraphrased = self._paraphraser.paraphrase(pair)
        variants.extend(paraphrased)
        variants.extend(self._dropout.drop(pair))
        # Compose dropout on a sample of paraphrases so the two
        # augmentations interact (at most one composition per pair to
        # keep corpus growth bounded).
        if paraphrased and self._rng.random() < self.config.rand_drop_p:
            chosen = paraphrased[int(self._rng.integers(len(paraphrased)))]
            for dropped in self._dropout.drop(chosen)[:1]:
                variants.append(
                    dropped.with_nl(dropped.nl, augmentation="paraphrase+dropout")
                )
        return dedupe_pairs(variants)

    def augment(self, pairs) -> list[TrainingPair]:
        """Augment a whole training set (order-preserving, deduplicated)."""
        out: list[TrainingPair] = []
        seen: set[tuple[str, str]] = set()
        for pair in pairs:
            out.extend(dedupe_pairs(self.augment_pair(pair), seen))
        return out
