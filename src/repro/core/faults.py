"""Deterministic fault injection for the synthesis engine.

Fault tolerance that is only exercised by real outages is fault
tolerance that has rotted.  This module provides *injectable* failure
points so the resilience layer (shard timeout, bounded retry, worker
re-dispatch, quarantine, checkpointed resume) can be driven through
every failure mode by ordinary deterministic tests and by
``benchmarks/run_faults.py``:

* :data:`CRASH` — the shard raises :class:`~repro.errors.FaultInjected`;
* :data:`HANG` — the shard sleeps past any reasonable timeout;
* :data:`KILL` — the worker process SIGKILLs itself mid-shard
  (simulates OOM-killer / hardware death);
* :data:`PARTIAL_WRITE` — the checkpointed writer emits only a prefix
  of the shard's bytes and hard-exits (simulates power loss mid-write);
* :data:`INTERRUPT` — the writer raises
  :class:`~repro.errors.GracefulExit` *after* committing the shard
  (simulates Ctrl-C at a shard boundary).

A :class:`FaultPlan` is an immutable, picklable set of
:class:`FaultSpec` rules shipped to worker processes alongside the
engine state.  Matching is purely a function of (shard coordinates,
attempt number), so injected failures are reproducible across runs,
worker counts, and process boundaries — the same property the corpus
itself has.

``attempts`` bounds how many attempts of a shard fail: ``attempts=1``
fails the first attempt only (retry then succeeds — the transient-fault
shape), while ``attempts >= max_attempts`` makes the shard poisoned
(every retry fails — the quarantine shape).

.. warning::
   :data:`KILL` and :data:`HANG` take down / stall the process that
   runs the shard.  Use them with ``workers >= 1`` so the casualty is a
   supervised worker, not the test runner; :data:`PARTIAL_WRITE`
   hard-exits the *writer* process and belongs in subprocess tests.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import FaultInjected

#: Fault kinds (see module docstring).
CRASH = "crash"
HANG = "hang"
KILL = "kill"
PARTIAL_WRITE = "partial_write"
INTERRUPT = "interrupt"

#: Kinds injected inside ``synthesize_shard`` (worker side).
SHARD_KINDS = frozenset({CRASH, HANG, KILL})
#: Kinds injected by the checkpointed writer (parent side).
WRITER_KINDS = frozenset({PARTIAL_WRITE, INTERRUPT})

_VALID_KINDS = SHARD_KINDS | WRITER_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where* it fires and *how it fails*.

    A spec matches a shard when every provided selector
    (``shard_index``, ``schema_name``, ``template_id``) matches and the
    attempt number is below ``attempts``.  ``None`` selectors are
    wildcards, so ``FaultSpec(CRASH, template_id="T12")`` poisons
    template T12 on every schema.
    """

    kind: str
    shard_index: int | None = None
    schema_name: str | None = None
    template_id: str | None = None
    #: Number of leading attempts that fail (attempt numbers are
    #: 0-based; ``attempts=2`` fails attempts 0 and 1).
    attempts: int = 1
    #: Sleep duration for :data:`HANG` faults.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def matches(
        self,
        shard_index: int,
        schema_name: str,
        template_id: str,
        attempt: int,
    ) -> bool:
        if attempt >= self.attempts:
            return False
        if self.shard_index is not None and self.shard_index != shard_index:
            return False
        if self.schema_name is not None and self.schema_name != schema_name:
            return False
        if self.template_id is not None and self.template_id != template_id:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of :class:`FaultSpec` rules."""

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def find(
        self,
        kinds: frozenset[str],
        shard_index: int,
        schema_name: str,
        template_id: str,
        attempt: int,
    ) -> FaultSpec | None:
        """First spec of one of ``kinds`` matching the shard/attempt."""
        for spec in self.specs:
            if spec.kind in kinds and spec.matches(
                shard_index, schema_name, template_id, attempt
            ):
                return spec
        return None


#: The no-op plan (shared instance; ``bool(NO_FAULTS)`` is False).
NO_FAULTS = FaultPlan()


# ----------------------------------------------------------------------
# Serving-tier repair-loop faults
# ----------------------------------------------------------------------

#: The execution arm charges ``slow_seconds`` of *virtual* time to the
#: repair budget (no real sleep) — drives deadline-mid-execute paths.
SLOW_EXECUTE = "slow_execute"
#: The repairer re-proposes a candidate it already tried, tripping the
#: oscillation guard.
REPAIR_OSCILLATE = "repair_oscillate"
#: The backend adapter raises :class:`FaultInjected` mid-re-rank.
ADAPTER_CRASH = "adapter_crash"

#: Kinds injected inside the serving repair pipeline.
REPAIR_KINDS = frozenset({SLOW_EXECUTE, REPAIR_OSCILLATE, ADAPTER_CRASH})


@dataclass(frozen=True)
class RepairFaultSpec:
    """One repair-loop injection rule.

    Selectors mirror :class:`FaultSpec` but use repair coordinates:
    ``run_index`` is the 0-based ordinal of the pipeline run within the
    service (``None`` = every run) and ``attempts`` bounds how many
    steps of a matching run fire (step numbers are 0-based per stage).
    Matching is a pure function of the coordinates, so injected repair
    failures reproduce across runs exactly like shard faults do — and
    :data:`SLOW_EXECUTE` charges *virtual* seconds, so budget paths are
    testable without wall-clock sleeps.
    """

    kind: str
    run_index: int | None = None
    attempts: int = 1
    #: Virtual seconds charged by :data:`SLOW_EXECUTE`.
    slow_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in REPAIR_KINDS:
            raise ValueError(f"unknown repair fault kind {self.kind!r}")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def matches(self, run_index: int, step: int) -> bool:
        if step >= self.attempts:
            return False
        if self.run_index is not None and self.run_index != run_index:
            return False
        return True


@dataclass(frozen=True)
class RepairFaultPlan:
    """An immutable collection of :class:`RepairFaultSpec` rules."""

    specs: tuple[RepairFaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def find(self, kind: str, run_index: int, step: int) -> RepairFaultSpec | None:
        """First spec of ``kind`` matching this run/step, or ``None``."""
        for spec in self.specs:
            if spec.kind == kind and spec.matches(run_index, step):
                return spec
        return None


#: The no-op repair plan (shared instance).
NO_REPAIR_FAULTS = RepairFaultPlan()


def fire_shard_fault(spec: FaultSpec, shard_index: int) -> None:
    """Execute a worker-side fault (called from ``synthesize_shard``)."""
    if spec.kind == CRASH:
        raise FaultInjected(
            f"injected crash in shard {shard_index}"
        )
    if spec.kind == HANG:
        # Sleep in slices so a terminated process dies promptly even on
        # platforms where signals do not interrupt a long sleep.
        deadline = time.monotonic() + spec.hang_seconds
        while time.monotonic() < deadline:
            time.sleep(min(0.05, spec.hang_seconds))
        return
    if spec.kind == KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    raise FaultInjected(
        f"fault kind {spec.kind!r} cannot fire inside a shard"
    )  # pragma: no cover - guarded by SHARD_KINDS at lookup
