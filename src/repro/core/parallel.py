"""Parallel, deterministic corpus synthesis (the scale-out engine).

The paper's pipeline (generate → augment → lemmatize) is embarrassingly
parallel once it is expressed as independent *shards*: one shard per
(schema, template) pair runs the full three-stage pipeline for that
template's instances.  This module provides that sharded engine:

* **Deterministic seeding.**  Every shard derives its RNG streams from
  ``np.random.SeedSequence(seed)`` with the shard index as spawn key
  (one child each for generation and augmentation), so shard outputs
  are independent of scheduling, process boundaries, and worker count.
* **Order-stable merge.**  Shards are merged in shard-index order
  (schema-major, template-minor) and globally deduplicated with one
  shared key set, making the corpus for ``workers=N`` **bit-identical**
  to ``workers=0`` for the same seed and configuration.
* **Inline or multi-process.**  ``workers=0`` runs the shard loop in
  the calling process (no pool, no pickling); ``workers>0`` fans shards
  out over a :class:`~concurrent.futures.ProcessPoolExecutor`, shipping
  the immutable engine state once per worker via the pool initializer
  so per-task payloads are a single integer.

Workers also time their own stages (generate/augment/lemmatize) and
return ``{stage: seconds}`` alongside the pairs, so a
:class:`repro.perf.PerfRecorder` can aggregate per-stage CPU time even
for multi-process runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.augmenter import Augmenter
from repro.core.config import GenerationConfig
from repro.core.generator import Generator
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import SeedTemplate, TrainingPair, dedupe_pairs
from repro.errors import GenerationError
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.ppdb import ParaphraseDatabase
from repro.perf.instrumentation import StageTimer
from repro.schema.schema import Schema


@dataclass(frozen=True)
class EngineState:
    """Everything a shard needs; immutable and picklable.

    Shipped to pool workers exactly once (via the initializer), after
    which tasks are identified by their shard index alone.
    """

    schemas: tuple[Schema, ...]
    config: GenerationConfig
    templates: tuple[SeedTemplate, ...]
    ppdb: ParaphraseDatabase
    seed: int
    apply_lemmatizer: bool = True
    pos_aware_dropout: bool = False

    @property
    def shard_count(self) -> int:
        return len(self.schemas) * len(self.templates)

    def shard_coords(self, shard_index: int) -> tuple[Schema, SeedTemplate]:
        """(schema, template) of one shard, schema-major order."""
        schema = self.schemas[shard_index // len(self.templates)]
        template = self.templates[shard_index % len(self.templates)]
        return schema, template


def synthesize_shard(
    state: EngineState, shard_index: int
) -> tuple[list[TrainingPair], dict[str, float]]:
    """Run generate → augment → lemmatize for one (schema, template).

    Returns the shard's locally deduplicated pairs plus per-stage
    wall-clock seconds.  Deterministic: the RNG streams depend only on
    ``state.seed`` and ``shard_index`` — ``SeedSequence`` spawn keys
    guarantee independence between shards and reproducibility across
    processes.
    """
    schema, template = state.shard_coords(shard_index)
    shard_seq = np.random.SeedSequence(
        entropy=state.seed, spawn_key=(shard_index,)
    )
    generate_seq, augment_seq = shard_seq.spawn(2)
    timings: dict[str, float] = {}

    with StageTimer() as timer:
        generator = Generator(
            schema, state.config, state.templates, seed=generate_seq
        )
        pairs = generator.generate_template(template)
    timings["generate"] = timer.seconds

    with StageTimer() as timer:
        augmenter = Augmenter(
            [schema],
            state.config,
            state.ppdb,
            seed=augment_seq,
            pos_aware_dropout=state.pos_aware_dropout,
        )
        pairs = augmenter.augment(pairs)
    timings["augment"] = timer.seconds

    with StageTimer() as timer:
        if state.apply_lemmatizer:
            pairs = [
                pair.with_nl(lemmatize(pair.nl), pair.augmentation)
                for pair in pairs
            ]
            pairs = dedupe_pairs(pairs)
    timings["lemmatize"] = timer.seconds
    return pairs, timings


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_STATE: EngineState | None = None


def _init_worker(state: EngineState) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(shard_index: int):
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise GenerationError("synthesis worker used before initialization")
    return synthesize_shard(_WORKER_STATE, shard_index)


class SynthesisEngine:
    """Shards corpus synthesis by (schema, template) and merges stably."""

    def __init__(
        self,
        schemas: Schema | Sequence[Schema],
        config: GenerationConfig | None = None,
        templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
        ppdb: ParaphraseDatabase | None = None,
        seed: int = 0,
        apply_lemmatizer: bool = True,
        pos_aware_dropout: bool = False,
    ) -> None:
        if isinstance(schemas, Schema):
            schemas = [schemas]
        if not schemas:
            raise GenerationError("no schemas supplied")
        self.state = EngineState(
            schemas=tuple(schemas),
            config=config or GenerationConfig(),
            templates=tuple(templates),
            ppdb=ppdb or ParaphraseDatabase(),
            seed=seed,
            apply_lemmatizer=apply_lemmatizer,
            pos_aware_dropout=pos_aware_dropout,
        )
        if not self.state.templates:
            raise GenerationError("no seed templates supplied")

    @property
    def shard_count(self) -> int:
        return self.state.shard_count

    def iter_shards(
        self, workers: int = 0
    ) -> Iterator[tuple[list[TrainingPair], dict[str, float]]]:
        """Yield every shard's (pairs, stage timings) in shard order.

        ``workers=0`` runs inline; ``workers>0`` uses a process pool.
        The yielded sequence is identical either way — ``Executor.map``
        preserves submission order, and shard contents depend only on
        (seed, shard index).
        """
        indices = range(self.state.shard_count)
        if workers <= 0:
            for shard_index in indices:
                yield synthesize_shard(self.state, shard_index)
            return
        chunksize = max(1, self.state.shard_count // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.state,),
        ) as pool:
            yield from pool.map(_run_shard, indices, chunksize=chunksize)

    def iter_batches(
        self, workers: int = 0, recorder=None
    ) -> Iterator[list[TrainingPair]]:
        """Globally deduplicated per-shard batches, in stable order.

        This is the streaming surface: concatenating the batches gives
        the canonical corpus without ever holding shards that were
        already written.  ``recorder`` (a
        :class:`repro.perf.PerfRecorder`) aggregates worker stage
        timings and merge time when provided.
        """
        seen: set[tuple[str, str]] = set()
        for pairs, timings in self.iter_shards(workers=workers):
            if recorder is not None:
                for stage, seconds in timings.items():
                    recorder.add(stage, seconds, items=len(pairs))
                with recorder.stage("merge") as stats:
                    batch = dedupe_pairs(pairs, seen)
                    stats.items += len(batch)
            else:
                batch = dedupe_pairs(pairs, seen)
            if batch:
                yield batch

    def run(self, workers: int = 0, recorder=None) -> list[TrainingPair]:
        """The full merged corpus as one list."""
        merged: list[TrainingPair] = []
        for batch in self.iter_batches(workers=workers, recorder=recorder):
            merged.extend(batch)
        return merged
