"""Parallel, deterministic corpus synthesis (the scale-out engine).

The paper's pipeline (generate → augment → lemmatize) is embarrassingly
parallel once it is expressed as independent *shards*: one shard per
(schema, template) pair runs the full three-stage pipeline for that
template's instances.  This module provides that sharded engine:

* **Deterministic seeding.**  Every shard derives its RNG streams from
  ``np.random.SeedSequence(seed)`` with the shard index as spawn key
  (one child each for generation and augmentation), so shard outputs
  are independent of scheduling, process boundaries, and worker count.
* **Order-stable merge.**  Shards are merged in shard-index order
  (schema-major, template-minor) and globally deduplicated with one
  shared key set, making the corpus for ``workers=N`` **bit-identical**
  to ``workers=0`` for the same seed and configuration.
* **Inline or multi-process.**  ``workers=0`` runs the shard loop in
  the calling process (no pool, no pickling); ``workers>0`` fans shards
  out over a :class:`~concurrent.futures.ProcessPoolExecutor`, shipping
  the immutable engine state once per worker via the pool initializer
  so per-task payloads are a single integer.

Workers also time their own stages (generate/augment/lemmatize) and
return ``{stage: seconds}`` alongside the pairs, so a
:class:`repro.perf.PerfRecorder` can aggregate per-stage CPU time even
for multi-process runs.

On top of the plain sharded engine sits the **fault-tolerance layer**
(:meth:`SynthesisEngine.iter_outcomes`): per-shard execution wrapped in
a wall-clock timeout and bounded retry with exponential backoff,
supervised worker processes whose death is detected and whose shard is
re-dispatched, and quarantine — a shard that keeps failing is reported
as a :class:`ShardFailure` naming its (schema, template, seed) triple
instead of killing the run.  Because retries rerun a shard with the
same ``SeedSequence``-derived streams, resilience never changes the
corpus, only whether the run survives.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Iterator, Sequence

import numpy as np

from repro.core.augmenter import Augmenter
from repro.core.config import GenerationConfig, ResilienceConfig
from repro.core.faults import NO_FAULTS, SHARD_KINDS, FaultPlan, fire_shard_fault
from repro.core.generator import Generator
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import SeedTemplate, TrainingPair, dedupe_pairs
from repro.errors import (
    E_SHARD_CRASH,
    E_SHARD_TIMEOUT,
    E_WORKER_DIED,
    GenerationError,
)
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.ppdb import ParaphraseDatabase
from repro.perf.instrumentation import StageTimer
from repro.schema.schema import Schema


@dataclass(frozen=True)
class EngineState:
    """Everything a shard needs; immutable and picklable.

    Shipped to pool workers exactly once (via the initializer), after
    which tasks are identified by their shard index alone.
    """

    schemas: tuple[Schema, ...]
    config: GenerationConfig
    templates: tuple[SeedTemplate, ...]
    ppdb: ParaphraseDatabase
    seed: int
    apply_lemmatizer: bool = True
    pos_aware_dropout: bool = False

    @property
    def shard_count(self) -> int:
        return len(self.schemas) * len(self.templates)

    def shard_coords(self, shard_index: int) -> tuple[Schema, SeedTemplate]:
        """(schema, template) of one shard, schema-major order."""
        schema = self.schemas[shard_index // len(self.templates)]
        template = self.templates[shard_index % len(self.templates)]
        return schema, template


def synthesize_shard(
    state: EngineState,
    shard_index: int,
    attempt: int = 0,
    faults: FaultPlan = NO_FAULTS,
) -> tuple[list[TrainingPair], dict[str, float]]:
    """Run generate → augment → lemmatize for one (schema, template).

    Returns the shard's locally deduplicated pairs plus per-stage
    wall-clock seconds.  Deterministic: the RNG streams depend only on
    ``state.seed`` and ``shard_index`` — ``SeedSequence`` spawn keys
    guarantee independence between shards and reproducibility across
    processes.  ``attempt`` never feeds the RNG (retried shards are
    bit-identical); it only selects fault-injection rules.
    """
    schema, template = state.shard_coords(shard_index)
    if faults:
        spec = faults.find(
            SHARD_KINDS, shard_index, schema.name, template.tid, attempt
        )
        if spec is not None:
            fire_shard_fault(spec, shard_index)
    shard_seq = np.random.SeedSequence(
        entropy=state.seed, spawn_key=(shard_index,)
    )
    generate_seq, augment_seq = shard_seq.spawn(2)
    timings: dict[str, float] = {}

    with StageTimer() as timer:
        generator = Generator(
            schema, state.config, state.templates, seed=generate_seq
        )
        pairs = generator.generate_template(template)
    timings["generate"] = timer.seconds

    with StageTimer() as timer:
        augmenter = Augmenter(
            [schema],
            state.config,
            state.ppdb,
            seed=augment_seq,
            pos_aware_dropout=state.pos_aware_dropout,
        )
        pairs = augmenter.augment(pairs)
    timings["augment"] = timer.seconds

    with StageTimer() as timer:
        if state.apply_lemmatizer:
            pairs = [
                pair.with_nl(lemmatize(pair.nl), pair.augmentation)
                for pair in pairs
            ]
            pairs = dedupe_pairs(pairs)
    timings["lemmatize"] = timer.seconds
    return pairs, timings


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_STATE: EngineState | None = None


def _init_worker(state: EngineState) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(shard_index: int):
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise GenerationError("synthesis worker used before initialization")
    return synthesize_shard(_WORKER_STATE, shard_index)


# ----------------------------------------------------------------------
# Fault-tolerance layer: outcomes, supervised workers, retry/quarantine
# ----------------------------------------------------------------------

OUTCOME_OK = "ok"
OUTCOME_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class ShardFailure:
    """Why one shard was quarantined — the report's unit record.

    Names the offending (schema, template, seed) triple so the failure
    is independently reproducible:
    ``SeedSequence(entropy=seed_entropy, spawn_key=tuple(seed_spawn_key))``
    recreates the exact RNG streams of the failing shard.
    """

    shard_index: int
    schema_name: str
    template_id: str
    seed_entropy: int
    seed_spawn_key: tuple[int, ...]
    code: str  # E_SHARD_CRASH | E_SHARD_TIMEOUT | E_WORKER_DIED
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "schema": self.schema_name,
            "template_id": self.template_id,
            "seed": {
                "entropy": self.seed_entropy,
                "spawn_key": list(self.seed_spawn_key),
            },
            "code": self.code,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal result of one shard under the fault-tolerance layer."""

    shard_index: int
    status: str  # OUTCOME_OK | OUTCOME_QUARANTINED
    pairs: list[TrainingPair] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    attempts: int = 1
    failure: ShardFailure | None = None

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK


def _worker_main(conn: Connection, state: EngineState, faults: FaultPlan) -> None:
    """Supervised worker loop: recv (shard, attempt), send the result.

    Runs in a child process.  Any exception a shard raises — organic or
    injected — is reported over the pipe and the worker stays alive for
    the next task; only process death (KILL faults, real crashes of the
    interpreter) ends the loop, which the parent detects as EOF.
    """
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, shard_index, attempt = message
            try:
                pairs, timings = synthesize_shard(
                    state, shard_index, attempt=attempt, faults=faults
                )
                conn.send(("ok", shard_index, attempt, pairs, timings))
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
                conn.send(("error", shard_index, attempt, detail))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass


@dataclass
class _Worker:
    """Parent-side handle for one supervised worker process."""

    process: mp.process.BaseProcess
    conn: Connection
    shard: int | None = None  # currently dispatched shard
    attempt: int = 0
    deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.shard is not None

    def dispatch(self, shard: int, attempt: int, timeout: float) -> None:
        self.shard = shard
        self.attempt = attempt
        self.deadline = (time.monotonic() + timeout) if timeout > 0 else None
        self.conn.send(("run", shard, attempt))

    def clear(self) -> None:
        self.shard = None
        self.deadline = None

    def destroy(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self.process.join()
        self.conn.close()


class _ShardSupervisor:
    """Runs shards on supervised workers with timeout/retry/quarantine.

    Unlike :class:`~concurrent.futures.ProcessPoolExecutor` — where one
    dead worker breaks the whole pool and a hung task occupies a slot
    forever — the supervisor owns each worker process individually: a
    shard that exceeds its deadline gets its worker killed and
    replaced, a worker that dies mid-shard is detected via pipe EOF and
    its shard re-dispatched, and a shard that exhausts its attempt
    budget is quarantined while the rest of the run proceeds.
    """

    def __init__(
        self,
        state: EngineState,
        workers: int,
        resilience: ResilienceConfig,
        faults: FaultPlan,
    ) -> None:
        self._state = state
        self._resilience = resilience
        self._faults = faults
        self._ctx = mp.get_context()
        self._workers = [self._spawn() for _ in range(max(1, workers))]

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._state, self._faults),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end
        return _Worker(process=process, conn=parent_conn)

    def shutdown(self) -> None:
        for worker in self._workers:
            worker.destroy()
        self._workers = []

    # -- attempt bookkeeping -------------------------------------------

    def _fail_attempt(
        self,
        shard: int,
        code: str,
        message: str,
        attempts: dict[int, int],
        pending: list[tuple[float, int]],
        results: dict[int, ShardOutcome],
    ) -> None:
        attempts[shard] = attempts.get(shard, 0) + 1
        failed = attempts[shard]
        if failed >= self._resilience.max_attempts:
            results[shard] = _quarantine_outcome(
                self._state, shard, code, message, failed
            )
            return
        not_before = time.monotonic() + self._resilience.backoff_delay(failed)
        pending.append((not_before, shard))

    # -- main loop ------------------------------------------------------

    def run(self, shards: Sequence[int]) -> Iterator[ShardOutcome]:
        """Yield a terminal :class:`ShardOutcome` per shard, in order."""
        order = list(shards)
        pending: list[tuple[float, int]] = [(0.0, s) for s in order]
        attempts: dict[int, int] = {}
        results: dict[int, ShardOutcome] = {}
        yield_at = 0

        while yield_at < len(order):
            now = time.monotonic()
            # Dispatch eligible shards (lowest index first) to idle workers.
            idle = [w for w in self._workers if not w.busy]
            if idle and pending:
                pending.sort(key=lambda item: (item[0], item[1]))
                for worker in idle:
                    ready = next(
                        (i for i, (t, _) in enumerate(pending) if t <= now), None
                    )
                    if ready is None:
                        break
                    _, shard = pending.pop(ready)
                    try:
                        worker.dispatch(
                            shard,
                            attempts.get(shard, 0),
                            self._resilience.shard_timeout,
                        )
                    except OSError:  # worker died while idle — replace it
                        self._workers.remove(worker)
                        worker.destroy()
                        self._workers.append(self._spawn())
                        pending.append((now, shard))

            # Surface every terminally-resolved shard in shard order.
            while yield_at < len(order) and order[yield_at] in results:
                yield results.pop(order[yield_at])
                yield_at += 1
            if yield_at >= len(order):
                break

            # Wait for the next event: a result, a deadline, or backoff
            # expiry that frees a pending shard for an idle worker.
            busy = [w for w in self._workers if w.busy]
            wakeups = [w.deadline for w in busy if w.deadline is not None]
            if pending and any(not w.busy for w in self._workers):
                wakeups.append(min(t for t, _ in pending))
            timeout = None
            if wakeups:
                timeout = max(0.0, min(wakeups) - time.monotonic())
            ready_conns = (
                _conn_wait([w.conn for w in busy], timeout) if busy else []
            )

            for worker in list(self._workers):
                if worker.conn not in ready_conns:
                    continue
                shard = worker.shard
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-shard (e.g. SIGKILL). Replace it.
                    self._workers.remove(worker)
                    worker.destroy()
                    self._workers.append(self._spawn())
                    self._fail_attempt(
                        shard,
                        E_WORKER_DIED,
                        f"worker process died while running shard {shard}",
                        attempts,
                        pending,
                        results,
                    )
                    continue
                worker.clear()
                if message[0] == "ok":
                    _, shard_index, attempt, pairs, timings = message
                    results[shard_index] = ShardOutcome(
                        shard_index,
                        OUTCOME_OK,
                        pairs=pairs,
                        timings=timings,
                        attempts=attempt + 1,
                    )
                else:
                    _, shard_index, _attempt, detail = message
                    self._fail_attempt(
                        shard_index,
                        E_SHARD_CRASH,
                        detail,
                        attempts,
                        pending,
                        results,
                    )

            # Enforce per-shard deadlines: kill and replace the worker,
            # charge the shard one failed attempt.
            now = time.monotonic()
            for worker in list(self._workers):
                if not worker.busy or worker.deadline is None:
                    continue
                if worker.conn in ready_conns or now < worker.deadline:
                    continue
                shard = worker.shard
                self._workers.remove(worker)
                worker.destroy()
                self._workers.append(self._spawn())
                self._fail_attempt(
                    shard,
                    E_SHARD_TIMEOUT,
                    f"shard {shard} exceeded "
                    f"{self._resilience.shard_timeout:g}s timeout",
                    attempts,
                    pending,
                    results,
                )


def _quarantine_outcome(
    state: EngineState, shard: int, code: str, message: str, attempts: int
) -> ShardOutcome:
    schema, template = state.shard_coords(shard)
    failure = ShardFailure(
        shard_index=shard,
        schema_name=schema.name,
        template_id=template.tid,
        seed_entropy=state.seed,
        seed_spawn_key=(shard,),
        code=code,
        message=message,
        attempts=attempts,
    )
    return ShardOutcome(
        shard, OUTCOME_QUARANTINED, attempts=attempts, failure=failure
    )


class SynthesisEngine:
    """Shards corpus synthesis by (schema, template) and merges stably."""

    def __init__(
        self,
        schemas: Schema | Sequence[Schema],
        config: GenerationConfig | None = None,
        templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
        ppdb: ParaphraseDatabase | None = None,
        seed: int = 0,
        apply_lemmatizer: bool = True,
        pos_aware_dropout: bool = False,
    ) -> None:
        if isinstance(schemas, Schema):
            schemas = [schemas]
        if not schemas:
            raise GenerationError("no schemas supplied")
        self.state = EngineState(
            schemas=tuple(schemas),
            config=config or GenerationConfig(),
            templates=tuple(templates),
            ppdb=ppdb or ParaphraseDatabase(),
            seed=seed,
            apply_lemmatizer=apply_lemmatizer,
            pos_aware_dropout=pos_aware_dropout,
        )
        if not self.state.templates:
            raise GenerationError("no seed templates supplied")

    @property
    def shard_count(self) -> int:
        return self.state.shard_count

    def iter_shards(
        self, workers: int = 0
    ) -> Iterator[tuple[list[TrainingPair], dict[str, float]]]:
        """Yield every shard's (pairs, stage timings) in shard order.

        ``workers=0`` runs inline; ``workers>0`` uses a process pool.
        The yielded sequence is identical either way — ``Executor.map``
        preserves submission order, and shard contents depend only on
        (seed, shard index).
        """
        indices = range(self.state.shard_count)
        if workers <= 0:
            for shard_index in indices:
                yield synthesize_shard(self.state, shard_index)
            return
        chunksize = max(1, self.state.shard_count // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.state,),
        ) as pool:
            yield from pool.map(_run_shard, indices, chunksize=chunksize)

    def iter_outcomes(
        self,
        workers: int = 0,
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan = NO_FAULTS,
        skip: frozenset[int] | set[int] = frozenset(),
    ) -> Iterator[ShardOutcome]:
        """Fault-tolerant shard execution: one terminal outcome per shard.

        Yields a :class:`ShardOutcome` for every shard not in ``skip``,
        in ascending shard order (the order the checkpointed writer
        commits them).  A shard that crashes is retried with
        exponential backoff up to ``resilience.max_attempts`` times and
        then **quarantined** — reported as a failure outcome naming its
        (schema, template, seed) triple — rather than aborting the run.
        With ``workers >= 1`` shards run on individually supervised
        worker processes: a hung shard is killed at
        ``resilience.shard_timeout`` and a dead worker is detected and
        replaced, its shard re-dispatched.  The inline path
        (``workers=0``) retries and quarantines crashes but cannot
        preempt hangs or survive process death.

        Retried shards rerun with identical RNG streams, so for any
        fault plan that eventually lets every shard succeed the merged
        corpus is bit-identical to a fault-free run.
        """
        resilience = resilience or ResilienceConfig()
        shards = [i for i in range(self.state.shard_count) if i not in skip]
        if workers <= 0:
            for shard_index in shards:
                yield self._run_inline(shard_index, resilience, faults)
            return
        supervisor = _ShardSupervisor(self.state, workers, resilience, faults)
        try:
            yield from supervisor.run(shards)
        finally:
            supervisor.shutdown()

    def _run_inline(
        self,
        shard_index: int,
        resilience: ResilienceConfig,
        faults: FaultPlan,
    ) -> ShardOutcome:
        failed = 0
        while True:
            try:
                pairs, timings = synthesize_shard(
                    self.state, shard_index, attempt=failed, faults=faults
                )
            except Exception as exc:  # noqa: BLE001 — retried/quarantined
                detail = traceback.format_exception_only(type(exc), exc)[-1]
                failed += 1
                if failed >= resilience.max_attempts:
                    return _quarantine_outcome(
                        self.state,
                        shard_index,
                        E_SHARD_CRASH,
                        detail.strip(),
                        failed,
                    )
                time.sleep(resilience.backoff_delay(failed))
                continue
            return ShardOutcome(
                shard_index,
                OUTCOME_OK,
                pairs=pairs,
                timings=timings,
                attempts=failed + 1,
            )

    def iter_batches(
        self, workers: int = 0, recorder=None
    ) -> Iterator[list[TrainingPair]]:
        """Globally deduplicated per-shard batches, in stable order.

        This is the streaming surface: concatenating the batches gives
        the canonical corpus without ever holding shards that were
        already written.  ``recorder`` (a
        :class:`repro.perf.PerfRecorder`) aggregates worker stage
        timings and merge time when provided.
        """
        seen: set[tuple[str, str]] = set()
        for pairs, timings in self.iter_shards(workers=workers):
            if recorder is not None:
                for stage, seconds in timings.items():
                    recorder.add(stage, seconds, items=len(pairs))
                with recorder.stage("merge") as stats:
                    batch = dedupe_pairs(pairs, seen)
                    stats.items += len(batch)
            else:
                batch = dedupe_pairs(pairs, seen)
            if batch:
                yield batch

    def run(self, workers: int = 0, recorder=None) -> list[TrainingPair]:
        """The full merged corpus as one list."""
        merged: list[TrainingPair] = []
        for batch in self.iter_batches(workers=workers, recorder=recorder):
            merged.extend(batch)
        return merged
