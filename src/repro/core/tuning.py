"""Hyperparameter optimization of the data generator (paper §3.3).

The generation procedure is modelled as ``Acc = Generate(D, T, phi)``:
given database(s) ``D``, a test workload ``T``, and a parameter set
``phi`` (a :class:`~repro.core.config.GenerationConfig`), the procedure
generates a corpus, trains a model, evaluates it on ``T``, and returns
the accuracy.  DBPal tunes ``phi`` with *random search*; we also ship
the grid-search alternative the paper compares against conceptually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.pipeline import TrainingPipeline
from repro.schema.schema import Schema

#: Builds a fresh untrained model for each trial.
ModelFactory = Callable[[], object]

#: Maps (model, workload) to an accuracy in [0, 1].
EvaluateFn = Callable[[object, Sequence], float]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of evaluating one parameter set phi."""

    config: GenerationConfig
    accuracy: float
    corpus_size: int


@dataclass
class SearchResult:
    """All trials of one search run, best first."""

    trials: list[TrialResult]

    @property
    def best(self) -> TrialResult:
        return self.trials[0]

    def accuracies(self) -> list[float]:
        return [t.accuracy for t in self.trials]

    def histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Accuracy histogram — the data behind the paper's Figure 4."""
        return np.histogram(self.accuracies(), bins=bins)

    def summary(self) -> dict[str, float]:
        values = np.array(self.accuracies())
        return {
            "trials": float(len(values)),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "std": float(values.std()),
        }


def _default_evaluate(model, workload) -> float:
    """Exact-match accuracy of ``model.translate`` over a workload.

    Lazy import keeps :mod:`repro.core` free of a hard dependency on
    the evaluation harness.
    """
    from repro.eval.metrics import exact_match
    from repro.nlp.lemmatizer import lemmatize

    if not workload:
        return 0.0
    correct = 0
    for item in workload:
        predicted = model.translate(lemmatize(item.nl))
        if predicted is not None and exact_match(predicted, item.sql):
            correct += 1
    return correct / len(workload)


def run_trial(
    schemas: Schema | Sequence[Schema],
    workload: Sequence,
    model_factory: ModelFactory,
    config: GenerationConfig,
    evaluate: EvaluateFn = _default_evaluate,
    seed: int = 0,
    fit_kwargs: dict | None = None,
    corpus_cap: int | None = None,
) -> TrialResult:
    """One full ``Generate(D, T, phi)`` evaluation.

    ``corpus_cap`` bounds the training-corpus size per trial (random
    subsample), standing in for the paper's per-trial wall-clock limit
    ("we then trained a given model for up to a 6 hour time limit").
    """
    pipeline = TrainingPipeline(schemas, config=config, seed=seed)
    corpus = pipeline.generate()
    if corpus_cap is not None:
        corpus = corpus.subsample(corpus_cap, seed=seed)
    model = model_factory()
    model.fit(corpus.pairs, **(fit_kwargs or {}))
    accuracy = evaluate(model, workload)
    return TrialResult(config=config, accuracy=accuracy, corpus_size=len(corpus))


def random_search(
    schemas: Schema | Sequence[Schema],
    workload: Sequence,
    model_factory: ModelFactory,
    n_trials: int = 20,
    evaluate: EvaluateFn = _default_evaluate,
    seed: int = 0,
    fit_kwargs: dict | None = None,
    corpus_cap: int | None = None,
) -> SearchResult:
    """Random search over the Table 1 space (the paper's §3.3 strategy)."""
    rng = np.random.default_rng(seed)
    trials = []
    for trial_index in range(n_trials):
        config = GenerationConfig.sample(rng)
        trials.append(
            run_trial(
                schemas,
                workload,
                model_factory,
                config,
                evaluate=evaluate,
                seed=seed + trial_index,
                fit_kwargs=fit_kwargs,
                corpus_cap=corpus_cap,
            )
        )
    trials.sort(key=lambda t: -t.accuracy)
    return SearchResult(trials)


def grid_search(
    schemas: Schema | Sequence[Schema],
    workload: Sequence,
    model_factory: ModelFactory,
    grid: Iterable[GenerationConfig],
    evaluate: EvaluateFn = _default_evaluate,
    seed: int = 0,
    fit_kwargs: dict | None = None,
    corpus_cap: int | None = None,
) -> SearchResult:
    """Exhaustive search over an explicit configuration grid.

    The paper notes grid search "searches the specified subset of
    hyperparameters ... exhaustively" — callers supply the (sub)grid,
    e.g. ``GenerationConfig.grid({"num_para": (0, 1, 3)})``.
    """
    trials = []
    for trial_index, config in enumerate(grid):
        trials.append(
            run_trial(
                schemas,
                workload,
                model_factory,
                config,
                evaluate=evaluate,
                seed=seed + trial_index,
                fit_kwargs=fit_kwargs,
                corpus_cap=corpus_cap,
            )
        )
    trials.sort(key=lambda t: -t.accuracy)
    return SearchResult(trials)
