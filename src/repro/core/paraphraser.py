"""Automatic paraphrasing with the (synthetic) PPDB (paper §3.2.1).

For each training pair we "randomly replace words and subphrases of the
input NL query with available paraphrases provided by PPDB".  Two
Table 1 parameters tune the aggressiveness:

* ``size_para`` — maximum subclause size (in words) considered for
  replacement; ``size_para = 2`` considers unigrams and bigrams;
* ``num_para`` — maximum paraphrases generated per subclause.

Placeholders (``@AGE`` …) are never paraphrased, as replacing them
would break the NL/SQL alignment.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.templates import TrainingPair
from repro.nlp.ppdb import ParaphraseDatabase
from repro.nlp.tokenizer import is_placeholder_token


class Paraphraser:
    """Produces paraphrased duplicates of a training pair."""

    def __init__(
        self,
        ppdb: ParaphraseDatabase,
        config: GenerationConfig,
        rng: np.random.Generator,
    ) -> None:
        self._ppdb = ppdb
        self._config = config
        self._rng = rng
        # Hoisted out of the per-pair span scan (hot path).
        self._max_span = min(config.size_para, ppdb.max_ngram)

    def paraphrase(self, pair: TrainingPair) -> list[TrainingPair]:
        """Paraphrased duplicates (possibly empty; never includes ``pair``)."""
        if self._config.size_para <= 0 or self._config.num_para <= 0:
            return []
        words = pair.nl.split()
        spans = self._candidate_spans(words)
        self._rng.shuffle(spans)
        duplicates: list[TrainingPair] = []
        seen = {pair.nl}
        for start, length in spans:
            phrase = " ".join(words[start : start + length])
            entries = self._ppdb.lookup(phrase, max_candidates=self._config.num_para)
            for entry in entries:
                new_nl = " ".join(
                    words[:start] + entry.phrase.split() + words[start + length :]
                )
                if new_nl in seen:
                    continue
                seen.add(new_nl)
                duplicates.append(pair.with_nl(new_nl, augmentation="paraphrase"))
        return duplicates

    def _candidate_spans(self, words: list[str]) -> list[tuple[int, int]]:
        """All (start, length) spans up to ``size_para`` words, placeholder-free."""
        spans = []
        for length in range(1, self._max_span + 1):
            for start in range(len(words) - length + 1):
                segment = words[start : start + length]
                if any(is_placeholder_token(w) for w in segment):
                    continue
                spans.append((start, length))
        return spans
